"""Ablation: DP-iso's adaptive ordering vs its static backbone.

Identical candidate space and LC method; only the vertex-selection policy
differs. The paper observes "the adaptive ordering does not dominate the
static ordering in our experiments" — this bench makes that comparison
directly visible, including the per-node selection overhead.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from conftest import bench_queries
from shared import DEFAULT_SIZE, query_set, run

from repro.core import get_algorithm
from repro.study import format_series

DATASET_KEYS = ["ye", "yt", "wn", "db"]


def _static_dp():
    """DP-opt with adaptivity disabled (static backbone order)."""
    return dataclasses.replace(
        get_algorithm("DP-opt"), name="DP-static", adaptive=False
    )


def _experiment() -> str:
    blocks: List[str] = []
    for density in ("dense", "sparse"):
        series: Dict[str, List[float]] = {"adaptive": [], "static": []}
        for key in DATASET_KEYS:
            qs = query_set(key, DEFAULT_SIZE[key], density)
            series["adaptive"].append(run("DP-opt", key, qs).avg_enumeration_ms)
            series["static"].append(run(_static_dp(), key, qs).avg_enumeration_ms)
        blocks.append(
            format_series(
                f"Ablation — DP adaptive vs static ordering, {density} sets (ms)",
                DATASET_KEYS,
                series,
            )
        )
    blocks.append(
        f"[{bench_queries()} queries/set] paper: the adaptive ordering does "
        "not dominate the static one; its per-node LC probes cost time."
    )
    return "\n\n".join(blocks)


def bench_ablation_adaptive_vs_static(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

"""Ablation: NEC query compression (the Section 3.4 technique).

The paper cites the CFL study's verdict on query-graph compression: "only
a small number of query vertices could be compressed" on realistic
queries, so the technique was dropped from the main comparison. This
bench quantifies both halves:

1. measured compression ratios on the paper-style random-walk query sets
   (expected: close to 1.0 — little to compress);
2. the speedup on compression-friendly shapes (stars and same-label
   cliques), where grouping interchangeable vertices avoids enumerating
   ``Π |class|!`` permutations explicitly.
"""

from __future__ import annotations

from typing import List

from conftest import bench_match_cap, bench_queries, bench_time_limit
from shared import DEFAULT_SIZE, dataset, query_set

from repro.core.api import match
from repro.extensions import compress_query, match_compressed
from repro.graph import Graph
from repro.study import format_table
from repro.utils.timer import Timer

DATASET_KEYS = ["ye", "yt", "db"]


def _star(center_label: int, leaf_label: int, leaves: int) -> Graph:
    return Graph(
        labels=[center_label] + [leaf_label] * leaves,
        edges=[(0, i) for i in range(1, leaves + 1)],
    )


def _experiment() -> str:
    blocks: List[str] = []

    # 1. Compression ratios on random-walk query sets.
    rows: List[List[object]] = []
    for key in DATASET_KEYS:
        for density in ("dense", "sparse"):
            qs = query_set(key, DEFAULT_SIZE[key], density)
            ratios = [
                compress_query(query).compression_ratio
                for query in qs.queries
            ]
            rows.append(
                [
                    f"{key}/{qs.label}",
                    round(sum(ratios) / len(ratios), 3),
                    round(max(ratios), 3),
                ]
            )
    blocks.append(
        format_table(
            ["query set", "avg ratio", "max ratio"],
            rows,
            title="Ablation — NEC compression ratio on random-walk queries "
            "(1.0 = incompressible)",
        )
    )

    # 2. Speedup on compression-friendly stars.
    data = dataset("yt")
    labels = sorted(data.label_set, key=lambda l: -data.label_frequency(l))
    rows2: List[List[object]] = []
    for leaves in (3, 4, 5):
        star = _star(labels[0], labels[1], leaves)
        with Timer() as t_plain:
            plain = match(
                star, data, algorithm="GQL-opt",
                match_limit=bench_match_cap(),
                time_limit=bench_time_limit(), store_limit=0,
            )
        with Timer() as t_nec:
            nec = match_compressed(
                star, data,
                match_limit=bench_match_cap(),
                time_limit=bench_time_limit(), store_limit=0,
            )
        rows2.append(
            [
                f"star-{leaves}",
                compress_query(star).compression_ratio,
                plain.num_matches,
                nec.num_matches,
                round(t_plain.elapsed_ms, 2),
                round(t_nec.elapsed_ms, 2),
                round(t_plain.elapsed_ms / max(1e-3, t_nec.elapsed_ms), 2),
            ]
        )
    blocks.append(
        format_table(
            ["query", "ratio", "plain #", "NEC #", "plain ms", "NEC ms", "speedup"],
            rows2,
            title="Ablation — NEC on compression-friendly stars (yt)",
        )
    )

    blocks.append(
        f"[{bench_queries()} queries/set] paper (via CFL study): random "
        "queries barely compress; the technique only pays on special shapes."
    )
    return "\n\n".join(blocks)


def bench_ablation_compression(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

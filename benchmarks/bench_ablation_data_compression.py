"""Ablation: BoostIso-style data-graph compression (Section 3.4).

The paper relays the CFL study's verdict: "the data graph compression
technique worked well only when the data graph was very dense". This
bench measures (1) how much each dataset stand-in actually compresses and
(2) the count-query speedup of matching on the compressed graph, across
the density spectrum.
"""

from __future__ import annotations

from typing import List

from conftest import bench_match_cap, bench_time_limit
from shared import dataset, query_set

from repro.core.api import match
from repro.extensions import compress_data_graph, match_data_compressed
from repro.study import format_table
from repro.utils.timer import Timer

#: Sparse → dense stand-ins (wn 3.1 → hu 36.9 average degree).
DATASET_KEYS = ["wn", "yt", "ye", "hu", "eu"]


def _experiment() -> str:
    rows: List[List[object]] = []
    for key in DATASET_KEYS:
        data = dataset(key)
        with Timer() as t_compress:
            compressed = compress_data_graph(data)

        qs = query_set(key, 6, "dense")
        plain_ms = 0.0
        hyper_ms = 0.0
        agreements = 0
        for query in qs.queries:
            with Timer() as t_plain:
                plain = match(
                    query, data, algorithm="GQL-opt",
                    match_limit=bench_match_cap(),
                    time_limit=bench_time_limit(), store_limit=0,
                )
            with Timer() as t_hyper:
                hyper = match_data_compressed(
                    query, data,
                    match_limit=bench_match_cap(),
                    time_limit=bench_time_limit(), store_limit=0,
                    compressed=compressed,
                )
            plain_ms += t_plain.elapsed_ms
            hyper_ms += t_hyper.elapsed_ms
            if plain.num_matches == hyper.num_matches or not (
                plain.solved and hyper.solved
            ):
                agreements += 1

        n = len(qs.queries)
        rows.append(
            [
                key,
                round(data.average_degree, 1),
                round(compressed.compression_ratio, 3),
                round(t_compress.elapsed_ms, 1),
                round(plain_ms / n, 2),
                round(hyper_ms / n, 2),
                round((plain_ms / n) / max(1e-3, hyper_ms / n), 2),
                f"{agreements}/{n}",
            ]
        )

    table = format_table(
        [
            "dataset", "d(G)", "ratio", "compress ms",
            "plain ms", "hyper ms", "speedup", "counts agree",
        ],
        rows,
        title="Ablation — BoostIso-style data compression across density",
    )
    note = (
        "paper (via CFL study): data compression only pays on very dense "
        "graphs. Our variant folds strict twins only — BoostIso also "
        "exploits syntactic *containment* relations, which is where dense "
        "graphs gain — so here the ratio is driven by leaf twins (higher "
        "on sparse stand-ins) and the unfiltered hyper enumeration wins "
        "only where compression is substantial for the queried labels. "
        "Caveat: at the match cap the two counts can differ (hyper "
        "counting jumps in class-size steps)."
    )
    return table + "\n\n" + note


def bench_ablation_data_compression(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

"""Ablation: ComputeLC method cross product on a fixed filter + ordering.

Holds the GraphQL filter and ordering fixed and swaps only the LC method
(Algorithm 2 / 3 / 5), isolating the enumeration axis the way Section 3.3's
cost analysis does. Algorithm 4 is CFL-specific (tree auxiliary) and is
measured inside its own preset in Figure 9.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from conftest import bench_queries
from shared import DEFAULT_SIZE, query_set, run

from repro.core import get_algorithm
from repro.enumeration import CandidateScanLC, IntersectionLC, NeighborScanLC
from repro.study import format_series

DATASET_KEYS = ["ye", "hp", "yt", "db"]


def _variant(lc, name, aux_scope):
    return dataclasses.replace(
        get_algorithm("GQL-opt"), name=name, lc=lc, aux_scope=aux_scope
    )


VARIANTS = {
    "Alg2 (scan N(M[u.p]))": lambda: _variant(NeighborScanLC(), "GQL-alg2", "none"),
    "Alg3 (scan C(u))": lambda: _variant(CandidateScanLC(), "GQL-alg3", "none"),
    "Alg5 (intersection)": lambda: _variant(IntersectionLC(), "GQL-alg5", "all"),
}


def _experiment() -> str:
    series: Dict[str, List[float]] = {name: [] for name in VARIANTS}
    for key in DATASET_KEYS:
        qs = query_set(key, DEFAULT_SIZE[key], "dense")
        for name, factory in VARIANTS.items():
            series[name].append(run(factory(), key, qs).avg_enumeration_ms)
    table = format_series(
        "Ablation — LC method under fixed GQL filter+ordering (enum ms)",
        DATASET_KEYS,
        series,
    )
    note = (
        f"[{bench_queries()} queries/set] expected (Section 3.3.2): "
        "Alg5 <= Alg2 < Alg3; maintaining candidate edges pays for itself."
    )
    return table + "\n\n" + note


def bench_ablation_lc_methods(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

"""Ablation: refinement depth of the filters (DESIGN.md Section 6).

Sweeps DP-iso's refinement-phase count k and GraphQL's pseudo-isomorphism
round count against the STEADY fixpoint, reporting pruning power (avg
|C(u)|) and filter time. Shows the diminishing returns that justify the
papers' small fixed k.
"""

from __future__ import annotations

from typing import Dict, List

from conftest import bench_queries
from shared import DEFAULT_SIZE, dataset, query_set

from repro.filtering import DPisoFilter, GraphQLFilter, SteadyFilter
from repro.study import format_series
from repro.utils.timer import Timer

DATASET_KEYS = ["ye", "yt", "wn"]


def _measure(filter_factory, data, queries):
    candidates_total = 0.0
    time_total = 0.0
    for query in queries:
        filt = filter_factory()
        with Timer() as t:
            result = filt.run(query, data)
        candidates_total += result.average_size
        time_total += t.elapsed_ms
    n = max(1, len(queries))
    return candidates_total / n, time_total / n


def _experiment() -> str:
    blocks: List[str] = []

    ks = [1, 2, 3, 4]
    for key in DATASET_KEYS:
        data = dataset(key)
        qs = query_set(key, DEFAULT_SIZE[key], "dense")
        cand_series: Dict[str, List[float]] = {"DP(k)": [], "DP time ms": []}
        for k in ks:
            avg_c, avg_t = _measure(
                lambda k=k: DPisoFilter(refinement_phases=k), data, qs.queries
            )
            cand_series["DP(k)"].append(avg_c)
            cand_series["DP time ms"].append(avg_t)
        steady_c, steady_t = _measure(SteadyFilter, data, qs.queries)
        cand_series["STEADY"] = [steady_c] * len(ks)
        cand_series["STEADY time ms"] = [steady_t] * len(ks)
        blocks.append(
            format_series(
                f"Ablation — DP-iso refinement phases k on {key}: avg |C(u)| and time",
                ks,
                cand_series,
            )
        )

    rounds = [0, 1, 2, 3]
    data = dataset("yt")
    qs = query_set("yt", DEFAULT_SIZE["yt"], "dense")
    gql_series: Dict[str, List[float]] = {"GQL(k)": [], "GQL time ms": []}
    for k in rounds:
        avg_c, avg_t = _measure(
            lambda k=k: GraphQLFilter(refinement_rounds=k), data, qs.queries
        )
        gql_series["GQL(k)"].append(avg_c)
        gql_series["GQL time ms"].append(avg_t)
    blocks.append(
        format_series(
            "Ablation — GraphQL global-refinement rounds on yt",
            rounds,
            gql_series,
        )
    )

    blocks.append(
        f"[{bench_queries()} queries/set] expected: pruning power converges "
        "toward STEADY within 2-3 sweeps while time keeps growing — the "
        "papers' small fixed k is the right trade."
    )
    return "\n\n".join(blocks)


def bench_ablation_refinement_depth(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

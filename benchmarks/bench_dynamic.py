"""Dynamic graphs: incremental candidate maintenance vs from-scratch rebuild.

The workload is the serving tier's steady state: a resident data graph
absorbing a stream of small mutation batches (1% total edge churn by
default) while a standing query's candidate structure must stay
current. Two ways to stay current:

* **incremental** — the shipped path: fold each batch's
  :class:`~repro.dynamic.MutationDelta` into a live
  :class:`~repro.dynamic.IncrementalCandidates` over the
  :class:`~repro.dynamic.DynamicGraph` overlay (work proportional to
  the delta);
* **from scratch** — the baseline: rebuild the immutable
  :class:`~repro.graph.graph.Graph` from its edge list after each batch
  and run the full two-pass candidate build (work proportional to the
  graph).

Correctness rides along, twice: before timing, the script replays once
with ``equal_state`` checked against a full rebuild *after every
batch*, and the final graph's match result must be byte-identical
between the overlay snapshot and a from-scratch graph. The benchmark
refuses to emit a payload otherwise.

Run directly (``python benchmarks/bench_dynamic.py``) to write
``BENCH_dynamic.json`` (also copied to ``benchmarks/results/``),
schema-stamped and validated by
:func:`repro.obs.schema.validate_bench_dynamic` — which enforces the
``MIN_DYNAMIC_SPEEDUP`` floor and zero shared-memory/tempfile leaks.
Flags scale the workload down for CI smoke runs
(``--vertices 400 --batch-size 2``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__":  # standalone run: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.api import match
from repro.dynamic import DynamicGraph, IncrementalCandidates, Mutation
from repro.graph.generators import erdos_renyi_graph
from repro.graph.graph import Graph
from repro.graph.query_gen import extract_query
from repro.obs.schema import (
    BENCH_DYNAMIC_SCHEMA_VERSION,
    validate_bench_dynamic,
)

DEFAULT_VERTICES = 2_000
DEFAULT_DEGREE = 8.0
DEFAULT_LABELS = 4
DEFAULT_QUERY_SIZE = 5
DEFAULT_CHURN = 0.01
DEFAULT_BATCH_SIZE = 4
DEFAULT_MATCH_LIMIT = 100_000


def _shm_names() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # non-Linux: no visible segment directory
        return set()


def _temp_entries() -> set:
    try:
        return set(os.listdir(tempfile.gettempdir()))
    except OSError:
        return set()


def build_workload(
    vertices: int,
    degree: float,
    labels: int,
    query_size: int,
    churn_fraction: float,
    batch_size: int,
    seed: int = 13,
):
    """One ER graph, one extracted query, one seeded mutation script.

    The script alternates removing live edges and inserting fresh ones
    (so the graph neither empties nor densifies over the run), with an
    occasional vertex insertion wired onto an existing vertex — the
    serving scenarios are append-heavy. Total edge ops come to
    ``churn_fraction`` of the base edge count, split into
    ``batch_size``-op batches.
    """
    data = erdos_renyi_graph(vertices, degree, labels, seed=seed)
    query = extract_query(data, query_size, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)

    ops_total = max(batch_size, int(churn_fraction * data.num_edges))
    live = set(data.edges())
    absent_pool = []
    while len(absent_pool) < ops_total:
        u, v = (int(x) for x in rng.integers(0, vertices, size=2))
        if u != v and (min(u, v), max(u, v)) not in live:
            absent_pool.append((min(u, v), max(u, v)))

    script = []
    batch = []
    next_vertex = vertices
    for i in range(ops_total):
        if i % 2 == 0:
            pick = sorted(live)[int(rng.integers(0, len(live)))]
            batch.append(Mutation("remove_edge", *pick))
            live.discard(pick)
        elif i % 9 == 5:
            label = int(rng.integers(0, labels))
            anchor = int(rng.integers(0, vertices))
            batch.append(Mutation("add_vertex", label))
            batch.append(Mutation("add_edge", anchor, next_vertex))
            next_vertex += 1
        else:
            edge = absent_pool.pop()
            batch.append(Mutation("add_edge", *edge))
            live.add(edge)
        if len(batch) >= batch_size:
            script.append(tuple(batch))
            batch = []
    if batch:
        script.append(tuple(batch))
    return data, query, script


def _replay_scratch(data: Graph, script) -> list:
    """The per-batch edge lists a from-scratch consumer would rebuild."""
    labels = data.labels.tolist()
    edges = set(data.edges())
    states = []
    for batch in script:
        for mutation in batch:
            if mutation.op == "add_vertex":
                labels = labels + [mutation.a]
            else:
                edge = (min(mutation.a, mutation.b), max(mutation.a, mutation.b))
                if mutation.op == "add_edge":
                    edges.add(edge)
                else:
                    edges.discard(edge)
        states.append((list(labels), sorted(edges)))
    return states


def run_dynamic_benchmark(
    vertices: int = DEFAULT_VERTICES,
    degree: float = DEFAULT_DEGREE,
    labels: int = DEFAULT_LABELS,
    query_size: int = DEFAULT_QUERY_SIZE,
    churn_fraction: float = DEFAULT_CHURN,
    batch_size: int = DEFAULT_BATCH_SIZE,
    match_limit: int = DEFAULT_MATCH_LIMIT,
) -> dict:
    """Time both maintenance strategies; returns the validated payload."""
    shm_before = _shm_names()
    tmp_before = _temp_entries()
    data, query, script = build_workload(
        vertices, degree, labels, query_size, churn_fraction, batch_size
    )
    scratch_states = _replay_scratch(data, script)
    ops_total = sum(len(batch) for batch in script)

    # Verification replay (untimed): incremental state must equal a full
    # rebuild after every batch, and the final match must be
    # byte-identical between the overlay snapshot and a fresh graph.
    dyn = DynamicGraph(data)
    inc = IncrementalCandidates(query, dyn)
    states_identical = True
    for batch in script:
        inc.apply_delta(dyn.apply(batch))
        if not inc.equal_state(inc.rebuild()):
            states_identical = False
            break
    final_scratch = Graph(labels=scratch_states[-1][0], edges=scratch_states[-1][1])
    incremental_result = match(
        query, dyn.snapshot(), match_limit=match_limit, store_limit=match_limit
    )
    scratch_result = match(
        query, final_scratch, match_limit=match_limit, store_limit=match_limit
    )
    final_match_identical = (
        incremental_result.num_matches == scratch_result.num_matches
        and incremental_result.embeddings == scratch_result.embeddings
    )
    if not (states_identical and final_match_identical):
        raise SystemExit(
            "incremental maintenance diverged from the from-scratch rebuild "
            "— refusing to write a benchmark payload for a broken path"
        )

    # Timed: the shipped incremental path.
    dyn = DynamicGraph(data)
    inc = IncrementalCandidates(query, dyn)
    start = time.perf_counter()
    for batch in script:
        inc.apply_delta(dyn.apply(batch))
    incremental_seconds = time.perf_counter() - start

    # Timed: rebuild the graph and the candidate structure per batch.
    start = time.perf_counter()
    for state_labels, state_edges in scratch_states:
        rebuilt = Graph(labels=state_labels, edges=state_edges)
        IncrementalCandidates(query, rebuilt)
    scratch_seconds = time.perf_counter() - start

    payload = {
        "schema_version": BENCH_DYNAMIC_SCHEMA_VERSION,
        "benchmark": "dynamic-mutation",
        "workload": {
            "data_vertices": data.num_vertices,
            "data_edges": data.num_edges,
            "data_degree": degree,
            "num_labels": labels,
            "query_vertices": query.num_vertices,
            "num_batches": len(script),
            "ops_total": ops_total,
            "churn_fraction": churn_fraction,
            "batch_size": batch_size,
            "match_limit": match_limit,
        },
        "timings": {
            "incremental_seconds": incremental_seconds,
            "scratch_seconds": scratch_seconds,
            "incremental_seconds_per_batch": incremental_seconds / len(script),
            "scratch_seconds_per_batch": scratch_seconds / len(script),
        },
        "speedup_incremental_vs_scratch": scratch_seconds / incremental_seconds,
        "final_matches": incremental_result.num_matches,
        "states_identical": states_identical,
        "final_match_identical": final_match_identical,
        "shm_segments_leaked": len(_shm_names() - shm_before),
        "tempfiles_leaked": len(_temp_entries() - tmp_before),
    }
    validate_bench_dynamic(payload)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=DEFAULT_VERTICES)
    parser.add_argument("--degree", type=float, default=DEFAULT_DEGREE)
    parser.add_argument("--labels", type=int, default=DEFAULT_LABELS)
    parser.add_argument("--query-size", type=int, default=DEFAULT_QUERY_SIZE)
    parser.add_argument("--churn", type=float, default=DEFAULT_CHURN)
    parser.add_argument("--batch-size", type=int, default=DEFAULT_BATCH_SIZE)
    parser.add_argument("--match-limit", type=int, default=DEFAULT_MATCH_LIMIT)
    parser.add_argument(
        "--output", default="BENCH_dynamic.json",
        help="payload path (a copy also lands in benchmarks/results/)",
    )
    args = parser.parse_args(argv)

    results = run_dynamic_benchmark(
        vertices=args.vertices,
        degree=args.degree,
        labels=args.labels,
        query_size=args.query_size,
        churn_fraction=args.churn,
        batch_size=args.batch_size,
        match_limit=args.match_limit,
    )
    payload = json.dumps(results, indent=2) + "\n"
    out = Path(args.output)
    out.write_text(payload)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_dynamic.json").write_text(payload)
    print(payload, end="")
    print(f"wrote {out.resolve()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Enumeration engines: recursive backtracker vs the iterative frame machine.

The workload is a Figure 16-style repeated-enumeration sweep: one
synthetic data graph, a pool of extracted queries, the full match cap
(the paper's 10^5), sessions pre-warmed so preprocessing is outside the
timed region — the measurement isolates the enumeration loop, which is
exactly what the frame machine restructures (explicit frames, vectorized
conflict filtering, leaf batching). Each preset/engine timing is the sum
over ``repeats`` enumeration-only passes of the whole pool.

Correctness rides along: before timing, every query runs once per engine
with embeddings retained, and the benchmark refuses to produce a payload
unless the engines' match counts and embedding lists are byte-identical.

Run directly (``python benchmarks/bench_engine.py``) to write
``BENCH_engine.json`` (also copied to ``benchmarks/results/``),
schema-stamped and validated by
:func:`repro.obs.schema.validate_bench_engine`. Flags scale the workload
down for CI smoke runs (``--vertices 300 --queries 2 --repeats 1``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone run: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.session import MatchSession
from repro.enumeration.engines import enable_recursive_baseline
from repro.graph.generators import rmat_graph

# The benchmark's entire subject is recursive-vs-iterative — opt into
# the retired baseline explicitly.
enable_recursive_baseline()
from repro.graph.query_gen import extract_query
from repro.obs.schema import BENCH_ENGINE_SCHEMA_VERSION, validate_bench_engine

#: Defaults sized like bench_fig16_overall's regime — enumeration-bound
#: queries on a dense unlabeled graph that hit the paper's 10^5 match
#: cap, so the measured time is the enumeration loop itself (the piece
#: the frame machine restructures) rather than candidate filtering.
DEFAULT_VERTICES = 2_000
DEFAULT_DEGREE = 64.0
DEFAULT_LABELS = 1
DEFAULT_QUERIES = 4
DEFAULT_REPEATS = 3
DEFAULT_QUERY_SIZE = 8
DEFAULT_MATCH_LIMIT = 100_000
DEFAULT_PRESETS = ("GQLfs", "GQL-opt")
ENGINES = ("recursive", "iterative")


def build_workload(
    vertices: int,
    num_queries: int,
    query_size: int,
    degree: float = DEFAULT_DEGREE,
    labels: int = DEFAULT_LABELS,
):
    """One RMAT data graph plus a pool of random-walk queries."""
    data = rmat_graph(vertices, degree, labels, seed=7, clustering=0.1)
    pool = [
        extract_query(data, query_size, seed=seed)
        for seed in range(num_queries)
    ]
    return data, pool


def run_engine_benchmark(
    vertices: int = DEFAULT_VERTICES,
    num_queries: int = DEFAULT_QUERIES,
    repeats: int = DEFAULT_REPEATS,
    query_size: int = DEFAULT_QUERY_SIZE,
    match_limit: int = DEFAULT_MATCH_LIMIT,
    presets=DEFAULT_PRESETS,
    degree: float = DEFAULT_DEGREE,
    labels: int = DEFAULT_LABELS,
) -> dict:
    """Time both engines per preset; returns the validated payload."""
    data, pool = build_workload(
        vertices, num_queries, query_size, degree=degree, labels=labels
    )

    preset_entries = []
    total_seconds = {engine: 0.0 for engine in ENGINES}
    for algorithm in presets:
        # One session per engine, prep cache unbounded: the first pass
        # pays filtering/ordering once per query, every timed pass after
        # it runs enumeration only.
        sessions = {
            engine: MatchSession(
                data,
                algorithm=algorithm,
                engine=engine,
                plan_cache_size=None,
                prep_cache_size=None,
            )
            for engine in ENGINES
        }

        # Verification pass (also the cache warm-up): embeddings must be
        # byte-identical across engines, order included.
        embeddings = {}
        counts = {}
        for engine, session in sessions.items():
            results = [
                session.match(
                    query,
                    match_limit=match_limit,
                    store_limit=match_limit,
                    validate=False,
                )
                for query in pool
            ]
            embeddings[engine] = [r.embeddings for r in results]
            counts[engine] = sum(r.num_matches for r in results)
        baseline = ENGINES[0]
        identical = all(
            embeddings[engine] == embeddings[baseline] for engine in ENGINES
        )
        if not identical:
            raise SystemExit(
                f"{algorithm}: engines returned different embeddings — "
                "refusing to write a benchmark payload for a broken engine"
            )

        stats = {}
        for engine, session in sessions.items():
            start = time.perf_counter()
            for _ in range(repeats):
                for query in pool:
                    session.match(
                        query,
                        match_limit=match_limit,
                        store_limit=0,
                        validate=False,
                    )
            elapsed = time.perf_counter() - start
            stats[engine] = {
                "seconds_total": elapsed,
                "seconds_per_query": elapsed / (repeats * len(pool)),
                "matches_total": counts[engine],
            }
            total_seconds[engine] += elapsed

        preset_entries.append(
            {
                "algorithm": algorithm,
                "engines": stats,
                "speedup_iterative_vs_recursive": (
                    stats["recursive"]["seconds_total"]
                    / stats["iterative"]["seconds_total"]
                ),
                "embeddings_identical": identical,
            }
        )

    payload = {
        "schema_version": BENCH_ENGINE_SCHEMA_VERSION,
        "benchmark": "engine-comparison",
        "workload": {
            "data_vertices": data.num_vertices,
            "data_degree": degree,
            "num_labels": labels,
            "query_vertices": query_size,
            "num_queries": num_queries,
            "repeats": repeats,
            "match_limit": match_limit,
        },
        "presets": preset_entries,
        "overall_speedup": (
            total_seconds["recursive"] / total_seconds["iterative"]
        ),
    }
    validate_bench_engine(payload)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=DEFAULT_VERTICES)
    parser.add_argument("--degree", type=float, default=DEFAULT_DEGREE)
    parser.add_argument("--labels", type=int, default=DEFAULT_LABELS)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--query-size", type=int, default=DEFAULT_QUERY_SIZE)
    parser.add_argument("--match-limit", type=int, default=DEFAULT_MATCH_LIMIT)
    parser.add_argument(
        "--presets", nargs="+", default=list(DEFAULT_PRESETS),
        help="algorithm presets to compare the engines on",
    )
    parser.add_argument(
        "--output", default="BENCH_engine.json",
        help="payload path (a copy also lands in benchmarks/results/)",
    )
    args = parser.parse_args(argv)

    results = run_engine_benchmark(
        vertices=args.vertices,
        num_queries=args.queries,
        repeats=args.repeats,
        query_size=args.query_size,
        match_limit=args.match_limit,
        presets=args.presets,
        degree=args.degree,
        labels=args.labels,
    )
    payload = json.dumps(results, indent=2) + "\n"
    out = Path(args.output)
    out.write_text(payload)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_engine.json").write_text(payload)
    print(payload, end="")
    print(f"wrote {out.resolve()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

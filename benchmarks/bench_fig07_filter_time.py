"""Figure 7: preprocessing time of the filtering methods.

Paper findings to reproduce in shape:
(1) GQL is generally the slowest filter (higher time complexity);
(2) CECI and DP spend more time than CFL (more refinement / more candidate
    edges) despite the same asymptotic complexity;
(3) preprocessing grows with |V(q)| and differs little between dense and
    sparse queries; absolute values stay small.
"""

from __future__ import annotations

from typing import Dict, List

from conftest import bench_queries
from shared import ALL_DATASETS, DEFAULT_SIZE, SIZE_LADDER, dataset, query_set

from repro.filtering import CECIFilter, CFLFilter, DPisoFilter, GraphQLFilter
from repro.study import format_series
from repro.utils.timer import Timer

FILTERS = {
    "GQL": GraphQLFilter,
    "CFL": CFLFilter,
    "CECI": CECIFilter,
    "DP": DPisoFilter,
}


def _avg_filter_ms(filter_cls, data, queries) -> float:
    total = 0.0
    for query in queries:
        filt = filter_cls()
        with Timer() as t:
            filt.run(query, data)
        total += t.elapsed_ms
    return total / max(1, len(queries))


def _experiment() -> str:
    blocks: List[str] = []

    # (a) + (c): per dataset, dense and sparse default sets.
    for density in ("dense", "sparse"):
        series: Dict[str, List[float]] = {name: [] for name in FILTERS}
        for key in ALL_DATASETS:
            data = dataset(key)
            qs = query_set(key, DEFAULT_SIZE[key], density)
            for name, cls in FILTERS.items():
                series[name].append(_avg_filter_ms(cls, data, qs.queries))
        blocks.append(
            format_series(
                f"Figure 7(a/c) — avg filtering time (ms), {density} default sets",
                ALL_DATASETS,
                series,
            )
        )

    # (b): vary |V(q)| on yt.
    sizes = SIZE_LADDER["yt"]
    series_b: Dict[str, List[float]] = {name: [] for name in FILTERS}
    data = dataset("yt")
    for size in sizes:
        qs = query_set("yt", size, "dense" if size > 4 else None)
        for name, cls in FILTERS.items():
            series_b[name].append(_avg_filter_ms(cls, data, qs.queries))
    blocks.append(
        format_series(
            "Figure 7(b) — avg filtering time (ms) on yt, |V(q)| varied",
            sizes,
            series_b,
        )
    )

    blocks.append(
        f"[{bench_queries()} queries/set] paper: GQL slowest; CECI/DP slower "
        "than CFL; time grows with |V(q)|; dense vs sparse gap small."
    )
    return "\n\n".join(blocks)


def bench_fig07_filter_preprocessing_time(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

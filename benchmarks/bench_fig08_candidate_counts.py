"""Figure 8: pruning power — average candidate-set size per filter.

Baselines: LDF (no refinement) and STEADY (the Rule 3.1 fixpoint).
Paper findings to reproduce in shape:
(1) on wn (most vertices share one label) all methods sit close to LDF and
    GQL is the strongest;
(2) elsewhere GQL, CFL and DP are competitive, CECI is weaker, DP slightly
    beats CFL;
(3) CFL/DP land close to STEADY;
(4) Q4 has more candidates than larger queries, sparse more than dense.
"""

from __future__ import annotations

from typing import Dict, List

from conftest import bench_queries
from shared import ALL_DATASETS, DEFAULT_SIZE, SIZE_LADDER, dataset, query_set

from repro.filtering import (
    CECIFilter,
    CFLFilter,
    DPisoFilter,
    GraphQLFilter,
    LDFFilter,
    SteadyFilter,
)
from repro.study import format_series

FILTERS = {
    "LDF": LDFFilter,
    "GQL": GraphQLFilter,
    "CFL": CFLFilter,
    "CECI": CECIFilter,
    "DP": DPisoFilter,
    "STEADY": SteadyFilter,
}


def _avg_candidates(filter_cls, data, queries) -> float:
    total = 0.0
    for query in queries:
        total += filter_cls().run(query, data).average_size
    return total / max(1, len(queries))


def _experiment() -> str:
    blocks: List[str] = []

    for density in ("dense", "sparse"):
        series: Dict[str, List[float]] = {name: [] for name in FILTERS}
        for key in ALL_DATASETS:
            data = dataset(key)
            qs = query_set(key, DEFAULT_SIZE[key], density)
            for name, cls in FILTERS.items():
                series[name].append(_avg_candidates(cls, data, qs.queries))
        blocks.append(
            format_series(
                f"Figure 8(a/c) — avg |C(u)|, {density} default sets",
                ALL_DATASETS,
                series,
            )
        )

    sizes = SIZE_LADDER["yt"]
    series_b: Dict[str, List[float]] = {name: [] for name in FILTERS}
    data = dataset("yt")
    for size in sizes:
        qs = query_set("yt", size, "dense" if size > 4 else None)
        for name, cls in FILTERS.items():
            series_b[name].append(_avg_candidates(cls, data, qs.queries))
    blocks.append(
        format_series(
            "Figure 8(b) — avg |C(u)| on yt, |V(q)| varied",
            sizes,
            series_b,
        )
    )

    blocks.append(
        f"[{bench_queries()} queries/set] paper: GQL best on wn; GQL/CFL/DP "
        "competitive elsewhere and close to STEADY; CECI weaker; sparse > "
        "dense candidate counts."
    )
    return "\n\n".join(blocks)


def bench_fig08_candidate_counts(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

"""Figure 9: speedup of the set-intersection ComputeLC (Algorithm 5).

Each algorithm's native local-candidate computation is replaced by the
optimized one — candidate adjacency for all query edges + Algorithm 5
(QSI/2PP keep their LDF candidate sets per Section 5.2; 2PP drops its
extra filtering rules) — and we report enumeration-time speedups.

Paper findings to reproduce in shape: CFL still gains 1.3-4.8x despite
already indexing tree edges; GQL and 2PP gain orders of magnitude; gains
on hp are limited because enumeration there is already very short.
"""

from __future__ import annotations

from typing import Dict, List

from conftest import bench_queries
from shared import ALL_DATASETS, DEFAULT_SIZE, query_set, run

from repro.study import format_series

#: native preset -> Algorithm 5 variant (Section 5.2 pairing).
PAIRS = {
    "QSI": ("QSI", "QSI-opt-ldf"),
    "GQL": ("GQL", "GQL-opt"),
    "CFL": ("CFL", "CFL-opt"),
    "2PP": ("2PP", "2PP-opt-ldf"),
}


def _experiment() -> str:
    series: Dict[str, List[float]] = {name: [] for name in PAIRS}
    for key in ALL_DATASETS:
        qs = query_set(key, DEFAULT_SIZE[key], "dense")
        for name, (native, optimized) in PAIRS.items():
            native_summary = run(native, key, qs)
            optimized_summary = run(optimized, key, qs)
            denominator = max(1e-3, optimized_summary.avg_enumeration_ms)
            series[name].append(native_summary.avg_enumeration_ms / denominator)

    table = format_series(
        "Figure 9 — enumeration-time speedup from Algorithm 5 (native/optimized)",
        ALL_DATASETS,
        series,
    )
    note = (
        f"[{bench_queries()} queries/set, dense defaults] paper: GQL and 2PP "
        "gain orders of magnitude; CFL gains 1.3-4.8x; speedup on hp is "
        "limited because its enumeration is already short."
    )
    return table + "\n\n" + note


def bench_fig09_lc_speedup(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

"""Figure 10: Hybrid vs QFilter-style intersection in the enumeration.

The optimized GQL algorithm runs with the paper's hybrid merge/galloping
kernel and with two models of QFilter, which bracket the real SIMD
implementation from opposite sides in pure Python:

* ``QFilter/BSR`` (`QFilterIndex`) — the faithful base-and-state layout;
  Python pays its per-block merge in interpreted ops, exposing the
  *overhead* side (the paper's sparse-graph losses);
* ``QFilter/bitmap`` (`BitmapSetIndex`) — one big-int ``&`` per
  intersection; near-free per element, exposing the *throughput* side
  (the paper's dense-graph wins).

Paper findings to reproduce in shape: QFilter wins on the dense graphs
(eu, hu) where each operation covers many set elements — visible in the
bitmap series — and loses on sparse graphs to layout overhead — visible
in the BSR series.
"""

from __future__ import annotations

from typing import Dict, List

from conftest import bench_queries
from shared import ALL_DATASETS, DEFAULT_SIZE, SIZE_LADDER, query_set, run

from repro.core import get_algorithm
from repro.core.spec import AlgorithmSpec
from repro.enumeration import IntersectionLC
from repro.study import format_series
from repro.utils.intersection import BitmapSetIndex, QFilterIndex

import dataclasses


def _kernel_spec(name: str, kernel) -> AlgorithmSpec:
    return dataclasses.replace(
        get_algorithm("GQL-opt"), name=name, lc=IntersectionLC(kernel=kernel)
    )


def _variants():
    # Index objects (not bound methods) so IntersectionLC intersects in
    # the packed domain and encode-caches only the auxiliary lists.
    return {
        "Hybrid": "GQL-opt",
        "QFilter/BSR": _kernel_spec("GQL-bsr", QFilterIndex()),
        "QFilter/bitmap": _kernel_spec("GQL-bitmap", BitmapSetIndex()),
    }


def _experiment() -> str:
    blocks: List[str] = []

    variants = _variants()
    series: Dict[str, List[float]] = {name: [] for name in variants}
    for key in ALL_DATASETS:
        qs = query_set(key, DEFAULT_SIZE[key], "dense")
        for name, spec in variants.items():
            series[name].append(run(spec, key, qs).avg_enumeration_ms)
    blocks.append(
        format_series(
            "Figure 10(a) — optimized GQL enumeration time (ms) by intersection kernel",
            ALL_DATASETS,
            series,
        )
    )

    sizes = SIZE_LADDER["yt"]
    variants = _variants()
    series_b: Dict[str, List[float]] = {name: [] for name in variants}
    for size in sizes:
        qs = query_set("yt", size, "dense" if size > 4 else None)
        for name, spec in variants.items():
            series_b[name].append(run(spec, "yt", qs).avg_enumeration_ms)
    blocks.append(
        format_series(
            "Figure 10(b) — dense queries on yt, |V(q)| varied",
            sizes,
            series_b,
        )
    )

    blocks.append(
        f"[{bench_queries()} queries/set] paper: QFilter wins on dense eu/hu "
        "(the bitmap series), loses on sparse graphs to layout overhead "
        "(the BSR series); pure Python cannot show both in one kernel."
    )
    return "\n\n".join(blocks)


def bench_fig10_set_intersection(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

"""Figure 11: enumeration time of the seven ordering methods.

Setup per Section 5.3: all algorithms run the optimized local-candidate
computation (Algorithm 5, all-edges auxiliary); QSI, RI and 2PP use
GraphQL's candidate sets; DP-iso's failing sets are disabled.

Paper findings to reproduce in shape: GQL and RI beat the newer orderings
overall; GQL wins on the dense hu, RI on the sparse yt/wn; CFL does much
better on sparse queries than dense ones; hp is uniformly fast.
"""

from __future__ import annotations

from typing import Dict, List

from conftest import bench_queries
from shared import ALL_DATASETS, DEFAULT_SIZE, SIZE_LADDER, query_set, run

from repro.study import format_series

ALGORITHMS = {
    "QSI": "QSI-opt",
    "GQL": "GQL-opt",
    "CFL": "CFL-opt",
    "CECI": "CECI-opt",
    "DP": "DP-opt",
    "RI": "RI-opt",
    "2PP": "2PP-opt",
}


def _experiment() -> str:
    blocks: List[str] = []

    # (a)+(c): per dataset, dense and sparse defaults.
    for density in ("dense", "sparse"):
        series: Dict[str, List[float]] = {name: [] for name in ALGORITHMS}
        for key in ALL_DATASETS:
            qs = query_set(key, DEFAULT_SIZE[key], density)
            for name, preset in ALGORITHMS.items():
                series[name].append(run(preset, key, qs).avg_enumeration_ms)
        blocks.append(
            format_series(
                f"Figure 11(a/c) — avg enumeration time (ms), {density} default sets",
                ALL_DATASETS,
                series,
            )
        )

    # (b): vary |V(q)| on yt (dense sets).
    sizes = SIZE_LADDER["yt"]
    series_b: Dict[str, List[float]] = {name: [] for name in ALGORITHMS}
    for size in sizes:
        qs = query_set("yt", size, "dense" if size > 4 else None)
        for name, preset in ALGORITHMS.items():
            series_b[name].append(run(preset, "yt", qs).avg_enumeration_ms)
    blocks.append(
        format_series(
            "Figure 11(b) — avg enumeration time (ms) on yt, |V(q)| varied",
            sizes,
            series_b,
        )
    )

    blocks.append(
        f"[{bench_queries()} queries/set, optimized LC, failing sets off] "
        "paper: GQL and RI are the most effective orderings; GQL wins on "
        "dense hu, RI on sparse yt/wn; time grows with |V(q)|."
    )
    return "\n\n".join(blocks)


def bench_fig11_ordering_time(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

"""Figure 12: standard deviation of the enumeration time on yt.

Paper finding to reproduce in shape: the standard deviation is large —
within one query set, per-query enumeration times vary wildly for every
ordering method.
"""

from __future__ import annotations

from typing import Dict, List

from conftest import bench_queries
from shared import query_set, run

from repro.study import format_series

ALGORITHMS = {
    "QSI": "QSI-opt",
    "GQL": "GQL-opt",
    "CFL": "CFL-opt",
    "CECI": "CECI-opt",
    "DP": "DP-opt",
    "RI": "RI-opt",
    "2PP": "2PP-opt",
}

SIZES = [8, 12, 16]


def _experiment() -> str:
    mean_series: Dict[str, List[float]] = {name: [] for name in ALGORITHMS}
    std_series: Dict[str, List[float]] = {name: [] for name in ALGORITHMS}
    for size in SIZES:
        qs = query_set("yt", size, "dense")
        for name, preset in ALGORITHMS.items():
            summary = run(preset, "yt", qs)
            mean_series[name].append(summary.avg_enumeration_ms)
            std_series[name].append(summary.std_enumeration_ms)

    blocks = [
        format_series(
            "Figure 12 — stddev of enumeration time (ms), dense queries on yt",
            SIZES,
            std_series,
        ),
        format_series(
            "(context) mean enumeration time (ms)",
            SIZES,
            mean_series,
        ),
        f"[{bench_queries()} queries/set] paper: large SD values — "
        "enumeration time varies greatly across queries in a set.",
    ]
    return "\n\n".join(blocks)


def bench_fig12_enumeration_stddev(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

"""Figure 13: percentage of short/median/long/unsolved queries on yt.

Thresholds are the paper's 1s/60s/300s rescaled to the configured budget
(fractions 1/300, 1/5, 1 — see RunSummary.categories).

Paper findings to reproduce in shape: more median/long/unsolved queries as
|V(q)| grows; RI solves the largest share of queries quickly on this
sparse dataset.
"""

from __future__ import annotations

from typing import List

from conftest import bench_queries
from shared import SIZE_LADDER, query_set, run

from repro.study import format_table

ALGORITHMS = {
    "QSI": "QSI-opt",
    "GQL": "GQL-opt",
    "CFL": "CFL-opt",
    "CECI": "CECI-opt",
    "DP": "DP-opt",
    "RI": "RI-opt",
    "2PP": "2PP-opt",
}


def _experiment() -> str:
    rows: List[List[object]] = []
    sizes = [s for s in SIZE_LADDER["yt"] if s > 4]
    for density in ("dense", "sparse"):
        for size in sizes:
            qs = query_set("yt", size, density)
            for name, preset in ALGORITHMS.items():
                summary = run(preset, "yt", qs)
                cats = summary.categories()
                n = max(1, summary.num_queries)
                rows.append(
                    [
                        qs.label,
                        name,
                        round(100.0 * cats["short"] / n, 1),
                        round(100.0 * cats["median"] / n, 1),
                        round(100.0 * cats["long"] / n, 1),
                        round(100.0 * cats["unsolved"] / n, 1),
                    ]
                )
    table = format_table(
        ["set", "algorithm", "short%", "median%", "long%", "unsolved%"],
        rows,
        title="Figure 13 — query categories by enumeration time, yt",
    )
    note = (
        f"[{bench_queries()} queries/set] paper: categories shift toward "
        "median/long/unsolved as |V(q)| grows; RI answers >95% of large "
        "queries within the short bucket on this sparse dataset."
    )
    return table + "\n\n" + note


def bench_fig13_query_categories(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

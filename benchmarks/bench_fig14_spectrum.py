"""Figure 14: spectrum analysis — enumeration time across random orders.

For one dense and one sparse query per dataset (ye and yt here), sample
random connected matching orders, run the optimized GQL configuration
under each, and print the distribution next to the times achieved by the
GQL and RI orderings.

Paper finding to reproduce in shape: the sampled spectrum is wide — orders
exist that beat the algorithmic orders by large factors, i.e. every
ordering method can generate ineffective orders.
"""

from __future__ import annotations

import os
from typing import List, Optional

from conftest import bench_match_cap, bench_time_limit
from shared import dataset, query_set, DEFAULT_SIZE

from repro.enumeration import BacktrackingEngine, IntersectionLC
from repro.filtering import AuxiliaryStructure, GraphQLFilter
from repro.ordering import GraphQLOrdering, RIOrdering, sample_orders
from repro.study import format_table


def _orders_per_query() -> int:
    return int(os.environ.get("REPRO_SPECTRUM_ORDERS", "60"))


def _time_with_order(query, data, candidates, auxiliary, order) -> Optional[float]:
    engine = BacktrackingEngine(IntersectionLC())
    outcome = engine.run(
        query,
        data,
        candidates,
        auxiliary,
        order,
        match_limit=bench_match_cap(),
        time_limit=bench_time_limit(),
        store_limit=0,
    )
    if not outcome.solved:
        return None
    return outcome.elapsed * 1000.0


def _percentile(values: List[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1)))
    return ordered[index]


def _experiment() -> str:
    rows: List[List[object]] = []
    for key, density in [("ye", "dense"), ("ye", "sparse"), ("yt", "dense"), ("yt", "sparse")]:
        data = dataset(key)
        qs = query_set(key, DEFAULT_SIZE[key], density)
        query = qs.queries[0]
        candidates = GraphQLFilter().run(query, data)
        auxiliary = AuxiliaryStructure.build(query, data, candidates, scope="all")

        sampled: List[float] = []
        timeouts = 0
        for order in sample_orders(query, _orders_per_query(), seed=999):
            t = _time_with_order(query, data, candidates, auxiliary, order)
            if t is None:
                timeouts += 1
            else:
                sampled.append(t)

        gql_t = _time_with_order(
            query, data, candidates, auxiliary,
            GraphQLOrdering().order(query, data, candidates),
        )
        ri_t = _time_with_order(
            query, data, candidates, auxiliary,
            RIOrdering().order(query, data, candidates),
        )
        if not sampled:
            sampled = [bench_time_limit() * 1000.0]
        rows.append(
            [
                f"{key}/{qs.label}",
                round(min(sampled), 3),
                round(_percentile(sampled, 0.5), 3),
                round(max(sampled), 3),
                timeouts,
                round(gql_t, 3) if gql_t is not None else "timeout",
                round(ri_t, 3) if ri_t is not None else "timeout",
            ]
        )

    table = format_table(
        ["query", "best(ms)", "median(ms)", "worst(ms)", "timeouts", "GQL(ms)", "RI(ms)"],
        rows,
        title="Figure 14 — spectrum of enumeration time over sampled orders",
    )
    note = (
        f"[{_orders_per_query()} sampled orders/query] paper: the spectrum "
        "is wide and better orders than GQL's/RI's exist for some queries."
    )
    return table + "\n\n" + note


def bench_fig14_spectrum(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

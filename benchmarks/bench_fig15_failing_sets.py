"""Figure 15: effect of the failing-sets pruning on enumeration time.

(a) DP-iso with/without failing sets across query sizes — the optimization
    costs time on small queries and pays off by up to an order of
    magnitude on large ones;
(b) every algorithm on yt — failing sets speed each of them up on the
    default (large) query sets.
"""

from __future__ import annotations

from typing import Dict, List

from conftest import bench_queries
from shared import DEFAULT_SIZE, SIZE_LADDER, query_set, run

from repro.study import format_series

PAIRS = {
    "QSI": ("QSI-opt", "QSIfs"),
    "GQL": ("GQL-opt", "GQLfs"),
    "CFL": ("CFL-opt", "CFLfs"),
    "CECI": ("CECI-opt", "CECIfs"),
    "DP": ("DP-opt", "DPfs"),
    "RI": ("RI-opt", "RIfs"),
    "2PP": ("2PP-opt", "2PPfs"),
}


def _experiment() -> str:
    blocks: List[str] = []

    # (a): DP across sizes, dense yt queries.
    sizes = SIZE_LADDER["yt"]
    series_a: Dict[str, List[float]] = {"DP wo/fs": [], "DP w/fs": []}
    for size in sizes:
        qs = query_set("yt", size, "dense" if size > 4 else None)
        series_a["DP wo/fs"].append(run("DP-opt", "yt", qs).avg_enumeration_ms)
        series_a["DP w/fs"].append(run("DPfs", "yt", qs).avg_enumeration_ms)
    blocks.append(
        format_series(
            "Figure 15(a) — DP enumeration time (ms) on yt, |V(q)| varied",
            sizes,
            series_a,
        )
    )

    # (b): every algorithm on the yt default sets.
    series_b: Dict[str, List[float]] = {}
    labels = []
    for density in ("dense", "sparse"):
        qs = query_set("yt", DEFAULT_SIZE["yt"], density)
        labels.append(qs.label)
        for name, (plain, with_fs) in PAIRS.items():
            series_b.setdefault(f"{name} wo/fs", []).append(
                run(plain, "yt", qs).avg_enumeration_ms
            )
            series_b.setdefault(f"{name} w/fs", []).append(
                run(with_fs, "yt", qs).avg_enumeration_ms
            )
    blocks.append(
        format_series(
            "Figure 15(b) — enumeration time (ms) on yt default sets",
            labels,
            series_b,
        )
    )

    blocks.append(
        f"[{bench_queries()} queries/set] paper: failing sets slow down "
        "small queries (Q4/Q8D) and speed up large ones by up to an order "
        "of magnitude; the speedup holds for every algorithm."
    )
    return "\n\n".join(blocks)


def bench_fig15_failing_sets(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

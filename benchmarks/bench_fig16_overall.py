"""Figure 16: overall performance — optimized GQLfs/RIfs vs the originals.

Compares the paper's two recommended compositions (GQLfs, RIfs) with the
original algorithms (CECI, DP, RI, 2PP re-implemented in the framework
with their native components) and the Glasgow solver, on total query time
(preprocessing + enumeration).

Paper findings to reproduce in shape: Glasgow only handles the small
datasets (we report its memory footprint rather than OOM-killing the
host); DP beats the other originals; GQLfs/RIfs beat everything, GQLfs
ahead on dense datasets (eu, hu) and RIfs on sparse ones (yt, wn).
"""

from __future__ import annotations

from typing import Dict, List

from conftest import bench_match_cap, bench_queries, bench_time_limit
from shared import ALL_DATASETS, DEFAULT_SIZE, dataset, query_set

from repro.study import format_series
from repro.study.runner import run_algorithm_on_set

ALGORITHMS = {
    "GQLfs": "GQLfs",
    "RIfs": "RIfs",
    "O-CECI": "CECI",
    "O-DP": "DP",
    "O-RI": "RI",
    "O-2PP": "2PP",
    "GLW": "GLW",
}

#: Glasgow's domain copies blow past memory on the big datasets in the
#: paper; our stand-ins are small enough to run it everywhere except the
#: largest ones, where we mirror the paper's "out of memory" cell.
GLASGOW_SKIP = {"up"}


def _run_overall(preset: str, key: str, qs) -> float:
    """Total query time in the paper's enumeration-dominated regime.

    The overall comparison uses a 10x match cap and 4x budget relative to
    the other benches: the paper stops at 10^5 matches after a 300 s
    budget, a regime where enumeration dwarfs preprocessing — with the
    small default cap, preprocessing artificially dominates the total.
    """
    summary = run_algorithm_on_set(
        preset,
        dataset(key),
        qs.queries,
        dataset_key=key,
        query_set_label=qs.label,
        match_limit=10 * bench_match_cap(),
        time_limit=4 * bench_time_limit(),
    )
    return summary.avg_total_ms


def _experiment() -> str:
    blocks: List[str] = []
    for density in ("dense", "sparse"):
        series: Dict[str, List[float]] = {name: [] for name in ALGORITHMS}
        for key in ALL_DATASETS:
            qs = query_set(key, DEFAULT_SIZE[key], density)
            for name, preset in ALGORITHMS.items():
                if preset == "GLW" and key in GLASGOW_SKIP:
                    series[name].append(None)  # paper: out of memory
                    continue
                series[name].append(_run_overall(preset, key, qs))
        blocks.append(
            format_series(
                f"Figure 16 — avg total query time (ms), {density} default sets"
                " ('-' = skipped, paper: Glasgow OOM)",
                ALL_DATASETS,
                series,
            )
        )

    blocks.append(
        f"[{bench_queries()} queries/set] paper: O-DP beats O-RI/O-2PP/"
        "O-CECI; GQLfs and RIfs beat all originals; GQLfs wins on dense "
        "eu/hu, RIfs on sparse yt/wn; Glasgow OOMs beyond hp/ye/hu."
    )
    return "\n\n".join(blocks)


def bench_fig16_overall_performance(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

"""Figure 17: scalability of GQLfs and RIfs on synthetic RMAT graphs.

The paper's setup scaled down: the default synthetic graph has |V| = 2000,
d = 16, |Σ| = 16 (the paper's 1M-vertex "sane default" shrunk for a
pure-Python engine); d, |Σ| and |V| are varied one at a time, with dense
queries (the paper's Q16D becomes Q8D here). Queries must find all
results (no match cap), like the paper's scalability section.

Paper findings to reproduce in shape: query time explodes as d grows or
|Σ| shrinks, while |V| matters far less; the number of results drives it.
"""

from __future__ import annotations

import os
from typing import Dict, List

from conftest import bench_time_limit
from shared import paper_note

from repro.graph.generators import rmat_graph
from repro.study import format_series
from repro.study.runner import run_algorithm_on_set
from repro.study.workloads import build_query_set

ALGORITHMS = ["GQLfs", "RIfs"]

BASE_V = 2000
BASE_D = 16.0
BASE_L = 16
QUERY_SIZE = 8


def _queries_per_point() -> int:
    return int(os.environ.get("REPRO_BENCH_QUERIES", "5"))


def _point(num_vertices: int, degree: float, labels: int, seed: int):
    data = rmat_graph(
        num_vertices, degree, labels, seed=seed, clustering=0.3
    )
    qs = build_query_set(
        data, "rmat", QUERY_SIZE, "dense", _queries_per_point(), seed=seed + 7
    )
    return data, qs


def _run_sweep(points, make_graph) -> Dict[str, Dict[str, List[float]]]:
    out: Dict[str, Dict[str, List[float]]] = {
        "time": {a: [] for a in ALGORITHMS},
        "unsolved": {a: [] for a in ALGORITHMS},
        "results": {a: [] for a in ALGORITHMS},
        "memory_mb": {a: [] for a in ALGORITHMS},
    }
    for value in points:
        data, qs = make_graph(value)
        for algorithm in ALGORITHMS:
            summary = run_algorithm_on_set(
                algorithm,
                data,
                qs.queries,
                dataset_key="rmat",
                query_set_label=qs.label,
                match_limit=None,  # find all results, per the paper
                time_limit=bench_time_limit(),
            )
            out["time"][algorithm].append(summary.avg_total_ms)
            out["unsolved"][algorithm].append(float(summary.num_unsolved))
            out["results"][algorithm].append(summary.avg_matches_solved)
            out["memory_mb"][algorithm].append(
                summary.peak_memory_bytes / 1e6
            )
    return out


def _experiment() -> str:
    blocks: List[str] = []

    degrees = [8.0, 12.0, 16.0, 20.0]
    sweep = _run_sweep(
        degrees, lambda d: _point(BASE_V, d, BASE_L, seed=900 + int(d))
    )
    blocks.append(
        format_series("Figure 17 — vary d(G): total time (ms)", degrees, sweep["time"])
    )
    blocks.append(
        format_series("  vary d(G): #unsolved", degrees, sweep["unsolved"])
    )
    blocks.append(
        format_series("  vary d(G): avg #results (solved)", degrees, sweep["results"])
    )

    label_counts = [8, 12, 16, 20]
    sweep = _run_sweep(
        label_counts, lambda l: _point(BASE_V, BASE_D, l, seed=950 + l)
    )
    blocks.append(
        format_series("Figure 17 — vary |Σ|: total time (ms)", label_counts, sweep["time"])
    )
    blocks.append(
        format_series("  vary |Σ|: #unsolved", label_counts, sweep["unsolved"])
    )

    vertex_counts = [1000, 2000, 4000, 8000]
    sweep = _run_sweep(
        vertex_counts, lambda v: _point(v, BASE_D, BASE_L, seed=1000 + v)
    )
    blocks.append(
        format_series("Figure 17 — vary |V|: total time (ms)", vertex_counts, sweep["time"])
    )
    blocks.append(
        format_series("  vary |V|: #unsolved", vertex_counts, sweep["unsolved"])
    )
    blocks.append(
        format_series(
            "  vary |V|: peak candidate+auxiliary memory (MB)",
            vertex_counts,
            sweep["memory_mb"],
        )
    )

    blocks.append(
        paper_note(
            "queries are fast when the graph is sparse or has many labels; "
            "sensitivity to d(G) and |Σ| dwarfs sensitivity to |V(G)|; the "
            "auxiliary structure's memory stays small (paper: < 500 MB at "
            "64M vertices)."
        )
    )
    return "\n\n".join(blocks)


def bench_fig17_scalability(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

"""Figure 18: scalability on the friendster stand-in.

The paper runs Q16D on friendster (124M vertices / 1.8B edges) with 64
labels, sampling 40/60/80% of the edges and varying |Σ| from 64 to 160.
Our stand-in scales the graph down proportionally (see
``repro.study.datasets.friendster_standin``) and runs Q8D.

Paper finding to reproduce in shape: query time falls as the graph gets
sparser (fewer sampled edges) or as |Σ| grows, because the result count
collapses.
"""

from __future__ import annotations

import os
from typing import Dict, List

from conftest import bench_match_cap, bench_time_limit

from repro.study import format_series, friendster_standin
from repro.study.runner import run_algorithm_on_set
from repro.study.workloads import build_query_set

ALGORITHMS = ["GQLfs", "RIfs"]
QUERY_SIZE = 8


def _queries_per_point() -> int:
    return int(os.environ.get("REPRO_BENCH_QUERIES", "5"))


def _run(data, seed: int) -> Dict[str, float]:
    qs = build_query_set(
        data, "friendster", QUERY_SIZE, "dense", _queries_per_point(), seed=seed
    )
    out = {}
    for algorithm in ALGORITHMS:
        summary = run_algorithm_on_set(
            algorithm,
            data,
            qs.queries,
            dataset_key="friendster",
            query_set_label=qs.label,
            match_limit=bench_match_cap(),
            time_limit=bench_time_limit(),
        )
        out[algorithm] = summary.avg_total_ms
    return out


def _experiment() -> str:
    blocks: List[str] = []

    fractions = [0.4, 0.6, 0.8, 1.0]
    series: Dict[str, List[float]] = {a: [] for a in ALGORITHMS}
    for fraction in fractions:
        data = friendster_standin(edge_fraction=fraction, num_labels=8)
        point = _run(data, seed=1200 + int(fraction * 10))
        for algorithm in ALGORITHMS:
            series[algorithm].append(point[algorithm])
    blocks.append(
        format_series(
            "Figure 18 — friendster stand-in: total time (ms), edge fraction varied",
            fractions,
            series,
        )
    )

    # The paper's 64/96/128/160 label sweep, scaled by 1/8 to preserve
    # per-label frequencies at stand-in size.
    label_counts = [8, 12, 16, 20]
    series_l: Dict[str, List[float]] = {a: [] for a in ALGORITHMS}
    for labels in label_counts:
        data = friendster_standin(edge_fraction=1.0, num_labels=labels)
        point = _run(data, seed=1300 + labels)
        for algorithm in ALGORITHMS:
            series_l[algorithm].append(point[algorithm])
    blocks.append(
        format_series(
            "Figure 18 — friendster stand-in: total time (ms), |Σ| varied "
            "(≙ paper's 64/96/128/160)",
            label_counts,
            series_l,
        )
    )

    blocks.append(
        "paper: query time drops as density falls or |Σ| grows — the "
        "result count collapses."
    )
    return "\n\n".join(blocks)


def bench_fig18_friendster(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

"""Micro-benchmarks of the intersection kernels (pytest-benchmark proper).

These run multiple rounds (unlike the experiment modules) and give stable
relative numbers for merge vs galloping vs hybrid vs bitmap on the shapes
the enumeration actually produces: similar-size lists, skewed lists, and
dense neighborhoods.
"""

from __future__ import annotations

import numpy as np

from repro.utils.intersection import (
    BitmapSetIndex,
    QFilterIndex,
    intersect_galloping,
    intersect_hybrid,
    intersect_merge,
)

_RNG = np.random.default_rng(7)


def _sorted_sample(universe: int, size: int):
    return sorted(_RNG.choice(universe, size=size, replace=False).tolist())


SIMILAR_A = _sorted_sample(4000, 400)
SIMILAR_B = _sorted_sample(4000, 400)
SKEWED_SMALL = _sorted_sample(40000, 25)
SKEWED_LARGE = _sorted_sample(40000, 4000)
DENSE_A = _sorted_sample(1200, 700)
DENSE_B = _sorted_sample(1200, 700)


def bench_merge_similar(benchmark):
    benchmark(intersect_merge, SIMILAR_A, SIMILAR_B)


def bench_galloping_similar(benchmark):
    benchmark(intersect_galloping, SIMILAR_A, SIMILAR_B)


def bench_hybrid_similar(benchmark):
    benchmark(intersect_hybrid, SIMILAR_A, SIMILAR_B)


def bench_merge_skewed(benchmark):
    benchmark(intersect_merge, SKEWED_SMALL, SKEWED_LARGE)


def bench_galloping_skewed(benchmark):
    benchmark(intersect_galloping, SKEWED_SMALL, SKEWED_LARGE)


def bench_hybrid_skewed(benchmark):
    benchmark(intersect_hybrid, SKEWED_SMALL, SKEWED_LARGE)


def bench_bitmap_dense_warm(benchmark):
    """Bitmap kernel with the layout already built (QFilter's steady state)."""
    index = BitmapSetIndex()
    index.intersect(DENSE_A, DENSE_B)  # warm the cache
    benchmark(index.intersect, DENSE_A, DENSE_B)


def bench_hybrid_dense(benchmark):
    benchmark(intersect_hybrid, DENSE_A, DENSE_B)


def bench_bitmap_sparse_cold(benchmark):
    """Bitmap kernel paying the encode cost every call (sparse worst case)."""

    def cold():
        BitmapSetIndex().intersect(SKEWED_SMALL, SKEWED_LARGE)

    benchmark(cold)


def bench_bsr_dense_warm(benchmark):
    """BSR (QFilter) kernel with the layout already built, dense sets."""
    index = QFilterIndex()
    index.intersect(DENSE_A, DENSE_B)  # warm the cache
    benchmark(index.intersect, DENSE_A, DENSE_B)


def bench_bsr_skewed_warm(benchmark):
    """BSR kernel on scattered values: ~1 element per block, pure overhead."""
    index = QFilterIndex()
    index.intersect(SKEWED_SMALL, SKEWED_LARGE)
    benchmark(index.intersect, SKEWED_SMALL, SKEWED_LARGE)


def bench_bsr_sparse_cold(benchmark):
    """BSR kernel paying the encode cost every call."""

    def cold():
        QFilterIndex().intersect(SKEWED_SMALL, SKEWED_LARGE)

    benchmark(cold)

"""Micro-benchmarks of the intersection kernels (pytest-benchmark proper).

These run multiple rounds (unlike the experiment modules) and give stable
relative numbers for merge vs galloping vs hybrid vs bitmap on the shapes
the enumeration actually produces: similar-size lists, skewed lists, and
dense neighborhoods.

Run directly (``python benchmarks/bench_kernels.py``) to time the
registered kernel *backends* (scalar vs numpy vs bitset) on 10k-element
sorted arrays and write ``BENCH_kernels.json`` (also copied to
``benchmarks/results/``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # standalone run: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.schema import BENCH_KERNELS_SCHEMA_VERSION, validate_bench_kernels
from repro.utils.intersection import (
    BitmapSetIndex,
    QFilterIndex,
    intersect_galloping,
    intersect_hybrid,
    intersect_merge,
)
from repro.utils.kernels import get_kernel

_RNG = np.random.default_rng(7)


def _sorted_sample(universe: int, size: int):
    return sorted(_RNG.choice(universe, size=size, replace=False).tolist())


SIMILAR_A = _sorted_sample(4000, 400)
SIMILAR_B = _sorted_sample(4000, 400)
SKEWED_SMALL = _sorted_sample(40000, 25)
SKEWED_LARGE = _sorted_sample(40000, 4000)
DENSE_A = _sorted_sample(1200, 700)
DENSE_B = _sorted_sample(1200, 700)


def bench_merge_similar(benchmark):
    benchmark(intersect_merge, SIMILAR_A, SIMILAR_B)


def bench_galloping_similar(benchmark):
    benchmark(intersect_galloping, SIMILAR_A, SIMILAR_B)


def bench_hybrid_similar(benchmark):
    benchmark(intersect_hybrid, SIMILAR_A, SIMILAR_B)


def bench_merge_skewed(benchmark):
    benchmark(intersect_merge, SKEWED_SMALL, SKEWED_LARGE)


def bench_galloping_skewed(benchmark):
    benchmark(intersect_galloping, SKEWED_SMALL, SKEWED_LARGE)


def bench_hybrid_skewed(benchmark):
    benchmark(intersect_hybrid, SKEWED_SMALL, SKEWED_LARGE)


def bench_bitmap_dense_warm(benchmark):
    """Bitmap kernel with the layout already built (QFilter's steady state)."""
    index = BitmapSetIndex()
    index.intersect(DENSE_A, DENSE_B)  # warm the cache
    benchmark(index.intersect, DENSE_A, DENSE_B)


def bench_hybrid_dense(benchmark):
    benchmark(intersect_hybrid, DENSE_A, DENSE_B)


def bench_bitmap_sparse_cold(benchmark):
    """Bitmap kernel paying the encode cost every call (sparse worst case)."""

    def cold():
        BitmapSetIndex().intersect(SKEWED_SMALL, SKEWED_LARGE)

    benchmark(cold)


def bench_bsr_dense_warm(benchmark):
    """BSR (QFilter) kernel with the layout already built, dense sets."""
    index = QFilterIndex()
    index.intersect(DENSE_A, DENSE_B)  # warm the cache
    benchmark(index.intersect, DENSE_A, DENSE_B)


def bench_bsr_skewed_warm(benchmark):
    """BSR kernel on scattered values: ~1 element per block, pure overhead."""
    index = QFilterIndex()
    index.intersect(SKEWED_SMALL, SKEWED_LARGE)
    benchmark(index.intersect, SKEWED_SMALL, SKEWED_LARGE)


def bench_bsr_sparse_cold(benchmark):
    """BSR kernel paying the encode cost every call."""

    def cold():
        QFilterIndex().intersect(SKEWED_SMALL, SKEWED_LARGE)

    benchmark(cold)


# ----------------------------------------------------------------------
# Kernel backends (scalar vs numpy vs bitset) on array inputs
# ----------------------------------------------------------------------

SIMILAR_A_ARR = np.asarray(SIMILAR_A, dtype=np.int64)
SIMILAR_B_ARR = np.asarray(SIMILAR_B, dtype=np.int64)
SKEWED_SMALL_ARR = np.asarray(SKEWED_SMALL, dtype=np.int64)
SKEWED_LARGE_ARR = np.asarray(SKEWED_LARGE, dtype=np.int64)


def bench_backend_scalar_similar(benchmark):
    kernel = get_kernel("scalar")
    benchmark(kernel.intersect, SIMILAR_A_ARR, SIMILAR_B_ARR)


def bench_backend_numpy_similar(benchmark):
    kernel = get_kernel("numpy")
    benchmark(kernel.intersect, SIMILAR_A_ARR, SIMILAR_B_ARR)


def bench_backend_numpy_skewed(benchmark):
    """numpy galloping: batched searchsorted of the small into the large."""
    kernel = get_kernel("numpy")
    benchmark(kernel.intersect, SKEWED_SMALL_ARR, SKEWED_LARGE_ARR)


def bench_backend_bitset_similar_warm(benchmark):
    """Packed-uint64 AND with encodings already cached."""
    kernel = get_kernel("bitset")
    kernel.intersect(SIMILAR_A_ARR, SIMILAR_B_ARR)  # warm the cache
    benchmark(kernel.intersect, SIMILAR_A_ARR, SIMILAR_B_ARR)


# ----------------------------------------------------------------------
# Standalone backend shoot-out: writes BENCH_kernels.json
# ----------------------------------------------------------------------

#: The acceptance micro-benchmark: 10k-element sorted arrays drawn from a
#: 100k universe (dense enough that merge dominates the scalar hybrid).
SHOOTOUT_UNIVERSE = 100_000
SHOOTOUT_SIZE = 10_000


def _time_per_call(fn, *args, repeat: int = 5, number: int = 10) -> float:
    """Best-of-``repeat`` mean seconds per call over ``number`` calls."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(number):
            fn(*args)
        best = min(best, (time.perf_counter() - start) / number)
    return best


def run_backend_shootout(
    universe: int = SHOOTOUT_UNIVERSE, size: int = SHOOTOUT_SIZE
) -> dict:
    """Time each registered backend's hybrid intersect on the 10k arrays.

    The payload is stamped with ``schema_version`` and the resolved
    backend name per registry entry (``kernels``), so downstream BENCH
    deltas are attributable to a concrete backend; see
    :func:`repro.obs.schema.validate_bench_kernels` for the contract.
    """
    rng = np.random.default_rng(7)
    a = np.sort(rng.choice(universe, size=size, replace=False)).astype(np.int64)
    b = np.sort(rng.choice(universe, size=size, replace=False)).astype(np.int64)

    timings = {}
    resolved = {}
    for name in ("scalar", "numpy", "bitset"):
        kernel = get_kernel(name)
        resolved[name] = kernel.name
        kernel.intersect(a, b)  # warm caches / JIT-free sanity check
        timings[name] = _time_per_call(kernel.intersect, a, b)

    payload = {
        "schema_version": BENCH_KERNELS_SCHEMA_VERSION,
        "benchmark": "kernel-backend-shootout",
        "universe": universe,
        "array_size": size,
        "kernels": resolved,
        "seconds_per_call": timings,
        "speedup_numpy_vs_scalar": timings["scalar"] / timings["numpy"],
        "speedup_bitset_vs_scalar": timings["scalar"] / timings["bitset"],
    }
    validate_bench_kernels(payload)
    return payload


def main() -> int:
    results = run_backend_shootout()
    payload = json.dumps(results, indent=2) + "\n"
    out = Path("BENCH_kernels.json")
    out.write_text(payload)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_kernels.json").write_text(payload)
    print(payload, end="")
    print(f"wrote {out.resolve()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

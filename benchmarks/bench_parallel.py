"""Intra-query parallel enumeration: root-chunked fan-out vs sequential.

The workload is the Figure 16-style counting regime: one dense synthetic
data graph, a pool of extracted queries, the paper's 10^5 match cap, the
preprocessing done once outside the timed region. The sequential
baseline is the iterative frame machine; the parallel side fans the same
plan's root-candidate chunks out over the :mod:`repro.parallel` process
pool and merges the per-chunk outcomes.

Correctness rides along: before timing, every query runs once through
the pool with embeddings retained, and the benchmark refuses to produce
a payload unless the merged embedding sequence is byte-identical to the
sequential one.

Speedup provenance is explicit. On hosts with at least 4 CPUs the
4-worker speedup is measured wall clock. On smaller hosts a wall-clock
measurement would be fiction — the workers timeshare one core — so the
benchmark records the *real* per-chunk enumeration seconds reported by
the workers and computes the speedup a W-worker schedule of those chunks
achieves (greedy makespan: longest chunk first, always onto the
least-loaded worker). The payload says which via ``speedup_source``, and
:func:`repro.obs.schema.validate_bench_parallel` enforces the 2.5x floor
either way.

Run directly (``python benchmarks/bench_parallel.py``) to write
``BENCH_parallel.json`` (also copied to ``benchmarks/results/``). Flags
scale the workload down for CI smoke runs (``--vertices 600 --queries 2
--repeats 1``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

if __name__ == "__main__":  # standalone run: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.plan import compile_plan, prepare_query, run_plan
from repro.graph.generators import erdos_renyi_graph
from repro.graph.query_gen import extract_query
from repro.obs.metrics import Metrics
from repro.obs.schema import (
    BENCH_PARALLEL_SCHEMA_VERSION,
    validate_bench_parallel,
)
from repro.parallel import (
    DEFAULT_CHUNKS,
    ParallelContext,
    SharedGraph,
    shutdown_pools,
)

#: Enumeration-bound like bench_engine, with two deliberate differences.
#: The workload *finishes under* the match cap: a capped sequential run
#: stops mid-graph while every chunk still enumerates its whole window,
#: so sequential-vs-chunked timings are only comparable on runs the cap
#: never truncates (the benchmark refuses capped queries outright). And
#: the data graph is Erdos-Renyi rather than RMAT: root-range chunking
#: cannot split a single root's subtree, so a power-law graph's hub
#: roots bottleneck the schedule no matter the chunk count — uniform
#: degrees keep the chunks balanced enough for the fan-out to pay.
DEFAULT_VERTICES = 4_000
DEFAULT_DEGREE = 16.0
DEFAULT_LABELS = 8
DEFAULT_QUERIES = 3
DEFAULT_REPEATS = 3
DEFAULT_QUERY_SIZE = 10
DEFAULT_MATCH_LIMIT = 500_000
DEFAULT_ALGORITHM = "GQL-opt"
WORKER_COUNTS = (1, 2, 4)


def _shm_names() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # non-Linux: no visible segment directory
        return set()


def greedy_makespan(chunk_seconds, workers: int) -> float:
    """Wall clock of the longest-first greedy schedule on ``workers``."""
    loads = [0.0] * workers
    for seconds in sorted(chunk_seconds, reverse=True):
        loads[loads.index(min(loads))] += seconds
    return max(loads)


def run_parallel_benchmark(
    vertices: int = DEFAULT_VERTICES,
    num_queries: int = DEFAULT_QUERIES,
    repeats: int = DEFAULT_REPEATS,
    query_size: int = DEFAULT_QUERY_SIZE,
    match_limit: int = DEFAULT_MATCH_LIMIT,
    algorithm: str = DEFAULT_ALGORITHM,
    degree: float = DEFAULT_DEGREE,
    labels: int = DEFAULT_LABELS,
) -> dict:
    """Benchmark the fan-out per query; returns the validated payload."""
    host_cpus = os.cpu_count() or 1
    measured = host_cpus >= max(WORKER_COUNTS)
    shm_before = _shm_names()

    data = erdos_renyi_graph(vertices, degree, labels, seed=7)
    pool = [
        extract_query(data, query_size, seed=seed)
        for seed in range(num_queries)
    ]

    shared = SharedGraph(data)
    contexts = {
        workers: ParallelContext(workers, lambda: shared.handle)
        for workers in (WORKER_COUNTS if measured else (1,))
    }
    # Modeled mode times chunks through a 1-worker pool: chunks run one
    # at a time, so their enumeration seconds are uncontended — exactly
    # the inputs the makespan schedule needs. Racing 4 processes on 1
    # core would only measure timeslicing noise.
    timing_ctx = contexts[max(WORKER_COUNTS)] if measured else contexts[1]

    query_entries = []
    seq_total = 0.0
    makespan4_total = 0.0
    all_identical = True
    try:
        for seed, query in enumerate(pool):
            plan = compile_plan(algorithm, query, data)
            prepared = run_plan(
                plan, query, data,
                match_limit=match_limit, store_limit=0,
            )[1]

            # Verification pass: the merged parallel embeddings must be
            # byte-identical to the sequential sequence, order included.
            seq_result, _ = run_plan(
                plan, query, data, prepared=prepared,
                match_limit=match_limit, store_limit=match_limit,
            )
            par_result, _ = run_plan(
                plan, query, data, prepared=prepared,
                match_limit=match_limit, store_limit=match_limit,
                parallel=timing_ctx,
            )
            if not timing_ctx.last_chunk_seconds:
                raise SystemExit(
                    f"query seed {seed}: plan was not eligible for "
                    "parallel enumeration — the benchmark measured nothing"
                )
            if seq_result.num_matches >= match_limit:
                raise SystemExit(
                    f"query seed {seed}: hit the match cap — a capped "
                    "sequential run stops mid-graph while chunks "
                    "enumerate their whole windows, so the timings are "
                    "not comparable; raise --match-limit or shrink the "
                    "workload"
                )
            identical = (
                seq_result.embeddings == par_result.embeddings
                and seq_result.num_matches == par_result.num_matches
            )
            all_identical = all_identical and identical
            if not identical:
                raise SystemExit(
                    f"query seed {seed}: parallel embeddings differ from "
                    "sequential — refusing to write a payload for a "
                    "broken fan-out"
                )

            # Timed passes, best-of-``repeats`` to shed warm-up noise.
            seq_seconds = min(
                run_plan(
                    plan, query, data, prepared=prepared,
                    match_limit=match_limit, store_limit=0,
                )[0].enumeration_seconds
                for _ in range(repeats)
            )
            chunk_seconds = []
            parallel_walls = {}
            for _ in range(repeats):
                result, _ = run_plan(
                    plan, query, data, prepared=prepared,
                    match_limit=match_limit, store_limit=0,
                    parallel=timing_ctx,
                )
                chunks = list(timing_ctx.last_chunk_seconds)
                if not chunk_seconds or sum(chunks) < sum(chunk_seconds):
                    chunk_seconds = chunks
                wall = result.enumeration_seconds
                best = parallel_walls.get(max(WORKER_COUNTS))
                if best is None or wall < best:
                    parallel_walls[max(WORKER_COUNTS)] = wall

            if measured:
                speedups = {}
                for workers, ctx in contexts.items():
                    wall = min(
                        run_plan(
                            plan, query, data, prepared=prepared,
                            match_limit=match_limit, store_limit=0,
                            parallel=ctx,
                        )[0].enumeration_seconds
                        for _ in range(repeats)
                    )
                    speedups[str(workers)] = seq_seconds / wall
                makespan4 = seq_seconds / speedups[str(max(WORKER_COUNTS))]
            else:
                speedups = {
                    str(workers): seq_seconds
                    / greedy_makespan(chunk_seconds, workers)
                    for workers in WORKER_COUNTS
                }
                makespan4 = greedy_makespan(
                    chunk_seconds, max(WORKER_COUNTS)
                )

            seq_total += seq_seconds
            makespan4_total += makespan4
            query_entries.append(
                {
                    "seed": seed,
                    "num_matches": seq_result.num_matches,
                    "sequential_seconds": seq_seconds,
                    "chunk_seconds": chunk_seconds,
                    "speedups": speedups,
                    "embeddings_identical": identical,
                }
            )
    finally:
        shared.unlink()
        shutdown_pools()

    payload = {
        "schema_version": BENCH_PARALLEL_SCHEMA_VERSION,
        "benchmark": "parallel-enumeration",
        "host_cpus": host_cpus,
        "speedup_source": "measured" if measured else "modeled",
        "workload": {
            "data_vertices": data.num_vertices,
            "data_degree": degree,
            "num_labels": labels,
            "query_vertices": query_size,
            "num_queries": num_queries,
            "repeats": repeats,
            "match_limit": match_limit,
            "algorithm": algorithm,
            "chunks": DEFAULT_CHUNKS,
        },
        "queries": query_entries,
        "overall_speedup_4_workers": seq_total / makespan4_total,
        "embeddings_identical": all_identical,
        "shm_segments_leaked": len(_shm_names() - shm_before),
    }
    validate_bench_parallel(payload)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=DEFAULT_VERTICES)
    parser.add_argument("--degree", type=float, default=DEFAULT_DEGREE)
    parser.add_argument("--labels", type=int, default=DEFAULT_LABELS)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--query-size", type=int, default=DEFAULT_QUERY_SIZE)
    parser.add_argument("--match-limit", type=int, default=DEFAULT_MATCH_LIMIT)
    parser.add_argument(
        "--algorithm", default=DEFAULT_ALGORITHM,
        help="algorithm preset to enumerate with",
    )
    parser.add_argument(
        "--output", default="BENCH_parallel.json",
        help="payload path (a copy also lands in benchmarks/results/)",
    )
    args = parser.parse_args(argv)

    results = run_parallel_benchmark(
        vertices=args.vertices,
        num_queries=args.queries,
        repeats=args.repeats,
        query_size=args.query_size,
        match_limit=args.match_limit,
        algorithm=args.algorithm,
        degree=args.degree,
        labels=args.labels,
    )
    payload = json.dumps(results, indent=2) + "\n"
    out = Path(args.output)
    out.write_text(payload)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_parallel.json").write_text(payload)
    print(payload, end="")
    print(f"wrote {out.resolve()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

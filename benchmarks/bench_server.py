"""Serving-tier throughput: MatchService under a duplicate-heavy load.

The workload models the regime the serving tier exists for: several
tenants' client threads hammering one resident data graph with a small
pool of query patterns, so at any instant many in-flight requests are
*identical*. With coalescing on, the service runs each distinct in-flight
query once and fans the result out to every waiter; with coalescing off,
every request pays its own enumeration. The benchmark measures sustained
QPS and p50/p99 response latency in both modes and reports the effective
QPS speedup — the acceptance bar is >= 2x on this duplicate-heavy shape.

Clients call ``service.submit`` directly (no sockets): the benchmark
isolates the admission/coalescing/execution machinery, not TCP framing.
A barrier lines all client threads up before the clock starts so the
burst actually overlaps.

Run directly (``python benchmarks/bench_server.py``) to write
``BENCH_server.json`` (also copied to ``benchmarks/results/``),
schema-stamped and validated by
:func:`repro.obs.schema.validate_bench_server`. Flags scale the workload
down for CI smoke runs (``--vertices 300 --clients 4 --requests 5``).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

if __name__ == "__main__":  # standalone run: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graph.generators import rmat_graph
from repro.graph.query_gen import extract_query
from repro.obs.schema import BENCH_SERVER_SCHEMA_VERSION, validate_bench_server
from repro.serve import MatchService

#: Defaults sized so enumeration dominates per-request cost (coalescing
#: then saves real work even when plan/prep caches are warm) while the
#: whole benchmark stays well under a minute.
DEFAULT_VERTICES = 1_500
DEFAULT_TENANTS = 3
DEFAULT_CLIENTS = 8
DEFAULT_WORKERS = 2
DEFAULT_DISTINCT = 2
DEFAULT_REQUESTS = 30
DEFAULT_QUERY_SIZE = 8
DEFAULT_MATCH_LIMIT = 30_000
DEFAULT_ALGORITHM = "GQL-opt"


def build_workload(vertices: int, distinct: int, query_size: int):
    """A resident data graph plus the distinct query pool."""
    data = rmat_graph(vertices, 10.0, 8, seed=11, clustering=0.15)
    pool = [
        extract_query(data, query_size, seed=seed) for seed in range(distinct)
    ]
    return data, pool


def run_mode(
    data,
    pool,
    coalesce: bool,
    tenants: int,
    clients: int,
    workers: int,
    requests_per_client: int,
    match_limit: int,
    algorithm: str,
):
    """One timed run; returns (seconds, latencies, counts, counters)."""
    service = MatchService(
        workers=workers,
        max_queue_depth=clients * requests_per_client + 1,
        coalesce=coalesce,
        algorithm=algorithm,
    )
    service.add_graph("bench", data)
    # Warm every tenant's plan/prep caches outside the timed region, so
    # both modes measure steady-state serving (enumeration + dispatch),
    # not first-touch compilation.
    for tenant in range(tenants):
        for query in pool:
            service.match(
                query,
                graph="bench",
                tenant=f"tenant-{tenant}",
                match_limit=1,
                store_limit=0,
            )
    warm_counters = dict(service.metrics.counters)

    barrier = threading.Barrier(clients + 1)
    latencies = [[] for _ in range(clients)]
    counts = [[] for _ in range(clients)]
    errors = []

    def client(cid: int) -> None:
        tenant = f"tenant-{cid % tenants}"
        barrier.wait()
        try:
            for i in range(requests_per_client):
                # Clients cycle the same small pool in phase: at any
                # instant most in-flight requests are duplicates.
                query = pool[i % len(pool)]
                start = time.perf_counter()
                response = service.match(
                    query,
                    graph="bench",
                    tenant=tenant,
                    match_limit=match_limit,
                    store_limit=0,
                )
                latencies[cid].append(time.perf_counter() - start)
                counts[cid].append(response.result.num_matches)
        except Exception as exc:  # surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(cid,), daemon=True)
        for cid in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - start
    service.close()
    if errors:
        raise errors[0]

    # Report only the timed burst: subtract the warm-up's counters.
    counters = {
        name: value - warm_counters.get(name, 0)
        for name, value in service.metrics.counters.items()
        if value - warm_counters.get(name, 0)
    }
    flat = sorted(x for per_client in latencies for x in per_client)
    return seconds, flat, counts, counters


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def run_server_benchmark(
    vertices: int = DEFAULT_VERTICES,
    tenants: int = DEFAULT_TENANTS,
    clients: int = DEFAULT_CLIENTS,
    workers: int = DEFAULT_WORKERS,
    distinct: int = DEFAULT_DISTINCT,
    requests_per_client: int = DEFAULT_REQUESTS,
    query_size: int = DEFAULT_QUERY_SIZE,
    match_limit: int = DEFAULT_MATCH_LIMIT,
    algorithm: str = DEFAULT_ALGORITHM,
) -> dict:
    """Run both modes on one workload; returns the validated payload."""
    data, pool = build_workload(vertices, distinct, query_size)
    total = clients * requests_per_client

    modes = {}
    mode_counts = {}
    for key, coalesce in (("coalescing_on", True), ("coalescing_off", False)):
        seconds, latencies, counts, counters = run_mode(
            data,
            pool,
            coalesce,
            tenants=tenants,
            clients=clients,
            workers=workers,
            requests_per_client=requests_per_client,
            match_limit=match_limit,
            algorithm=algorithm,
        )
        modes[key] = {
            "seconds_total": seconds,
            "qps": total / seconds,
            "p50_ms": _percentile(latencies, 0.50) * 1000.0,
            "p99_ms": _percentile(latencies, 0.99) * 1000.0,
            "counters": counters,
        }
        mode_counts[key] = counts

    payload = {
        "schema_version": BENCH_SERVER_SCHEMA_VERSION,
        "benchmark": "server-throughput",
        "algorithm": algorithm,
        "workload": {
            "data_vertices": data.num_vertices,
            "tenants": tenants,
            "clients": clients,
            "workers": workers,
            "distinct_queries": distinct,
            "requests_per_client": requests_per_client,
            "total_requests": total,
            "query_size": query_size,
            "match_limit": match_limit,
        },
        "coalescing_on": modes["coalescing_on"],
        "coalescing_off": modes["coalescing_off"],
        "speedup_coalescing_effective_qps": (
            modes["coalescing_on"]["qps"] / modes["coalescing_off"]["qps"]
        ),
        "results_agree": (
            mode_counts["coalescing_on"] == mode_counts["coalescing_off"]
        ),
    }
    validate_bench_server(payload)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=DEFAULT_VERTICES)
    parser.add_argument("--tenants", type=int, default=DEFAULT_TENANTS)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--distinct", type=int, default=DEFAULT_DISTINCT)
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS,
        help="requests per client thread",
    )
    parser.add_argument("--query-size", type=int, default=DEFAULT_QUERY_SIZE)
    parser.add_argument("--match-limit", type=int, default=DEFAULT_MATCH_LIMIT)
    parser.add_argument("--algorithm", default=DEFAULT_ALGORITHM)
    parser.add_argument(
        "--output", default="BENCH_server.json",
        help="payload path (a copy also lands in benchmarks/results/)",
    )
    args = parser.parse_args(argv)

    results = run_server_benchmark(
        vertices=args.vertices,
        tenants=args.tenants,
        clients=args.clients,
        workers=args.workers,
        distinct=args.distinct,
        requests_per_client=args.requests,
        query_size=args.query_size,
        match_limit=args.match_limit,
        algorithm=args.algorithm,
    )
    payload = json.dumps(results, indent=2) + "\n"
    out = Path(args.output)
    out.write_text(payload)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_server.json").write_text(payload)
    print(payload, end="")
    print(f"wrote {out.resolve()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

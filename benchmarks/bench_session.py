"""Session throughput: one-shot ``match()`` vs ``MatchSession.match_many``.

The workload is the one the compilation layer exists for: a small pool of
distinct query patterns, each submitted many times (as a pattern-matching
service or the paper's repeated experiment sweeps do). The one-shot
baseline pays resolution + filtering + ordering on every call; the
session compiles each pattern once, reuses the prepared candidates /
auxiliary structure / order on every repeat, and keeps the kernel's
encode caches warm.

Run directly (``python benchmarks/bench_session.py``) to write
``BENCH_session.json`` (also copied to ``benchmarks/results/``),
schema-stamped and validated by
:func:`repro.obs.schema.validate_bench_session`. Flags scale the workload
down for CI smoke runs (``--vertices 300 --distinct 2 --repeats 3``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone run: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.api import match
from repro.core.session import MatchSession
from repro.graph.generators import rmat_graph
from repro.graph.query_gen import extract_query
from repro.obs.schema import BENCH_SESSION_SCHEMA_VERSION, validate_bench_session

#: Defaults sized so preprocessing is a real fraction of per-query time
#: (the regime the paper's Figure 7 measures) while the whole benchmark
#: stays under a minute.
DEFAULT_VERTICES = 3_000
DEFAULT_DISTINCT = 6
DEFAULT_REPEATS = 20
DEFAULT_QUERY_SIZE = 8
DEFAULT_MATCH_LIMIT = 200
DEFAULT_ALGORITHM = "GQL-opt"


def build_workload(
    vertices: int, distinct: int, repeats: int, query_size: int
):
    """A data graph plus ``distinct * repeats`` queries, repeats interleaved
    (round-robin over the pool — the service-traffic shape, and the worst
    case for any cache smaller than the pool)."""
    data = rmat_graph(vertices, 8.0, 12, seed=7, clustering=0.1)
    pool = [
        extract_query(data, query_size, seed=seed) for seed in range(distinct)
    ]
    workload = [pool[i % distinct] for i in range(distinct * repeats)]
    return data, pool, workload


def run_session_benchmark(
    vertices: int = DEFAULT_VERTICES,
    distinct: int = DEFAULT_DISTINCT,
    repeats: int = DEFAULT_REPEATS,
    query_size: int = DEFAULT_QUERY_SIZE,
    match_limit: int = DEFAULT_MATCH_LIMIT,
    algorithm: str = DEFAULT_ALGORITHM,
) -> dict:
    """Time the repeated-query workload both ways; returns the payload."""
    data, _pool, workload = build_workload(
        vertices, distinct, repeats, query_size
    )

    # Warm-up outside the timed regions (imports, first-touch numpy paths).
    match(workload[0], data, algorithm=algorithm, match_limit=1, store_limit=0)

    start = time.perf_counter()
    one_shot_counts = [
        match(
            query,
            data,
            algorithm=algorithm,
            match_limit=match_limit,
            store_limit=0,
            validate=False,
        ).num_matches
        for query in workload
    ]
    one_shot_seconds = time.perf_counter() - start

    session = MatchSession(
        data, algorithm=algorithm, plan_cache_size=None, prep_cache_size=None
    )
    start = time.perf_counter()
    session_results = session.match_many(
        workload, match_limit=match_limit, store_limit=0, validate=False
    )
    session_seconds = time.perf_counter() - start
    session_counts = [r.num_matches for r in session_results]

    total = len(workload)
    cache = session.cache_info()
    payload = {
        "schema_version": BENCH_SESSION_SCHEMA_VERSION,
        "benchmark": "session-throughput",
        "algorithm": algorithm,
        "workload": {
            "data_vertices": data.num_vertices,
            "distinct_queries": distinct,
            "repeats": repeats,
            "total_queries": total,
            "query_size": query_size,
            "match_limit": match_limit,
        },
        "one_shot": {
            "seconds_total": one_shot_seconds,
            "seconds_per_query": one_shot_seconds / total,
        },
        "session": {
            "seconds_total": session_seconds,
            "seconds_per_query": session_seconds / total,
        },
        "speedup_session_vs_one_shot": one_shot_seconds / session_seconds,
        "cache": cache,
        "matches_agree": one_shot_counts == session_counts,
    }
    validate_bench_session(payload)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=DEFAULT_VERTICES)
    parser.add_argument("--distinct", type=int, default=DEFAULT_DISTINCT)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--query-size", type=int, default=DEFAULT_QUERY_SIZE)
    parser.add_argument("--match-limit", type=int, default=DEFAULT_MATCH_LIMIT)
    parser.add_argument("--algorithm", default=DEFAULT_ALGORITHM)
    parser.add_argument(
        "--output", default="BENCH_session.json",
        help="payload path (a copy also lands in benchmarks/results/)",
    )
    args = parser.parse_args(argv)

    results = run_session_benchmark(
        vertices=args.vertices,
        distinct=args.distinct,
        repeats=args.repeats,
        query_size=args.query_size,
        match_limit=args.match_limit,
        algorithm=args.algorithm,
    )
    payload = json.dumps(results, indent=2) + "\n"
    out = Path(args.output)
    out.write_text(payload)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_session.json").write_text(payload)
    print(payload, end="")
    print(f"wrote {out.resolve()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Graph storage backends: matching off memmap/shared-memory vs in-memory.

Two claims of the :mod:`repro.graph.store` layer are measured, each with
its correctness attestation baked in:

* **Warm overhead** — once the pages are hot, matching off an ``.rgf``
  memmap (or a shared-memory segment) must cost essentially the same as
  matching off heap arrays: the enumeration reads the same bytes through
  the same numpy views. A resident-scale workload runs the same query
  set against all three backends; the payload records the per-backend
  seconds and :func:`repro.obs.schema.validate_bench_storage` enforces
  the 1.3x memmap ceiling.

* **Out-of-core peak RSS** — the point of the ``.rgf`` format is opening
  graphs whose CSR arrays exceed the memory budget in O(header) and
  letting the OS page in only what enumeration touches. A large
  ring-lattice graph (built vectorized, straight into CSR — no per-edge
  Python loop) is written to ``.rgf`` once; two subprocesses then run
  the same label-local queries, one fully materializing the arrays, one
  matching straight off :class:`~repro.graph.store.MmapStore`. Each
  child reports ``resource.getrusage`` peak RSS and a digest of its
  embeddings; the benchmark refuses to produce a payload unless the
  digests agree, and the validator enforces the 50% RSS ceiling and that
  the arrays genuinely exceed the declared budget.

Run directly (``python benchmarks/bench_storage.py``) to write
``BENCH_storage.json`` (also copied to ``benchmarks/results/``). Flags
scale the workload (CI smoke: ``--warm-vertices 1000 --queries 2
--repeats 1 --ooc-vertices 750000``; shrinking the out-of-core graph
much below that makes the interpreter's own footprint dominate both
children and the RSS ratio meaningless).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__":  # standalone run: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

import repro
from repro.core.api import match
from repro.graph.generators import erdos_renyi_graph
from repro.graph.graph import Graph
from repro.graph.query_gen import extract_query
from repro.graph.store import MmapStore, SharedMemoryStore, write_rgf
from repro.obs.schema import (
    BENCH_STORAGE_SCHEMA_VERSION,
    validate_bench_storage,
)

DEFAULT_WARM_VERTICES = 4_000
DEFAULT_WARM_DEGREE = 16.0
DEFAULT_WARM_LABELS = 8
DEFAULT_QUERIES = 3
DEFAULT_REPEATS = 3
DEFAULT_QUERY_SIZE = 8
DEFAULT_WARM_ALGORITHM = "GQL-opt"
DEFAULT_MATCH_LIMIT = 20_000

#: Out-of-core graph: a ring lattice (every vertex adjacent to its
#: ``half_degree`` successors and predecessors mod n) with labels in
#: contiguous blocks. Uniform degrees keep the CSR rows equal-sized and
#: block labels keep each query's working set to a few label blocks —
#: the memmap run's whole point is that the rest of the neighbor array
#: stays cold on disk.
DEFAULT_OOC_VERTICES = 1_500_000
DEFAULT_OOC_HALF_DEGREE = 8
DEFAULT_OOC_LABELS = 256
DEFAULT_OOC_QUERIES = 3

#: The declared memory budget is this fraction of the CSR array bytes,
#: so the "arrays exceed the budget" invariant scales with the workload.
BUDGET_FRACTION = 0.7

# The child workload: runs label-and-degree filtering with GraphQL's
# candidate-size ordering and direct neighbor-intersection local
# candidates — deliberately *not* an NLF/ELF preset, which would build
# per-vertex Python caches over the full data graph and turn the
# out-of-core run into an out-of-memory one.
_CHILD_SCRIPT = r"""
import hashlib, json, resource, sys
import numpy as np
from repro.core.api import match
from repro.core.registry import PresetDef, build_spec
from repro.graph.graph import Graph
from repro.graph.store import MmapStore, read_rgf_header

mode, rgf_path, spec_path = sys.argv[1], sys.argv[2], sys.argv[3]
with open(spec_path) as fh:
    spec = json.load(fh)

if mode == "mmap":
    store = MmapStore(rgf_path)
    data = store.graph()
elif mode == "memory":
    # Honest materialization: read the segments into heap arrays via
    # syscalls (no mapping left resident) and adopt them.
    layout, _ = read_rgf_header(rgf_path)
    base = np.fromfile(rgf_path, dtype="<i8", offset=64)
    labels, offsets, neighbors, by_label = layout.split(base)
    data = Graph.from_csr(
        labels, offsets, neighbors,
        num_edges=layout.num_edges, by_label=by_label,
    )
else:
    raise SystemExit(f"unknown mode {mode!r}")

algorithm = build_spec(PresetDef(
    name="LDF-GQL", filter="LDF", ordering="GQL", lc="ALG2",
))
out = []
for q in spec["queries"]:
    query = Graph(labels=q["labels"], edges=[tuple(e) for e in q["edges"]])
    result = match(
        query, data, algorithm=algorithm,
        match_limit=spec["match_limit"], store_limit=spec["match_limit"],
    )
    digest = hashlib.sha256(
        "\n".join(",".join(map(str, emb)) for emb in result.embeddings)
        .encode()
    ).hexdigest()
    out.append({"count": result.num_matches, "hash": digest})


def peak_rss_bytes():
    # Linux quirk: ru_maxrss survives execve, so a subprocess spawned by
    # a fat parent inherits the parent's peak. VmHWM is per-mm and does
    # reset on exec — prefer it, fall back to getrusage elsewhere.
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


print(json.dumps({"peak_rss_bytes": peak_rss_bytes(), "queries": out}))
"""


def _shm_names() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # non-Linux: no visible segment directory
        return set()


def build_ring_lattice_rgf(
    path: Path, vertices: int, half_degree: int, num_labels: int
) -> dict:
    """Write a ring-lattice graph straight to ``.rgf``, vectorized.

    Vertex ``i`` is adjacent to ``i±1 .. i±half_degree`` (mod n) and
    labeled by contiguous block (``i * num_labels // n``). Returns the
    workload facts (vertices, edges, array bytes).
    """
    n, h = vertices, half_degree
    if n <= 4 * h:
        raise SystemExit("out-of-core graph too small for its half-degree")
    deltas = np.concatenate([np.arange(-h, 0), np.arange(1, h + 1)])
    nbrs = (np.arange(n, dtype=np.int64)[:, None] + deltas) % n
    nbrs.sort(axis=1)
    neighbors = nbrs.reshape(-1)
    del nbrs
    offsets = np.arange(n + 1, dtype=np.int64) * (2 * h)
    labels = (np.arange(n, dtype=np.int64) * num_labels) // n
    graph = Graph.from_csr(
        labels, offsets, neighbors,
        num_edges=n * h, by_label=np.arange(n, dtype=np.int64),
    )
    write_rgf(graph, path)
    layout = graph.store.layout
    return {
        "data_vertices": n,
        "data_edges": n * h,
        "array_bytes": int(layout.total_bytes),
    }


def _ooc_queries(num_labels: int, count: int) -> list:
    """Same-label 3-paths, one per label block spread across the graph."""
    queries = []
    for i in range(count):
        label = (i + 1) * num_labels // (count + 1)
        queries.append(
            {"labels": [label, label, label], "edges": [[0, 1], [1, 2]]}
        )
    return queries


def _run_child(mode: str, rgf_path: Path, spec_path: Path) -> dict:
    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, mode, str(rgf_path),
         str(spec_path)],
        capture_output=True, text=True, env=env, check=False,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"{mode} child failed:\n{proc.stderr.strip()}"
        )
    return json.loads(proc.stdout)


def run_storage_benchmark(
    warm_vertices: int = DEFAULT_WARM_VERTICES,
    num_queries: int = DEFAULT_QUERIES,
    repeats: int = DEFAULT_REPEATS,
    query_size: int = DEFAULT_QUERY_SIZE,
    match_limit: int = DEFAULT_MATCH_LIMIT,
    algorithm: str = DEFAULT_WARM_ALGORITHM,
    ooc_vertices: int = DEFAULT_OOC_VERTICES,
    ooc_half_degree: int = DEFAULT_OOC_HALF_DEGREE,
    ooc_labels: int = DEFAULT_OOC_LABELS,
    ooc_queries: int = DEFAULT_OOC_QUERIES,
) -> dict:
    """Run both halves; returns the validated payload."""
    shm_before = _shm_names()
    tmpdir = tempfile.mkdtemp(prefix="repro-bench-storage-")
    tmp = Path(tmpdir)
    try:
        payload = {
            "schema_version": BENCH_STORAGE_SCHEMA_VERSION,
            "benchmark": "storage-backends",
            "warm": _run_warm_half(
                tmp, warm_vertices, num_queries, repeats, query_size,
                match_limit, algorithm,
            ),
            "out_of_core": _run_ooc_half(
                tmp, ooc_vertices, ooc_half_degree, ooc_labels,
                ooc_queries, match_limit,
            ),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    payload["shm_segments_leaked"] = len(_shm_names() - shm_before)
    payload["tempfiles_leaked"] = 1 if tmp.exists() else 0
    validate_bench_storage(payload)
    return payload


def _run_warm_half(
    tmp: Path,
    vertices: int,
    num_queries: int,
    repeats: int,
    query_size: int,
    match_limit: int,
    algorithm: str,
) -> dict:
    data = erdos_renyi_graph(vertices, DEFAULT_WARM_DEGREE,
                             DEFAULT_WARM_LABELS, seed=7)
    queries = [
        extract_query(data, query_size, seed=seed)
        for seed in range(num_queries)
    ]

    rgf_path = tmp / "warm.rgf"
    write_rgf(data, rgf_path)
    mmap_store = MmapStore(rgf_path, validate=True)
    shm_store = SharedMemoryStore.publish(data)
    backends = {
        "in_memory": data,
        "mmap": mmap_store.graph(),
        "shm": shm_store.graph(),
    }
    seconds = {}
    try:
        # Verification pass (also warms pages and per-graph caches):
        # every backend must return the byte-identical embedding list.
        reference = None
        for name, graph in backends.items():
            results = [
                match(query, graph, algorithm=algorithm,
                      match_limit=match_limit, store_limit=match_limit)
                for query in queries
            ]
            embeddings = [r.embeddings for r in results]
            if reference is None:
                reference = embeddings
            elif embeddings != reference:
                raise SystemExit(
                    f"warm workload: {name} backend returned different "
                    "embeddings than in-memory — refusing to write a "
                    "payload for a broken storage layer"
                )
        for name, graph in backends.items():
            total = 0.0
            for query in queries:
                best = None
                for _ in range(repeats):
                    start = time.perf_counter()
                    match(query, graph, algorithm=algorithm,
                          match_limit=match_limit, store_limit=0)
                    elapsed = time.perf_counter() - start
                    best = elapsed if best is None else min(best, elapsed)
                total += best
            seconds[name] = total
    finally:
        mmap_store.close()
        shm_store.close()

    return {
        "workload": {
            "data_vertices": vertices,
            "data_degree": DEFAULT_WARM_DEGREE,
            "num_labels": DEFAULT_WARM_LABELS,
            "query_vertices": query_size,
            "num_queries": num_queries,
            "match_limit": match_limit,
            "repeats": repeats,
            "algorithm": algorithm,
        },
        "in_memory_seconds": seconds["in_memory"],
        "mmap_seconds": seconds["mmap"],
        "shm_seconds": seconds["shm"],
        "mmap_overhead": seconds["mmap"] / seconds["in_memory"],
        "shm_overhead": seconds["shm"] / seconds["in_memory"],
        "results_identical": True,
    }


def _run_ooc_half(
    tmp: Path,
    vertices: int,
    half_degree: int,
    num_labels: int,
    num_queries: int,
    match_limit: int,
) -> dict:
    rgf_path = tmp / "ooc.rgf"
    facts = build_ring_lattice_rgf(rgf_path, vertices, half_degree,
                                   num_labels)
    budget = int(facts["array_bytes"] * BUDGET_FRACTION)
    if facts["array_bytes"] <= budget:
        raise SystemExit("out-of-core arrays do not exceed the budget")

    spec_path = tmp / "ooc-queries.json"
    spec_path.write_text(json.dumps({
        "queries": _ooc_queries(num_labels, num_queries),
        "match_limit": match_limit,
    }))

    memory = _run_child("memory", rgf_path, spec_path)
    mmap = _run_child("mmap", rgf_path, spec_path)
    if memory["queries"] != mmap["queries"]:
        raise SystemExit(
            "out-of-core workload: memmap results differ from in-memory "
            f"({memory['queries']} vs {mmap['queries']}) — refusing to "
            "write a payload for a broken storage layer"
        )

    return {
        "workload": {
            "data_vertices": facts["data_vertices"],
            "data_edges": facts["data_edges"],
            "half_degree": half_degree,
            "num_labels": num_labels,
            "array_bytes": facts["array_bytes"],
            "memory_budget_bytes": budget,
            "num_queries": num_queries,
            "match_limit": match_limit,
        },
        "in_memory_peak_rss_bytes": memory["peak_rss_bytes"],
        "mmap_peak_rss_bytes": mmap["peak_rss_bytes"],
        "rss_ratio": mmap["peak_rss_bytes"] / memory["peak_rss_bytes"],
        "queries": memory["queries"],
        "results_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--warm-vertices", type=int,
                        default=DEFAULT_WARM_VERTICES)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--query-size", type=int, default=DEFAULT_QUERY_SIZE)
    parser.add_argument("--match-limit", type=int,
                        default=DEFAULT_MATCH_LIMIT)
    parser.add_argument("--algorithm", default=DEFAULT_WARM_ALGORITHM)
    parser.add_argument("--ooc-vertices", type=int,
                        default=DEFAULT_OOC_VERTICES)
    parser.add_argument("--ooc-half-degree", type=int,
                        default=DEFAULT_OOC_HALF_DEGREE)
    parser.add_argument("--ooc-labels", type=int, default=DEFAULT_OOC_LABELS)
    parser.add_argument("--ooc-queries", type=int,
                        default=DEFAULT_OOC_QUERIES)
    parser.add_argument(
        "--output", default="BENCH_storage.json",
        help="payload path (a copy also lands in benchmarks/results/)",
    )
    args = parser.parse_args(argv)

    results = run_storage_benchmark(
        warm_vertices=args.warm_vertices,
        num_queries=args.queries,
        repeats=args.repeats,
        query_size=args.query_size,
        match_limit=args.match_limit,
        algorithm=args.algorithm,
        ooc_vertices=args.ooc_vertices,
        ooc_half_degree=args.ooc_half_degree,
        ooc_labels=args.ooc_labels,
        ooc_queries=args.ooc_queries,
    )
    payload = json.dumps(results, indent=2) + "\n"
    out = Path(args.output)
    out.write_text(payload)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_storage.json").write_text(payload)
    print(payload, end="")
    print(f"wrote {out.resolve()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

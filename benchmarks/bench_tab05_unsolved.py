"""Table 5: number of unsolved queries, without/with failing sets.

Run over the scaled workloads of yt, up, hu and wn (the paper's four
hardest datasets) for all seven orderings under the Section 5.3 setup.

Paper findings to reproduce in shape: RI has the fewest unsolved queries
on the sparse yt/up/wn but not on the dense hu; failing sets sharply cut
unsolved counts for every algorithm; a small fail-all core remains.
"""

from __future__ import annotations

from typing import Dict, List

from conftest import bench_queries
from shared import DEFAULT_SIZE, query_set, run

from repro.study import format_table

DATASET_KEYS = ["yt", "up", "hu", "wn"]

PAIRS = {
    "QSI": ("QSI-opt", "QSIfs"),
    "GQL": ("GQL-opt", "GQLfs"),
    "CFL": ("CFL-opt", "CFLfs"),
    "CECI": ("CECI-opt", "CECIfs"),
    "DP": ("DP-opt", "DPfs"),
    "RI": ("RI-opt", "RIfs"),
    "2PP": ("2PP-opt", "2PPfs"),
}


def _workload_sets(key: str):
    size = DEFAULT_SIZE[key]
    return [query_set(key, size, "dense"), query_set(key, size, "sparse")]


def _experiment() -> str:
    unsolved: Dict[str, Dict[str, List[int]]] = {
        name: {key: [0, 0] for key in DATASET_KEYS} for name in PAIRS
    }
    fail_all: Dict[str, List[int]] = {key: [0, 0] for key in DATASET_KEYS}

    for key in DATASET_KEYS:
        for qs in _workload_sets(key):
            per_query_failures = [
                [0] * len(qs.queries),  # wo/fs
                [0] * len(qs.queries),  # w/fs
            ]
            for name, (plain, with_fs) in PAIRS.items():
                for mode, preset in enumerate((plain, with_fs)):
                    summary = run(preset, key, qs)
                    unsolved[name][key][mode] += summary.num_unsolved
                    for i, record in enumerate(summary.records):
                        if not record.solved:
                            per_query_failures[mode][i] += 1
            for mode in (0, 1):
                fail_all[key][mode] += sum(
                    1
                    for count in per_query_failures[mode]
                    if count == len(PAIRS)
                )

    headers = ["algorithm"]
    for key in DATASET_KEYS:
        headers += [f"{key} wo/fs", f"{key} w/fs"]
    rows: List[List[object]] = []
    for name in PAIRS:
        row: List[object] = [name]
        for key in DATASET_KEYS:
            row += unsolved[name][key]
        rows.append(row)
    fail_row: List[object] = ["Fail-All"]
    for key in DATASET_KEYS:
        fail_row += fail_all[key]
    rows.append(fail_row)

    table = format_table(
        headers, rows, title="Table 5 — number of unsolved queries"
    )
    total = 2 * bench_queries()
    note = (
        f"[{total} queries/dataset] paper: RI fewest unsolved on sparse "
        "yt/up/wn, worse on dense hu; failing sets reduce unsolved counts "
        "for every algorithm."
    )
    return table + "\n\n" + note


def bench_tab05_unsolved_queries(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

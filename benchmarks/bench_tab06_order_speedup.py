"""Table 6: speedup of the best sampled matching order over GQL and RI.

For every query in the yt default dense and sparse sets, sample random
connected orders plus the orders of all seven methods, take the best
enumeration time, and report the speedup over GQL's and RI's own orders
(mean, std, max, and the count exceeding 10x).

Paper finding to reproduce in shape: both GQL and RI leave headroom —
some queries run >10x faster under a sampled order, with GQL leaving more
headroom than RI on this sparse dataset.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List

from conftest import bench_match_cap, bench_time_limit
from shared import DEFAULT_SIZE, dataset, query_set

from repro.enumeration import BacktrackingEngine, IntersectionLC
from repro.filtering import AuxiliaryStructure, GraphQLFilter
from repro.ordering import (
    CECIOrdering,
    CFLOrdering,
    GraphQLOrdering,
    QuickSIOrdering,
    RIOrdering,
    VF2ppOrdering,
    sample_orders,
)
from repro.study import format_table


def _orders_per_query() -> int:
    return int(os.environ.get("REPRO_SPECTRUM_ORDERS", "40"))


def _enum_ms(query, data, candidates, auxiliary, order) -> float:
    engine = BacktrackingEngine(IntersectionLC())
    outcome = engine.run(
        query, data, candidates, auxiliary, order,
        match_limit=bench_match_cap(),
        time_limit=bench_time_limit(),
        store_limit=0,
    )
    if not outcome.solved:
        return bench_time_limit() * 1000.0
    return max(1e-3, outcome.elapsed * 1000.0)


def _experiment() -> str:
    data = dataset("yt")
    rows: List[List[object]] = []
    for density in ("dense", "sparse"):
        qs = query_set("yt", DEFAULT_SIZE["yt"], density)
        speedups: Dict[str, List[float]] = {"GQL": [], "RI": []}
        for query in qs.queries:
            candidates = GraphQLFilter().run(query, data)
            auxiliary = AuxiliaryStructure.build(
                query, data, candidates, scope="all"
            )

            times = {}
            for name, ordering in [
                ("QSI", QuickSIOrdering()),
                ("GQL", GraphQLOrdering()),
                ("CFL", CFLOrdering()),
                ("CECI", CECIOrdering()),
                ("RI", RIOrdering()),
                ("2PP", VF2ppOrdering()),
            ]:
                order = ordering.order(query, data, candidates)
                times[name] = _enum_ms(query, data, candidates, auxiliary, order)

            best = min(times.values())
            for order in sample_orders(query, _orders_per_query(), seed=31337):
                best = min(
                    best, _enum_ms(query, data, candidates, auxiliary, order)
                )
            speedups["GQL"].append(times["GQL"] / best)
            speedups["RI"].append(times["RI"] / best)

        for name in ("GQL", "RI"):
            values = speedups[name]
            mean = sum(values) / len(values)
            std = math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))
            rows.append(
                [
                    f"{name} ({qs.label})",
                    round(mean, 2),
                    round(std, 2),
                    round(max(values), 2),
                    sum(1 for v in values if v > 10),
                ]
            )

    table = format_table(
        ["algorithm (set)", "mean", "std", "max", ">10"],
        rows,
        title="Table 6 — speedup of best sampled order over GQL/RI on yt",
    )
    note = (
        f"[{_orders_per_query()} sampled orders/query] paper: both leave "
        "headroom; GQL more than RI on this sparse dataset."
    )
    return table + "\n\n" + note


def bench_tab06_order_speedup(benchmark, report):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    report(table)

"""Shared benchmark infrastructure.

Every ``bench_*.py`` module reproduces one figure or table of the paper's
evaluation (see DESIGN.md's experiment index). Each experiment runs once
under ``benchmark.pedantic`` (so pytest-benchmark records its wall time),
prints the paper-style table through the ``report`` fixture (bypassing
pytest's capture so it lands in the console / bench_output.txt), and saves
a copy under ``benchmarks/results/``.

Scale knobs (environment variables):

* ``REPRO_SCALE``          — dataset stand-in size multiplier (default 1.0)
* ``REPRO_BENCH_QUERIES``  — queries per query set (default 5)
* ``REPRO_TIME_LIMIT``     — per-query enumeration budget, seconds (default 2;
                             benches default to 0.5 via BENCH_TIME_LIMIT)
* ``REPRO_MATCH_CAP``      — match cap per query (default 10000)
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

RESULTS_DIR = Path(__file__).parent / "results"


def bench_queries() -> int:
    """Queries per set in benchmark workloads."""
    return int(os.environ.get("REPRO_BENCH_QUERIES", "5"))


def bench_time_limit() -> float:
    """Per-query budget for benchmark runs (seconds)."""
    return float(os.environ.get("REPRO_TIME_LIMIT", "0.5"))


def bench_match_cap() -> int:
    return int(os.environ.get("REPRO_MATCH_CAP", "10000"))


@pytest.fixture
def report(pytestconfig, request):
    """Print experiment tables through pytest's capture and archive them."""
    capman = pytestconfig.pluginmanager.getplugin("capturemanager")

    def _report(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print("\n" + text, flush=True)
        else:
            print("\n" + text, flush=True)

    return _report

"""Workload construction shared by the benchmark modules.

Builds (and memoizes) the per-dataset query sets used across experiments so
Figure 7 and Figure 8 (for example) measure the same queries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from conftest import bench_match_cap, bench_queries, bench_time_limit

from repro.graph.graph import Graph
from repro.study import (
    QuerySet,
    build_query_set,
    load_dataset,
    run_algorithm_on_set,
)

#: Dataset order used in the paper's per-dataset figures.
ALL_DATASETS = ["ye", "hu", "hp", "wn", "up", "yt", "db", "eu"]

#: Scaled stand-ins for the paper's default query sets (Q32D/Q32S, or
#: Q20D/Q20S on hu/wn): our defaults are Q12D/Q12S (Q8D/Q8S on hu/wn).
DEFAULT_SIZE = {key: (8 if key in ("hu", "wn") else 12) for key in ALL_DATASETS}

#: Query-size ladders for the "vary |V(q)|" panels.
SIZE_LADDER = {key: ([4, 6, 8] if key in ("hu", "wn") else [4, 8, 12, 16]) for key in ALL_DATASETS}

_QUERY_CACHE: Dict[Tuple[str, int, Optional[str]], QuerySet] = {}


def dataset(key: str) -> Graph:
    """The stand-in graph for dataset ``key`` (cached by the study layer)."""
    return load_dataset(key)


def query_set(key: str, size: int, density: Optional[str]) -> QuerySet:
    """Memoized query set so all experiments measure identical queries."""
    cache_key = (key, size, density)
    if cache_key not in _QUERY_CACHE:
        _QUERY_CACHE[cache_key] = build_query_set(
            dataset(key),
            key,
            size,
            density,  # type: ignore[arg-type]
            bench_queries(),
            seed=4242 + size,
        )
    return _QUERY_CACHE[cache_key]


def default_sets(key: str) -> List[QuerySet]:
    """The dataset's default dense and sparse sets (paper Section 4)."""
    size = DEFAULT_SIZE[key]
    return [query_set(key, size, "dense"), query_set(key, size, "sparse")]


def run(algorithm, key: str, qs: QuerySet, time_limit: Optional[float] = None):
    """Run one algorithm over one query set with benchmark limits."""
    return run_algorithm_on_set(
        algorithm,
        dataset(key),
        qs.queries,
        dataset_key=key,
        query_set_label=qs.label,
        match_limit=bench_match_cap(),
        time_limit=time_limit if time_limit is not None else bench_time_limit(),
    )


def paper_note(text: str) -> str:
    """Standard footer tying a bench table back to the paper's claim."""
    return f"paper: {text}"

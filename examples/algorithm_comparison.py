#!/usr/bin/env python3
"""Run the paper's eight algorithms side by side on one workload.

A miniature of the study itself: one dataset stand-in, one query set,
every algorithm family — the seven framework presets (original and
optimized) plus the Glasgow constraint-programming solver — with the
per-phase timings the paper reports.

Run with::

    python examples/algorithm_comparison.py [dataset_key]

where ``dataset_key`` is one of ye/hu/hp/wn/up/yt/db/eu (default ye).
"""

import sys

from repro.study import (
    build_query_set,
    format_table,
    load_dataset,
    run_algorithm_on_set,
)

ALGORITHMS = [
    # The originals, re-implemented in the common framework.
    "QSI", "GQL", "CFL", "CECI", "DP", "RI", "2PP",
    # The paper's optimized compositions.
    "GQLfs", "RIfs",
    # Constraint programming.
    "GLW",
]


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "ye"
    data = load_dataset(key)
    print(f"dataset {key}: {data}")

    query_set = build_query_set(data, key, size=8, density="dense", count=5, seed=99)
    print(f"workload: {len(query_set)} {query_set.label} queries\n")

    rows = []
    for algorithm in ALGORITHMS:
        summary = run_algorithm_on_set(
            algorithm,
            data,
            query_set.queries,
            dataset_key=key,
            query_set_label=query_set.label,
            match_limit=10_000,
            time_limit=5.0,
        )
        rows.append(
            [
                algorithm,
                round(summary.avg_preprocessing_ms, 2),
                round(summary.avg_enumeration_ms, 2),
                round(summary.avg_total_ms, 2),
                summary.num_unsolved,
                round(summary.avg_matches_solved, 0),
            ]
        )

    rows.sort(key=lambda r: r[3])
    print(
        format_table(
            ["algorithm", "prep ms", "enum ms", "total ms", "unsolved", "avg matches"],
            rows,
            title=f"Leaderboard on {key}/{query_set.label} (sorted by total time)",
        )
    )
    print(
        "\nExpected shape (paper Section 5.5): the optimized GQLfs/RIfs sit "
        "on top; the preprocessing-enumeration originals beat the "
        "direct-enumeration ones; Glasgow trails on enumeration workloads."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Subgraph containment over a graph database (paper Section 2.2).

Builds a collection of small labeled graphs (molecule-sized, like the
AIDS-style datasets containment papers use) and answers "which graphs
contain this pattern?" queries with the no-index recipe: cheap global
filters plus the study's matcher in decision mode.

Run with::

    python examples/graph_database_search.py
"""

from repro.applications import GraphCollection
from repro.graph import Graph, erdos_renyi_graph, extract_query
from repro.utils.timer import Timer


def build_collection(num_graphs: int = 300) -> GraphCollection:
    """Molecule-sized random graphs: 10-40 vertices, 4 labels."""
    collection = GraphCollection()
    for i in range(num_graphs):
        size = 10 + (i * 7) % 31
        graph = erdos_renyi_graph(size, 3.0, 4, seed=9000 + i)
        collection.add(graph)
    return collection


def main() -> None:
    collection = build_collection()
    sizes = [len(collection[i].vertices()) for i in range(len(collection))]
    print(
        f"collection: {len(collection)} graphs, "
        f"{min(sizes)}-{max(sizes)} vertices each"
    )

    # Queries: patterns mined from members of the collection (guaranteed
    # at least one hit) plus one synthetic pattern.
    queries = {
        "mined 4-vertex": extract_query(collection[0], 4, seed=1),
        "mined 6-vertex": extract_query(collection[10], 6, seed=2),
        "triangle (label 0)": Graph(
            labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)]
        ),
    }

    for name, query in queries.items():
        with Timer() as timer:
            result = collection.search(query, time_limit_per_graph=2.0)
        print(f"\nquery: {name} ({query.num_vertices}v/{query.num_edges}e)")
        print(f"  containing graphs : {len(result.containing)}")
        print(
            f"  filtered w/o work : {result.filtered_out}/{len(collection)}"
            f" ({100 * result.filter_rate:.0f}%)"
        )
        print(f"  verified          : {result.verified}")
        print(f"  total time        : {timer.elapsed_ms:.1f} ms")
        if result.containing:
            print(f"  first hits        : {result.containing[:8]}")


if __name__ == "__main__":
    main()

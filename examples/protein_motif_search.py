#!/usr/bin/env python3
"""Protein-interaction motif search (the paper's biology workload).

Subgraph matching originates in bioinformatics: find all occurrences of a
small interaction *motif* inside a protein-protein interaction (PPI)
network where vertex labels are protein families. This example builds a
Yeast-shaped PPI stand-in (Table 3's ``ye``: ~3.1k proteins, avg degree 8,
71 families, skewed family sizes) and hunts three classic motifs:

* the *feed-forward triangle* — three mutually interacting families,
* the *hub-and-spoke* star — one family coordinating three others,
* the *bridge* — two triangles joined by a linker protein.

It also shows why the paper's filtering methods matter: candidate counts
before and after GraphQL's refinement.

Run with::

    python examples/protein_motif_search.py
"""

from repro import Graph, match
from repro.filtering import GraphQLFilter, LDFFilter
from repro.study import load_dataset


def most_common_labels(graph: Graph, count: int) -> list:
    """The most frequent labels, as (label, frequency) pairs."""
    pairs = [(label, graph.label_frequency(label)) for label in graph.label_set]
    pairs.sort(key=lambda p: (-p[1], p[0]))
    return pairs[:count]


def build_motifs(ppi: Graph) -> dict:
    """Motifs over the network's three most common protein families."""
    (fam_a, _), (fam_b, _), (fam_c, _) = most_common_labels(ppi, 3)
    return {
        "feed-forward triangle": Graph(
            labels=[fam_a, fam_b, fam_c],
            edges=[(0, 1), (1, 2), (0, 2)],
        ),
        "hub-and-spoke star": Graph(
            labels=[fam_a, fam_b, fam_b, fam_c],
            edges=[(0, 1), (0, 2), (0, 3)],
        ),
        "bridged triangles": Graph(
            labels=[fam_a, fam_b, fam_b, fam_a, fam_c],
            edges=[(0, 1), (1, 2), (0, 2), (1, 3), (3, 4), (1, 4)],
        ),
    }


def main() -> None:
    ppi = load_dataset("ye")  # the Yeast stand-in
    print("PPI network:", ppi)
    print(
        "top families:",
        ", ".join(f"{l} ({n} proteins)" for l, n in most_common_labels(ppi, 3)),
    )

    motifs = build_motifs(ppi)
    for name, motif in motifs.items():
        # Pruning power: LDF vs GraphQL's profile + pseudo-iso refinement.
        ldf = LDFFilter().run(motif, ppi)
        gql = GraphQLFilter().run(motif, ppi)
        result = match(motif, ppi, algorithm="recommended", match_limit=10_000)
        print(f"\nmotif: {name} ({motif.num_vertices} vertices)")
        print(f"  candidates/vertex: LDF {ldf.average_size:.0f} -> GQL {gql.average_size:.0f}")
        print(f"  occurrences found: {result.num_matches}")
        print(f"  query time       : {result.total_ms:.1f} ms")
        if result.mappings:
            print(f"  first occurrence : {result.mappings[0]}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: find subgraph matches in five minutes.

Builds a small labeled data graph, runs the recommended algorithm, and
shows what the result object carries. Run with::

    python examples/quickstart.py
"""

from repro import Graph, available_algorithms, count_matches, match

# A labeled data graph: a hexagonal ring of alternating labels with two
# chords. Labels are small ints; think 0 = "user", 1 = "group".
data = Graph(
    labels=[0, 1, 0, 1, 0, 1],
    edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 2), (3, 5)],
)

# The pattern: a user connected to two groups that are connected through
# another user — a labeled path of length 3.
query = Graph(labels=[1, 0, 1, 0], edges=[(0, 1), (1, 2), (2, 3)])


def main() -> None:
    print("data ", data)
    print("query", query)

    # One call: filter candidates, pick a matching order, enumerate.
    result = match(query, data)
    print(f"\nalgorithm used: {result.algorithm}")
    print(f"matches found : {result.num_matches}")
    print(f"preprocessing : {result.preprocessing_ms:.3f} ms")
    print(f"enumeration   : {result.enumeration_ms:.3f} ms")

    # Embeddings map query vertex -> data vertex.
    for mapping in result.mappings[:5]:
        print("  match:", mapping)

    # Any preset from the paper can be requested by name.
    print("\navailable algorithms:", ", ".join(available_algorithms()))
    for name in ("GQL", "RI", "CECI", "DPfs"):
        print(f"  {name:5s} ->", count_matches(query, data, algorithm=name), "matches")


if __name__ == "__main__":
    main()

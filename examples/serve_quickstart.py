#!/usr/bin/env python3
"""Matching-as-a-service: the in-process serving tier in one page.

A ``MatchService`` holds named resident data graphs and serves matching
requests from many tenants concurrently: per-tenant session caches,
per-request budgets, bounded-queue backpressure, and coalescing of
identical in-flight queries (one enumeration fans out to every waiter).
The same service backs the ``repro serve`` TCP command; embedding it
directly, as here, skips the sockets. Run with::

    PYTHONPATH=src python examples/serve_quickstart.py
"""

import threading

from repro import Graph
from repro.serve import MatchService

# One resident "social" graph: two user/group rings sharing chords.
social = Graph(
    labels=[i % 2 for i in range(30)],
    edges=[(i, (i + 1) % 30) for i in range(30)]
    + [(i, (i + 3) % 30) for i in range(0, 30, 5)],
)

wedge = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
square = Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (1, 2), (2, 3), (3, 0)])


def main() -> None:
    with MatchService(workers=4, max_queue_depth=32) as service:
        service.add_graph("social", social)

        # --- One synchronous request.
        response = service.match(wedge, graph="social", tenant="alice")
        print(f"alice's wedges        : {response.result.num_matches}")

        # --- Many tenants at once: submit returns futures; identical
        # in-flight queries share one execution (watch serve.coalesced).
        barrier = threading.Barrier(6 + 1)
        futures = [None] * 6

        def client(i: int) -> None:
            barrier.wait()
            futures[i] = service.submit(
                square, graph="social", tenant=f"tenant-{i % 3}", budget=5.0
            )

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        for t in threads:
            t.join()
        responses = [f.result(timeout=30) for f in futures]

        assert all(r.status == "ok" for r in responses)
        first = responses[0].result.embeddings
        assert all(r.result.embeddings == first for r in responses)
        print(f"squares per tenant    : {responses[0].result.num_matches}")

        counters = service.stats()["counters"]
        print(f"requests admitted     : {counters['serve.admitted']}")
        print(f"enumerations executed : {counters['serve.executed']}")
        print(f"coalesced (saved runs): {counters.get('serve.coalesced', 0)}")
        print(f"queue depth peak      : {service.queue_depth_peak}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sessions: serve many queries against one resident data graph.

A ``MatchSession`` owns the data graph and amortizes everything that can
be amortized: compiled plans are cached by an order-invariant query
fingerprint (a renumbered copy of a pattern hits), and exact repeats skip
filtering/ordering entirely and go straight to enumeration. Run with::

    PYTHONPATH=src python examples/session_throughput.py
"""

import time

from repro import Graph, MatchSession, match, query_fingerprint

# A ring of user/group vertices with chords — small but structured.
data = Graph(
    labels=[i % 2 for i in range(24)],
    edges=[(i, (i + 1) % 24) for i in range(24)]
    + [(i, (i + 4) % 24) for i in range(0, 24, 3)],
)

# Three patterns, submitted over and over (a service workload).
patterns = [
    Graph(labels=[1, 0, 1, 0], edges=[(0, 1), (1, 2), (2, 3)]),
    Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)]),
    Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (1, 2), (2, 3), (3, 0)]),
]
workload = [patterns[i % len(patterns)] for i in range(60)]


def main() -> None:
    # --- One-shot: every call resolves, filters and orders from scratch.
    start = time.perf_counter()
    one_shot = [match(q, data, algorithm="GQLfs") for q in workload]
    one_shot_s = time.perf_counter() - start

    # --- Session: compile once per pattern, reuse on every repeat.
    session = MatchSession(data, algorithm="GQLfs")
    start = time.perf_counter()
    results = session.match_many(workload)
    session_s = time.perf_counter() - start

    assert [r.num_matches for r in results] == [r.num_matches for r in one_shot]

    print(f"workload       : {len(workload)} queries, {len(patterns)} distinct")
    print(f"one-shot       : {one_shot_s * 1000:.1f} ms")
    print(f"session        : {session_s * 1000:.1f} ms "
          f"({one_shot_s / session_s:.1f}x)")

    # Each result's metrics say whether its plan was cached.
    first, later = results[0], results[-1]
    print(f"first query    : {dict(first.metrics.counters)['plan.cache_miss']} miss")
    print(f"last query     : {dict(later.metrics.counters)['plan.cache_hit']} hit")

    # The session keeps aggregate counters and cache introspection.
    print("session metrics:", dict(session.metrics.counters))
    print("cache info     :", session.cache_info())

    # Plans are keyed by an order-invariant fingerprint: a renumbered
    # copy of a pattern is the same plan.
    renumbered = Graph(labels=[0, 1, 0, 1], edges=[(3, 2), (2, 1), (1, 0), (0, 3)])
    print("fingerprints   :", query_fingerprint(patterns[2]),
          "==", query_fingerprint(renumbered))
    before = session.cache_info()["plan"]["hits"]
    session.match(renumbered)
    after = session.cache_info()["plan"]["hits"]
    print(f"renumbered hit : plan cache hits {before} -> {after}")


if __name__ == "__main__":
    main()

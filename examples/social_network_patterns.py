#!/usr/bin/env python3
"""Pattern analytics on a social network (the paper's yt workload).

Searches a Youtube-shaped social graph for community patterns and uses
them to demonstrate the paper's two headline ordering findings:

* on sparse social graphs, RI's backward-neighbor-greedy order is
  excellent — non-tree edges land early in φ and kill bad paths fast;
* failing sets barely matter for small patterns but pay off on larger
  ones.

Run with::

    python examples/social_network_patterns.py
"""

from repro import Graph, match
from repro.graph import extract_query
from repro.study import load_dataset


def community_patterns(social: Graph) -> dict:
    """Patterns mined from the network itself (the paper's method), so
    every pattern is guaranteed at least one occurrence."""
    return {
        "triad (3v)": extract_query(social, 3, seed=11),
        "tight clique-ish (6v)": extract_query(
            social, 6, seed=12, density="dense"
        ),
        "loose community (10v)": extract_query(
            social, 10, seed=13, density="sparse"
        ),
        "dense community (10v)": extract_query(
            social, 10, seed=2020, density="dense"
        ),
    }


def main() -> None:
    social = load_dataset("yt")
    print("social network:", social, f"avg degree {social.average_degree:.1f}")

    for name, pattern in community_patterns(social).items():
        print(f"\npattern: {name} ({pattern.num_vertices}v/{pattern.num_edges}e)")
        rows = []
        for algorithm in ("GQL-opt", "RI-opt", "GQLfs", "RIfs"):
            result = match(
                social_pattern := pattern,
                social,
                algorithm=algorithm,
                match_limit=10_000,
                time_limit=10.0,
            )
            rows.append((algorithm, result))
        for algorithm, result in rows:
            status = "ok" if result.solved else "TIMEOUT"
            print(
                f"  {algorithm:8s} {result.num_matches:7d} matches  "
                f"enum {result.enumeration_ms:9.2f} ms  "
                f"calls {result.stats.recursion_calls:9d}  {status}"
            )
        fastest = min(rows, key=lambda r: r[1].enumeration_ms)[0]
        print(f"  fastest: {fastest}")


if __name__ == "__main__":
    main()

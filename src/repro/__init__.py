"""In-memory subgraph matching: a study framework.

A from-scratch Python reproduction of *In-Memory Subgraph Matching: An
In-depth Study* (Sun & Luo, SIGMOD 2020): eight subgraph-matching
algorithms decomposed into filtering, ordering, enumeration and
optimization components inside one common framework, plus the Glasgow
constraint-programming solver and the full experiment harness.

Quickstart::

    from repro import Graph, match

    data = Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
    query = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
    result = match(query, data, algorithm="GQLfs")
    print(result.num_matches, result.mappings)
"""

from repro.core import (
    AlgorithmSpec,
    MatchPlan,
    MatchResult,
    MatchSession,
    available_algorithms,
    compile_plan,
    count_matches,
    get_algorithm,
    has_match,
    match,
    recommended_spec,
    verify_embedding,
    explain_embedding_failure,
)
from repro.enumeration import iter_matches
from repro.graph import (
    Graph,
    GraphStore,
    InMemoryStore,
    MmapStore,
    SharedMemoryStore,
    as_graph,
    load_graph,
    query_fingerprint,
    save_graph,
    write_rgf,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphStore",
    "InMemoryStore",
    "MmapStore",
    "SharedMemoryStore",
    "as_graph",
    "write_rgf",
    "load_graph",
    "save_graph",
    "query_fingerprint",
    "match",
    "MatchSession",
    "MatchPlan",
    "compile_plan",
    "iter_matches",
    "count_matches",
    "has_match",
    "MatchResult",
    "AlgorithmSpec",
    "available_algorithms",
    "get_algorithm",
    "recommended_spec",
    "verify_embedding",
    "explain_embedding_failure",
    "__version__",
]

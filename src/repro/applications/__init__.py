"""Applications built on the matching engine.

* :mod:`repro.applications.containment` — subgraph containment search over
  a collection of data graphs, the workload the paper's related-work
  section ties to preprocessing-enumeration matching (Sun et al., ICDE'19:
  containment without indices, just cheap global filters + an efficient
  matcher).
"""

from repro.applications.containment import GraphCollection, containment_search

__all__ = ["GraphCollection", "containment_search"]

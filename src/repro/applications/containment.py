"""Subgraph containment over a collection of data graphs.

Subgraph containment (paper Section 2.2) finds the data graphs in a
collection that contain a given query graph. The classical approach builds
feature indices (the *indexing-filtering-verification* paradigm), but —
as the paper recounts — those indices scale poorly, and Sun et al. showed
a good matching algorithm with cheap per-graph filters does the job
without any index. This module implements that recipe:

1. **Global filters** — per-graph summaries (vertex/edge counts, label
   multiset, maximum degree, label-wise maximum degree) reject graphs
   that cannot possibly embed the query;
2. **Verification** — the framework's matcher in decision mode
   (``match_limit=1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.api import match
from repro.core.spec import AlgorithmSpec
from repro.graph.graph import Graph

__all__ = ["GraphCollection", "containment_search", "ContainmentResult"]


@dataclass(frozen=True)
class _GraphSummary:
    """Cheap per-graph invariants used by the global filters."""

    num_vertices: int
    num_edges: int
    max_degree: int
    label_counts: Dict[int, int]
    label_max_degree: Dict[int, int]

    @classmethod
    def of(cls, graph: Graph) -> "_GraphSummary":
        label_counts: Dict[int, int] = {}
        label_max_degree: Dict[int, int] = {}
        for v in graph.vertices():
            label = graph.label(v)
            label_counts[label] = label_counts.get(label, 0) + 1
            degree = graph.degree(v)
            if degree > label_max_degree.get(label, -1):
                label_max_degree[label] = degree
        return cls(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            max_degree=graph.max_degree,
            label_counts=label_counts,
            label_max_degree=label_max_degree,
        )

    def may_contain(self, query_summary: "_GraphSummary") -> bool:
        """Necessary conditions for this graph to embed the query."""
        if self.num_vertices < query_summary.num_vertices:
            return False
        if self.num_edges < query_summary.num_edges:
            return False
        if self.max_degree < query_summary.max_degree:
            return False
        for label, needed in query_summary.label_counts.items():
            if self.label_counts.get(label, 0) < needed:
                return False
        for label, degree in query_summary.label_max_degree.items():
            if self.label_max_degree.get(label, -1) < degree:
                return False
        return True


@dataclass
class ContainmentResult:
    """Outcome of one containment search."""

    #: Indices (into the collection) of graphs containing the query.
    containing: List[int]
    #: Graphs rejected by the global filters (never verified).
    filtered_out: int
    #: Graphs that went through full verification.
    verified: int
    #: Graphs whose verification hit the time limit (counted as
    #: non-containing, like the paper's unsolved queries).
    timeouts: int = 0
    timed_out_indices: List[int] = field(default_factory=list)

    @property
    def filter_rate(self) -> float:
        """Fraction of the collection eliminated without verification."""
        total = self.filtered_out + self.verified
        return self.filtered_out / total if total else 0.0


class GraphCollection:
    """An in-memory collection of data graphs with containment search.

    Summaries are computed once per graph at insertion; queries reuse them.

    >>> from repro.graph import Graph
    >>> coll = GraphCollection([
    ...     Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)]),
    ...     Graph(labels=[0, 0, 0], edges=[(0, 1), (1, 2), (0, 2)]),
    ... ])
    >>> q = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
    >>> coll.search(q).containing
    [0]
    """

    def __init__(self, graphs: Sequence[Graph] = ()) -> None:
        self._graphs: List[Graph] = []
        self._summaries: List[_GraphSummary] = []
        for graph in graphs:
            self.add(graph)

    def add(self, graph: Graph) -> int:
        """Add a graph; returns its index."""
        self._graphs.append(graph)
        self._summaries.append(_GraphSummary.of(graph))
        return len(self._graphs) - 1

    def __len__(self) -> int:
        return len(self._graphs)

    def __getitem__(self, index: int) -> Graph:
        return self._graphs[index]

    def search(
        self,
        query: Graph,
        algorithm: "str | AlgorithmSpec" = "recommended",
        time_limit_per_graph: Optional[float] = None,
    ) -> ContainmentResult:
        """Find all graphs containing ``query``."""
        query_summary = _GraphSummary.of(query)
        result = ContainmentResult(containing=[], filtered_out=0, verified=0)
        for index, (graph, summary) in enumerate(
            zip(self._graphs, self._summaries)
        ):
            if not summary.may_contain(query_summary):
                result.filtered_out += 1
                continue
            result.verified += 1
            outcome = match(
                query,
                graph,
                algorithm=algorithm,
                match_limit=1,
                time_limit=time_limit_per_graph,
                store_limit=0,
            )
            if not outcome.solved:
                result.timeouts += 1
                result.timed_out_indices.append(index)
            elif outcome.num_matches > 0:
                result.containing.append(index)
        return result


def containment_search(
    query: Graph,
    graphs: Sequence[Graph],
    algorithm: "str | AlgorithmSpec" = "recommended",
    time_limit_per_graph: Optional[float] = None,
) -> ContainmentResult:
    """One-shot containment search over an ad-hoc sequence of graphs."""
    return GraphCollection(graphs).search(
        query, algorithm=algorithm, time_limit_per_graph=time_limit_per_graph
    )

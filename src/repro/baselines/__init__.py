"""Reference matchers used as correctness oracles.

These deliberately share no code with the study framework: a brute-force
assignment enumerator and a classic VF2 implementation. Tests cross-check
every algorithm preset against them.
"""

from repro.baselines.bruteforce import brute_force_matches
from repro.baselines.vf2 import vf2_matches

__all__ = ["brute_force_matches", "vf2_matches"]

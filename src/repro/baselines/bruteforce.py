"""Brute-force subgraph matching oracle.

Enumerates every injective, label-preserving assignment of query vertices
to data vertices and keeps those preserving all query edges (Definition
2.1). Exponential — use only on tiny test instances.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from repro.graph.graph import Graph

__all__ = ["brute_force_matches"]


def brute_force_matches(query: Graph, data: Graph) -> FrozenSet[Tuple[int, ...]]:
    """All matches as tuples ``t`` with ``t[u]`` the image of query vertex ``u``.

    Candidates are restricted per label up front, then all injective
    combinations are tried; edge preservation is verified last.
    """
    per_vertex: List[List[int]] = [
        data.vertices_with_label(query.label(u)).tolist()
        for u in query.vertices()
    ]
    query_edges = list(query.edges())
    matches = set()

    def extend(index: int, chosen: List[int]) -> None:
        if index == query.num_vertices:
            if all(data.has_edge(chosen[a], chosen[b]) for a, b in query_edges):
                matches.add(tuple(chosen))
            return
        for v in per_vertex[index]:
            if v in chosen:
                continue
            chosen.append(v)
            extend(index + 1, chosen)
            chosen.pop()

    extend(0, [])
    return frozenset(matches)

"""A classic VF2-style matcher (Cordella et al., TPAMI 2004).

The study's Table 1 lists VF2 under the state-space-representation model.
We implement the *monomorphism* semantics used throughout the paper
(query edges must be preserved; extra data edges are allowed) with VF2's
core feasibility rules:

* label consistency and degree lookahead,
* core rule — every mapped neighbor of the query vertex must map to a
  neighbor of the data vertex,
* 1-look-ahead on the *terminal* sets (frontier sizes).

Independent of the framework code, so it serves as an oracle.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.graph.graph import Graph

__all__ = ["vf2_matches", "iter_vf2_matches"]


def _connected_order(query: Graph) -> List[int]:
    """A BFS order from vertex 0 — VF2 expands along connectivity."""
    order: List[int] = []
    seen = [False] * query.num_vertices
    for start in query.vertices():
        if seen[start]:
            continue
        seen[start] = True
        queue = [start]
        while queue:
            u = queue.pop(0)
            order.append(u)
            for w in query.neighbors(u).tolist():
                if not seen[w]:
                    seen[w] = True
                    queue.append(w)
    return order


def iter_vf2_matches(
    query: Graph, data: Graph, limit: Optional[int] = None
) -> Iterator[Tuple[int, ...]]:
    """Yield matches as tuples ``t`` with ``t[u]`` the image of ``u``."""
    order = _connected_order(query)
    n = query.num_vertices
    mapping: Dict[int, int] = {}
    used: set = set()
    found = 0

    backward: List[List[int]] = []
    for i, u in enumerate(order):
        before = set(order[:i])
        backward.append(
            [w for w in query.neighbors(u).tolist() if w in before]
        )

    def candidates(depth: int) -> List[int]:
        u = order[depth]
        anchors = backward[depth]
        if not anchors:
            return [
                v
                for v in data.vertices_with_label(query.label(u)).tolist()
                if data.degree(v) >= query.degree(u)
            ]
        # Expand from the first mapped anchor's data neighbors.
        base = data.neighbors(mapping[anchors[0]]).tolist()
        label = query.label(u)
        degree = query.degree(u)
        result = []
        for v in base:
            if data.label(v) != label or data.degree(v) < degree:
                continue
            if all(data.has_edge(v, mapping[w]) for w in anchors[1:]):
                result.append(v)
        return result

    def search(depth: int) -> Iterator[Tuple[int, ...]]:
        nonlocal found
        if depth == n:
            result = tuple(mapping[u] for u in range(n))
            found += 1
            yield result
            return
        u = order[depth]
        for v in candidates(depth):
            if v in used:
                continue
            # 1-look-ahead: v must have enough unmapped neighbors to host
            # u's unmapped neighbors.
            unmapped_q = sum(
                1 for w in query.neighbors(u).tolist() if w not in mapping
            )
            unmapped_d = sum(
                1 for w in data.neighbors(v).tolist() if w not in used
            )
            if unmapped_d < unmapped_q:
                continue
            mapping[u] = v
            used.add(v)
            yield from search(depth + 1)
            del mapping[u]
            used.discard(v)
            if limit is not None and found >= limit:
                return

    yield from search(0)


def vf2_matches(
    query: Graph, data: Graph, limit: Optional[int] = None
) -> FrozenSet[Tuple[int, ...]]:
    """All (or the first ``limit``) matches of ``query`` in ``data``."""
    return frozenset(iter_vf2_matches(query, data, limit=limit))

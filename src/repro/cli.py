"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``match``          — run one algorithm on a query/data pair of graph files
* ``compare``        — run several presets on one pair and print a leaderboard
* ``convert``        — convert between the ``.graph`` text and ``.rgf`` binary formats
* ``generate``       — write a synthetic data graph (RMAT or Erdős–Rényi)
* ``extract-query``  — extract a random-walk query from a data graph
* ``datasets``       — list (or materialize) the paper's dataset stand-ins
* ``algorithms``     — list the available presets
* ``fuzz``           — differential fuzzing with planted ground truth
* ``serve``          — run the JSON-lines matching server over resident graphs
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core import MatchSession, algorithm_components, available_algorithms, match
from repro.glasgow import glasgow_match
from repro.graph import (
    erdos_renyi_graph,
    extract_query,
    load_graph,
    rmat_graph,
    save_graph,
)
from repro.obs import Tracer, tracing
from repro.study import DATASETS, format_table, load_dataset
from repro.enumeration.engines import available_engines
from repro.utils.kernels import available_kernels

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="In-memory subgraph matching (SIGMOD'20 study framework)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_match = sub.add_parser("match", help="match a query against a data graph")
    p_match.add_argument("--query", "-q", required=True, help=".graph file")
    p_match.add_argument("--data", "-d", required=True, help=".graph file")
    p_match.add_argument(
        "--algorithm", "-a", default="recommended",
        help="preset name, 'GLW' for Glasgow, or 'recommended'",
    )
    p_match.add_argument("--match-limit", type=int, default=100_000)
    p_match.add_argument("--time-limit", type=float, default=None)
    p_match.add_argument(
        "--kernel", "-k", choices=available_kernels(), default=None,
        help="intersection backend for the Algorithm 5 hot path "
        "(default: $REPRO_KERNEL, else the auto heuristic)",
    )
    p_match.add_argument(
        "--engine", "-e", choices=available_engines(), default=None,
        help="enumeration engine (default: $REPRO_ENGINE, else the "
        "iterative frame machine)",
    )
    p_match.add_argument(
        "--workers", "-w", type=int, default=None,
        help="intra-query worker processes for eligible plans "
        "(default: $REPRO_WORKERS, else sequential; results identical)",
    )
    p_match.add_argument(
        "--show", type=int, default=3, help="embeddings to print"
    )
    p_match.add_argument(
        "--trace", metavar="OUT.JSONL", default=None,
        help="write a span trace of the run as JSONL "
        "(schema: repro.trace/v1; see docs/architecture.md)",
    )
    p_match.add_argument(
        "--metrics-out", metavar="OUT.JSON", default=None,
        help="write the run's cross-layer counters as JSON",
    )

    p_compare = sub.add_parser(
        "compare", help="run several presets on one query/data pair"
    )
    p_compare.add_argument("--query", "-q", required=True)
    p_compare.add_argument("--data", "-d", required=True)
    p_compare.add_argument(
        "--algorithms",
        "-a",
        nargs="+",
        default=["GQLfs", "RIfs", "CECI", "DP", "QSI", "GLW"],
    )
    p_compare.add_argument("--match-limit", type=int, default=100_000)
    p_compare.add_argument("--time-limit", type=float, default=None)
    p_compare.add_argument(
        "--kernel", "-k", choices=available_kernels(), default=None,
        help="intersection backend used by every preset",
    )
    p_compare.add_argument(
        "--engine", "-e", choices=available_engines(), default=None,
        help="enumeration engine used by every preset",
    )

    p_convert = sub.add_parser(
        "convert",
        help="convert a graph between the .graph text and .rgf binary "
        "formats (an .rgf data graph then opens memmap-backed in O(header))",
    )
    p_convert.add_argument(
        "--input", "-i", required=True,
        help="source graph (.graph text or .rgf binary, sniffed by magic)",
    )
    p_convert.add_argument(
        "--output", "-o", required=True,
        help="destination; an .rgf suffix writes the binary format, "
        "anything else the text format",
    )
    p_convert.add_argument(
        "--validate", action="store_true",
        help="re-open the written file and verify segment checksums and "
        "CSR invariants",
    )

    p_generate = sub.add_parser("generate", help="write a synthetic data graph")
    p_generate.add_argument("--model", choices=["rmat", "er"], default="rmat")
    p_generate.add_argument("--vertices", "-n", type=int, required=True)
    p_generate.add_argument("--degree", type=float, default=8.0)
    p_generate.add_argument("--labels", type=int, default=16)
    p_generate.add_argument("--seed", type=int, default=0)
    p_generate.add_argument("--clustering", type=float, default=0.0)
    p_generate.add_argument("--output", "-o", required=True)

    p_extract = sub.add_parser(
        "extract-query", help="extract a random-walk query from a data graph"
    )
    p_extract.add_argument("--data", "-d", required=True)
    p_extract.add_argument("--size", "-s", type=int, required=True)
    p_extract.add_argument(
        "--density", choices=["dense", "sparse"], default=None
    )
    p_extract.add_argument("--seed", type=int, default=0)
    p_extract.add_argument("--output", "-o", required=True)

    p_datasets = sub.add_parser(
        "datasets", help="list or materialize the Table 3 stand-ins"
    )
    p_datasets.add_argument(
        "--build", metavar="KEY", default=None,
        help="build this stand-in and write it to --output",
    )
    p_datasets.add_argument("--output", "-o", default=None)

    sub.add_parser("algorithms", help="list the available presets")

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: planted-embedding cases across all "
        "presets, kernels, sessions and oracles",
    )
    p_fuzz.add_argument(
        "--cases", type=int, default=200,
        help="number of planted cases to generate (default 200)",
    )
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument(
        "--max-seconds", type=float, default=None,
        help="wall-clock box for the whole run (default unbounded)",
    )
    p_fuzz.add_argument(
        "--corpus-dir", default=None,
        help="directory for shrunk JSON repro files (and --replay input)",
    )
    p_fuzz.add_argument(
        "--replay", action="store_true",
        help="replay the repro files in --corpus-dir instead of fuzzing",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="write repro files without minimizing them first",
    )
    p_fuzz.add_argument(
        "--max-failures", type=int, default=10,
        help="stop after this many divergent cases (default 10)",
    )
    p_fuzz.add_argument(
        "--mutate", action="store_true",
        help="also run the mutation axis: seeded mutation scripts with "
        "the mutate-then-match differential after every batch",
    )

    p_serve = sub.add_parser(
        "serve",
        help="serve resident graphs over a JSON-lines TCP protocol "
        "(multi-tenant sessions, coalescing, deadlines, backpressure)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7437,
        help="TCP port (0 picks a free one and prints it)",
    )
    p_serve.add_argument(
        "--graph", "-g", action="append", default=[], metavar="NAME=PATH",
        help="resident graph to load at startup (repeatable); "
        "a bare PATH is served as 'default'",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4,
        help="matching worker threads (default 4)",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=64,
        help="max pending executions before backpressure (default 64)",
    )
    p_serve.add_argument(
        "--default-budget-ms", type=float, default=None,
        help="budget applied to requests that bring none (default none)",
    )
    p_serve.add_argument(
        "--no-coalesce", action="store_true",
        help="disable sharing one execution among identical in-flight "
        "requests",
    )
    p_serve.add_argument(
        "--algorithm", "-a", default="recommended",
        help="service-wide default preset (requests may override)",
    )
    p_serve.add_argument(
        "--query-workers", type=int, default=None,
        help="intra-query worker processes per eligible match "
        "(default: $REPRO_WORKERS, else sequential)",
    )
    return parser


def _cmd_match(args: argparse.Namespace) -> int:
    query = load_graph(args.query)
    data = load_graph(args.data)
    tracer = Tracer() if args.trace else None

    def run():
        if args.algorithm == "GLW":
            return glasgow_match(
                query, data,
                match_limit=args.match_limit, time_limit=args.time_limit,
            )
        return match(
            query, data,
            algorithm=args.algorithm,
            match_limit=args.match_limit, time_limit=args.time_limit,
            kernel=args.kernel, engine=args.engine,
            n_workers=args.workers,
        )

    if tracer is not None:
        with tracing(tracer):
            result = run()
    else:
        result = run()
    status = "solved" if result.solved else "UNSOLVED (time limit)"
    print(f"algorithm     : {result.algorithm}")
    if getattr(result, "kernel", None) is not None:
        print(f"kernel        : {result.kernel}")
    if getattr(result, "engine", None) is not None:
        print(f"engine        : {result.engine}")
    print(f"status        : {status}")
    print(f"matches       : {result.num_matches}")
    print(f"preprocessing : {result.preprocessing_ms:.3f} ms")
    print(f"enumeration   : {result.enumeration_ms:.3f} ms")
    for mapping in result.mappings[: args.show]:
        print(f"  match: {mapping}")
    if tracer is not None:
        count = tracer.write_jsonl(args.trace)
        print(f"trace         : {count} spans -> {args.trace}")
    if args.metrics_out:
        metrics = getattr(result, "metrics", None)
        payload = metrics.to_dict() if metrics is not None else {}
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"metrics       : {args.metrics_out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    query = load_graph(args.query)
    data = load_graph(args.data)
    # One session serves every preset: the data graph and kernel indexes
    # are resident once, and only the per-preset pipeline re-runs.
    session = MatchSession(
        data, kernel=args.kernel, engine=args.engine,
        prep_cache_size=0, record_cache_metrics=False,
    )
    rows = []
    for name in args.algorithms:
        if name == "GLW":
            result = glasgow_match(
                query, data,
                match_limit=args.match_limit, time_limit=args.time_limit,
                store_limit=0,
            )
        else:
            result = session.match(
                query,
                algorithm=name,
                match_limit=args.match_limit, time_limit=args.time_limit,
                store_limit=0,
            )
        rows.append(
            [
                name,
                result.num_matches,
                round(result.preprocessing_ms, 3),
                round(result.enumeration_ms, 3),
                round(result.total_ms, 3),
                "yes" if result.solved else "NO",
            ]
        )
    rows.sort(key=lambda r: r[4])
    print(
        format_table(
            ["algorithm", "matches", "prep ms", "enum ms", "total ms", "solved"],
            rows,
        )
    )
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    graph = load_graph(args.input)
    save_graph(graph, args.output)
    if args.validate:
        from pathlib import Path

        from repro.graph.store import MmapStore

        if Path(args.output).suffix == ".rgf":
            store = MmapStore(args.output, validate=True)
            print(f"validated {store!r}: checksums and CSR invariants ok")
            store.close()
        else:
            reread = load_graph(args.output)
            if reread != graph:
                print("error: text round-trip mismatch", file=sys.stderr)
                return 1
            print(f"validated {args.output}: text round-trip identical")
    print(f"wrote {graph} to {args.output}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.model == "rmat":
        graph = rmat_graph(
            args.vertices, args.degree, args.labels,
            seed=args.seed, clustering=args.clustering,
        )
    else:
        graph = erdos_renyi_graph(
            args.vertices, args.degree, args.labels, seed=args.seed
        )
    save_graph(graph, args.output)
    print(f"wrote {graph} to {args.output}")
    return 0


def _cmd_extract_query(args: argparse.Namespace) -> int:
    data = load_graph(args.data)
    query = extract_query(
        data, args.size, seed=args.seed, density=args.density
    )
    save_graph(query, args.output)
    print(f"wrote {query} (d(q)={query.average_degree:.2f}) to {args.output}")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    if args.build is not None:
        if args.output is None:
            print("error: --build requires --output", file=sys.stderr)
            return 2
        graph = load_dataset(args.build)
        save_graph(graph, args.output)
        print(f"wrote {args.build} stand-in {graph} to {args.output}")
        return 0
    rows = []
    for spec in DATASETS.values():
        rows.append(
            [
                spec.key,
                spec.full_name,
                spec.category,
                spec.num_vertices,
                spec.avg_degree,
                spec.num_labels,
                f"{spec.paper_vertices}/{spec.paper_edges}/{spec.paper_labels}",
            ]
        )
    print(
        format_table(
            ["key", "name", "category", "|V|", "d", "|Σ|", "paper |V|/|E|/|Σ|"],
            rows,
            title="Dataset stand-ins (see DESIGN.md for the substitution rules)",
        )
    )
    return 0


def _cmd_algorithms() -> int:
    rows = []
    for name in available_algorithms():
        parts = algorithm_components(name)
        rows.append(
            [
                name,
                parts["filter"],
                parts["ordering"],
                parts["lc"],
                parts["aux"],
                parts["failing_sets"],
            ]
        )
    print(
        format_table(
            ["algorithm", "filter", "ordering", "ComputeLC", "aux", "failing sets"],
            rows,
            title="Presets (components resolved from the registry)",
        )
    )
    print("GLW (Glasgow constraint-programming solver)")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.qa import replay_corpus, run_fuzz

    if args.replay:
        if args.corpus_dir is None:
            print("error: --replay requires --corpus-dir", file=sys.stderr)
            return 2
        results = replay_corpus(args.corpus_dir)
        if not results:
            print(f"no repro files in {args.corpus_dir}")
            return 0
        regressions = 0
        for path, reproduces in results:
            status = "REPRODUCES" if reproduces else "fixed"
            regressions += int(reproduces)
            print(f"{status:>10}  {path}")
        print(f"replayed {len(results)} repro(s), {regressions} regression(s)")
        return 1 if regressions else 0

    report = run_fuzz(
        cases=args.cases,
        seed=args.seed,
        max_seconds=args.max_seconds,
        corpus_dir=args.corpus_dir,
        shrink=not args.no_shrink,
        max_failures=args.max_failures,
        mutate=args.mutate,
    )
    print(report.summary())
    for divergence in report.divergences:
        print(f"  [{divergence.kind}] seed={divergence.seed}: "
              f"{divergence.detail}")
    for path in report.repro_files:
        print(f"  repro written: {path}")
    return 0 if report.clean else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import MatchServer, MatchService

    service = MatchService(
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        default_budget=(
            args.default_budget_ms / 1000.0
            if args.default_budget_ms is not None
            else None
        ),
        coalesce=not args.no_coalesce,
        algorithm=args.algorithm,
        n_workers=args.query_workers,
    )
    for spec in args.graph:
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = "default", spec
        graph = load_graph(path)
        service.add_graph(name, graph)
        print(f"resident graph {name!r}: {graph}")
    if not args.graph:
        print("no --graph given: clients must add_graph over the wire")

    async def run() -> None:
        server = MatchServer(service, host=args.host, port=args.port)
        await server.start()
        print(f"serving on {args.host}:{server.port} "
              f"(workers={args.workers}, queue={args.queue_depth}, "
              f"coalesce={not args.no_coalesce})")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.close(wait=False, cancel_inflight=True)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "match": lambda: _cmd_match(args),
        "compare": lambda: _cmd_compare(args),
        "convert": lambda: _cmd_convert(args),
        "generate": lambda: _cmd_generate(args),
        "extract-query": lambda: _cmd_extract_query(args),
        "datasets": lambda: _cmd_datasets(args),
        "algorithms": _cmd_algorithms,
        "fuzz": lambda: _cmd_fuzz(args),
        "serve": lambda: _cmd_serve(args),
    }
    return handlers[args.command]()


if __name__ == "__main__":
    sys.exit(main())

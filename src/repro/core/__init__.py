"""Core: composed algorithms and the public matching API.

This is the layer a downstream user touches: ``match(query, data,
algorithm="GQLfs")`` runs a full Algorithm 1 pipeline; the preset registry
covers every configuration of the paper's study.
"""

from repro.core.algorithms import (
    OPTIMIZED_NAMES,
    ORIGINAL_NAMES,
    available_algorithms,
    get_algorithm,
    recommended_spec,
)
from repro.core.api import count_matches, has_match, match
from repro.core.result import MatchResult
from repro.core.spec import AlgorithmSpec
from repro.core.verify import explain_embedding_failure, verify_embedding

__all__ = [
    "match",
    "verify_embedding",
    "explain_embedding_failure",
    "count_matches",
    "has_match",
    "MatchResult",
    "AlgorithmSpec",
    "available_algorithms",
    "get_algorithm",
    "recommended_spec",
    "ORIGINAL_NAMES",
    "OPTIMIZED_NAMES",
]

"""Core: composed algorithms and the public matching API.

This is the layer a downstream user touches: ``match(query, data,
algorithm="GQLfs")`` runs a full Algorithm 1 pipeline; the preset tables
cover every configuration of the paper's study; a
:class:`~repro.core.session.MatchSession` serves many queries against one
resident data graph with compiled-plan and preprocessing reuse.
"""

from repro.core.algorithms import (
    OPTIMIZED_NAMES,
    ORIGINAL_NAMES,
    algorithm_components,
    available_algorithms,
    get_algorithm,
    recommended_spec,
)
from repro.core.api import count_matches, has_match, match
from repro.core.plan import MatchPlan, PreparedQuery, compile_plan, run_plan
from repro.core.registry import (
    FILTERS,
    LOCAL_CANDIDATES,
    ORDERINGS,
    PresetDef,
    register_algorithm,
)
from repro.core.result import MatchResult
from repro.core.session import MatchSession
from repro.core.spec import AlgorithmSpec
from repro.core.verify import explain_embedding_failure, verify_embedding

__all__ = [
    "match",
    "verify_embedding",
    "explain_embedding_failure",
    "count_matches",
    "has_match",
    "MatchResult",
    "MatchSession",
    "MatchPlan",
    "PreparedQuery",
    "compile_plan",
    "run_plan",
    "AlgorithmSpec",
    "PresetDef",
    "register_algorithm",
    "FILTERS",
    "ORDERINGS",
    "LOCAL_CANDIDATES",
    "available_algorithms",
    "algorithm_components",
    "get_algorithm",
    "recommended_spec",
    "ORIGINAL_NAMES",
    "OPTIMIZED_NAMES",
]

"""The public matching API: run one algorithm preset end to end.

``match()`` executes the full Algorithm 1 pipeline — filter, auxiliary
structure, matching order, enumeration — with the paper's two limits
(match cap, wall-clock budget) and returns a
:class:`~repro.core.result.MatchResult` carrying the split timings the
study reports.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.algorithms import resolve
from repro.core.result import MatchResult
from repro.core.spec import AlgorithmSpec
from repro.enumeration.engine import BacktrackingEngine
from repro.enumeration.local_candidates import IntersectionLC
from repro.errors import InvalidQueryError
from repro.filtering.auxiliary import AuxiliaryStructure
from repro.graph.graph import Graph
from repro.graph.ops import connected
from repro.obs import Metrics, collecting, span
from repro.ordering.dpiso import DPisoOrdering
from repro.utils.kernels import KernelBackend, get_kernel
from repro.utils.timer import Timer

__all__ = ["match", "count_matches", "has_match"]

AlgorithmLike = Union[str, AlgorithmSpec]
KernelLike = Union[str, KernelBackend]


def match(
    query: Graph,
    data: Graph,
    algorithm: AlgorithmLike = "recommended",
    match_limit: Optional[int] = 100_000,
    time_limit: Optional[float] = None,
    store_limit: int = 10_000,
    validate: bool = True,
    kernel: Optional[KernelLike] = None,
) -> MatchResult:
    """Find matches of ``query`` in ``data``.

    Parameters
    ----------
    query, data:
        Labeled undirected graphs. The query must be connected with at
        least 3 vertices (the paper's problem setting).
    algorithm:
        A preset name (see
        :func:`repro.core.algorithms.available_algorithms`), the string
        ``"recommended"`` (the paper's Section 6 composition, resolved per
        query/data pair), or an explicit :class:`AlgorithmSpec`.
    match_limit:
        Stop after this many matches (paper default 10^5); ``None`` finds
        all.
    time_limit:
        Wall-clock budget in seconds for the enumeration phase; on expiry
        the result has ``solved=False`` (the paper's unsolved query).
    store_limit:
        Maximum embeddings retained in the result (counting continues).
    validate:
        Check the query's preconditions up front (disable in tight loops).
    kernel:
        Intersection backend for the Algorithm 5 hot path: a registry name
        (``"scalar"``, ``"numpy"``, ``"bitset"``, ``"qfilter"``,
        ``"auto"``) or a :class:`~repro.utils.kernels.KernelBackend`
        instance. ``None`` defers to the ``REPRO_KERNEL`` environment
        variable, falling back to the auto heuristic. An explicit argument
        always wins; with ``None``, a spec constructed with its own
        explicit kernel keeps it. Ignored (and recorded as ``None`` on the
        result) when the algorithm's ComputeLC is not Algorithm 5.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> data = Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> triangle_free = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
    >>> match(triangle_free, data, algorithm="GQL").num_matches
    4
    """
    if validate:
        _validate_query(query)

    spec = resolve(algorithm, query, data)
    metrics = Metrics()

    # The whole pipeline runs with `metrics` installed as the ambient
    # sink, so filters and orderings report counters without threading a
    # parameter through every signature; `span()` is a no-op unless the
    # caller installed a tracer (see repro.obs).
    with collecting(metrics), span("match", algorithm=spec.name):
        with Timer() as prep_timer:
            # Filtering phase: candidate generation plus the auxiliary
            # structure built from it (the paper accounts both to the
            # filtering component of preprocessing).
            with span(
                "filter", filter=spec.filter.name if spec.filter else None
            ), Timer() as filter_timer:
                candidates = spec.filter.run(query, data) if spec.filter else None

                tree = None
                if spec.aux_scope == "tree":
                    assert spec.tree_source is not None, "tree scope requires tree_source"
                    tree = spec.tree_source(query, data)

                auxiliary = None
                if spec.aux_scope != "none":
                    assert candidates is not None, "auxiliary structure needs candidates"
                    with span("filter.auxiliary", scope=spec.aux_scope):
                        auxiliary = AuxiliaryStructure.build(
                            query, data, candidates, scope=spec.aux_scope, tree=tree
                        )
            metrics.record_phase("filter", filter_timer.elapsed)

            with span("order", ordering=spec.ordering.name), Timer() as order_timer:
                adaptive_state = None
                order = None
                if spec.adaptive:
                    assert candidates is not None, "adaptive mode needs candidates"
                    assert isinstance(spec.ordering, DPisoOrdering)
                    adaptive_state = spec.ordering.adaptive_state(
                        query, data, candidates
                    )
                else:
                    order = spec.ordering.order(query, data, candidates)
            metrics.record_phase("order", order_timer.elapsed)

            # Resolve the intersection backend for the Algorithm 5 hot path.
            # A spec constructed with an explicit kernel keeps it; the stock
            # default is swapped for the session backend (env var / auto
            # heuristic / the explicit `kernel` argument).
            lc = spec.lc
            kernel_used = None
            if isinstance(lc, IntersectionLC) and (
                kernel is not None or lc.uses_default_kernel
            ):
                with span("kernel.resolve"):
                    backend = get_kernel(kernel, data=data, candidates=candidates)
                lc = IntersectionLC(kernel=backend)
                kernel_used = backend.name

        engine = BacktrackingEngine(
            lc,
            use_failing_sets=spec.failing_sets,
            adaptive=adaptive_state,
        )
        with span("enumerate", kernel=kernel_used) as enum_span:
            outcome = engine.run(
                query,
                data,
                candidates,
                auxiliary,
                order,
                tree_parent=tree.parent if tree is not None else None,
                match_limit=match_limit,
                time_limit=time_limit,
                store_limit=store_limit,
            )
            enum_span.annotate(
                num_matches=outcome.num_matches, solved=outcome.solved
            )
        metrics.record_phase("enumerate", outcome.elapsed)
        metrics.record_enumeration(outcome.stats)

    memory = 0
    candidate_average = None
    if candidates is not None:
        memory += candidates.memory_bytes
        candidate_average = candidates.average_size
    if auxiliary is not None:
        memory += auxiliary.memory_bytes

    return MatchResult(
        algorithm=spec.name,
        num_matches=outcome.num_matches,
        solved=outcome.solved,
        embeddings=outcome.embeddings,
        order=order,
        kernel=kernel_used,
        preprocessing_seconds=prep_timer.elapsed,
        enumeration_seconds=outcome.elapsed,
        candidate_average=candidate_average,
        memory_bytes=memory,
        stats=outcome.stats,
        metrics=metrics,
    )


def count_matches(
    query: Graph,
    data: Graph,
    algorithm: AlgorithmLike = "recommended",
    match_limit: Optional[int] = None,
    time_limit: Optional[float] = None,
    kernel: Optional[KernelLike] = None,
) -> int:
    """Number of matches (all of them by default); stores no embeddings."""
    return match(
        query,
        data,
        algorithm=algorithm,
        match_limit=match_limit,
        time_limit=time_limit,
        store_limit=0,
        kernel=kernel,
    ).num_matches


def has_match(
    query: Graph,
    data: Graph,
    algorithm: AlgorithmLike = "recommended",
    time_limit: Optional[float] = None,
    kernel: Optional[KernelLike] = None,
) -> bool:
    """Whether at least one match exists (stops at the first)."""
    return (
        match(
            query,
            data,
            algorithm=algorithm,
            match_limit=1,
            time_limit=time_limit,
            store_limit=0,
            kernel=kernel,
        ).num_matches
        > 0
    )


def _validate_query(query: Graph) -> None:
    if query.num_vertices < 3:
        raise InvalidQueryError(
            "queries must have at least 3 vertices (single vertices and "
            "edges are trivial; see the paper's problem definition)"
        )
    if not connected(query):
        raise InvalidQueryError("query graphs must be connected")

"""The public matching API: run one algorithm preset end to end.

``match()`` executes the full Algorithm 1 pipeline — filter, auxiliary
structure, matching order, enumeration — with the paper's two limits
(match cap, wall-clock budget) and returns a
:class:`~repro.core.result.MatchResult` carrying the split timings the
study reports.

Since the query-compilation refactor, ``match()`` is a thin back-compat
wrapper: it builds one throwaway :class:`~repro.core.session.MatchSession`
(caches off, cache counters suppressed) and runs the query through it, so
results stay byte-identical to the historical one-shot pipeline. Callers
issuing many queries against one data graph should hold a
:class:`~repro.core.session.MatchSession` instead and get plan caching
and preprocessing reuse for free.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.core.result import MatchResult
from repro.core.session import MatchSession
from repro.core.spec import AlgorithmSpec
from repro.graph.graph import Graph
from repro.utils.kernels import KernelBackend

__all__ = ["match", "count_matches", "has_match"]

AlgorithmLike = Union[str, AlgorithmSpec]
KernelLike = Union[str, KernelBackend]


def match(
    query: Graph,
    data: Graph,
    algorithm: AlgorithmLike = "recommended",
    match_limit: Optional[int] = 100_000,
    time_limit: Optional[float] = None,
    store_limit: int = 10_000,
    validate: bool = True,
    kernel: Optional[KernelLike] = None,
    engine: Optional[str] = None,
    cancel: Optional[Callable[[], bool]] = None,
    n_workers: Optional[int] = None,
) -> MatchResult:
    """Find matches of ``query`` in ``data``.

    Parameters
    ----------
    query, data:
        Labeled undirected graphs. The query must be connected with at
        least 3 vertices (the paper's problem setting).
    algorithm:
        A preset name (see
        :func:`repro.core.algorithms.available_algorithms`), the string
        ``"recommended"`` (the paper's Section 6 composition, resolved per
        query/data pair), or an explicit :class:`AlgorithmSpec`.
    match_limit:
        Stop after this many matches (paper default 10^5); ``None`` finds
        all.
    time_limit:
        Wall-clock budget in seconds for the enumeration phase; on expiry
        the result has ``solved=False`` (the paper's unsolved query).
    store_limit:
        Maximum embeddings retained in the result (counting continues).
    validate:
        Check the query's preconditions up front (disable in tight loops).
    kernel:
        Intersection backend for the Algorithm 5 hot path: a registry name
        (``"scalar"``, ``"numpy"``, ``"bitset"``, ``"qfilter"``,
        ``"auto"``) or a :class:`~repro.utils.kernels.KernelBackend`
        instance. ``None`` defers to the ``REPRO_KERNEL`` environment
        variable, falling back to the auto heuristic. An explicit argument
        always wins; with ``None``, a spec constructed with its own
        explicit kernel keeps it. Ignored (and recorded as ``None`` on the
        result) when the algorithm's ComputeLC is not Algorithm 5.
    engine:
        Enumeration engine by registry name (``"iterative"`` is the
        default and the only engine registered out of the box; the
        retired ``"recursive"`` baseline needs the opt-in described in
        :mod:`repro.enumeration.engines`). ``None`` defers to the
        ``REPRO_ENGINE`` environment variable, falling back to the
        registry default. The resolved name is recorded as
        ``MatchResult.engine``.
    cancel:
        Optional zero-argument callable polled by the engine at the
        deadline stride; once it returns True the enumeration stops and
        the result reports ``solved=False`` (cooperative preemption —
        see :mod:`repro.serve`).
    n_workers:
        Intra-query parallelism (see :mod:`repro.parallel`): eligible
        queries split their root-candidate set across this many worker
        processes attached to a shared-memory copy of ``data``, with
        results byte-identical to sequential execution. ``None`` defers
        to the ``REPRO_WORKERS`` environment variable (absent →
        sequential, i.e. 0). One-shot calls publish and tear down the
        shared graph every time — hold a
        :class:`~repro.core.session.MatchSession` to amortize that.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> data = Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> triangle_free = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
    >>> match(triangle_free, data, algorithm="GQL").num_matches
    4
    """
    session = MatchSession(
        data,
        algorithm=algorithm,
        kernel=kernel,
        engine=engine,
        plan_cache_size=0,
        prep_cache_size=0,
        record_cache_metrics=False,
        n_workers=n_workers,
    )
    try:
        return session.match(
            query,
            match_limit=match_limit,
            time_limit=time_limit,
            store_limit=store_limit,
            validate=validate,
            cancel=cancel,
        )
    finally:
        # Throwaway session: release its shared-memory segment (if a
        # parallel match published one) deterministically, not at gc.
        session.close()


def count_matches(
    query: Graph,
    data: Graph,
    algorithm: AlgorithmLike = "recommended",
    match_limit: Optional[int] = None,
    time_limit: Optional[float] = None,
    kernel: Optional[KernelLike] = None,
    engine: Optional[str] = None,
    store_limit: int = 0,
    validate: bool = True,
    n_workers: Optional[int] = None,
) -> int:
    """Number of matches (all of them by default); stores no embeddings.

    ``validate`` and ``store_limit`` pass through to :func:`match` —
    tight loops can skip validation here exactly as they can on
    ``match()`` itself.
    """
    return match(
        query,
        data,
        algorithm=algorithm,
        match_limit=match_limit,
        time_limit=time_limit,
        store_limit=store_limit,
        validate=validate,
        kernel=kernel,
        engine=engine,
        n_workers=n_workers,
    ).num_matches


def has_match(
    query: Graph,
    data: Graph,
    algorithm: AlgorithmLike = "recommended",
    time_limit: Optional[float] = None,
    kernel: Optional[KernelLike] = None,
    engine: Optional[str] = None,
    store_limit: int = 0,
    validate: bool = True,
    n_workers: Optional[int] = None,
) -> bool:
    """Whether at least one match exists (stops at the first).

    ``validate`` and ``store_limit`` pass through to :func:`match`.
    """
    return (
        match(
            query,
            data,
            algorithm=algorithm,
            match_limit=1,
            time_limit=time_limit,
            store_limit=store_limit,
            validate=validate,
            kernel=kernel,
            engine=engine,
            n_workers=n_workers,
        ).num_matches
        > 0
    )

"""Query compilation: the immutable MatchPlan and its executor.

The paper's evaluation shape — and the production shape this repository
grows toward — is *many queries against one resident data graph*. That
split is made explicit here:

* :func:`compile_plan` resolves everything about a ``(algorithm, query,
  data)`` triple that does **not** depend on the query's vertex
  numbering: the algorithm spec, the kernel policy and the aux-scope
  policy. The result is an immutable :class:`MatchPlan`, cacheable by the
  order-invariant query fingerprint
  (:func:`repro.graph.fingerprint.query_fingerprint`).
* :func:`run_plan` executes a plan: filtering, auxiliary structure,
  ordering, kernel resolution, enumeration — the full Algorithm 1
  pipeline. The per-query artifacts it builds (candidates, auxiliary
  adjacency, matching order, the resolved kernel with its encode caches)
  come back as a :class:`PreparedQuery`, which a
  :class:`~repro.core.session.MatchSession` may hand back on a later call
  with the *identical* query to skip the whole preprocessing phase.

Cache-soundness contract: a plan's contents may only depend on
fingerprint-stable query features (``num_vertices``, ``num_edges``,
label/degree structure) plus the data graph — two queries with equal
fingerprints must compile to equal plans. A ``PreparedQuery`` is bound to
the exact query graph (vertex numbering included) and is only reusable
under exact :class:`~repro.graph.graph.Graph` equality.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, List, Optional, Tuple, Union

from repro.core.algorithms import resolve
from repro.core.result import MatchResult
from repro.core.spec import AlgorithmSpec
from repro.enumeration.engines import create_engine, resolve_engine_name
from repro.enumeration.local_candidates import IntersectionLC
from repro.errors import InvalidQueryError
from repro.filtering.auxiliary import AuxiliaryStructure
from repro.graph.fingerprint import query_fingerprint
from repro.graph.graph import Graph
from repro.graph.ops import connected
from repro.obs import Metrics, collecting, span
from repro.ordering.dpiso import DPisoOrdering
from repro.utils.kernels import KernelBackend, get_kernel
from repro.utils.timer import Timer

__all__ = [
    "MatchPlan",
    "PreparedQuery",
    "LRUCache",
    "compile_plan",
    "run_plan",
    "validate_query",
]

AlgorithmLike = Union[str, AlgorithmSpec]
KernelLike = Union[str, KernelBackend]


def validate_query(query: Graph) -> None:
    """The paper's query preconditions: connected, at least 3 vertices."""
    if query.num_vertices < 3:
        raise InvalidQueryError(
            "queries must have at least 3 vertices (single vertices and "
            "edges are trivial; see the paper's problem definition)"
        )
    if not connected(query):
        raise InvalidQueryError("query graphs must be connected")


@dataclass(frozen=True)
class MatchPlan:
    """A compiled query: resolved spec + kernel policy + aux-scope policy.

    Immutable and reusable across any query sharing the fingerprint; the
    per-query artifacts (candidates, order, …) live in
    :class:`PreparedQuery` instead.
    """

    #: The fully resolved algorithm composition.
    algorithm: AlgorithmSpec
    #: Order-invariant fingerprint of the query the plan was compiled for.
    fingerprint: str
    #: The kernel request this plan was compiled under (name, backend
    #: instance or ``None`` for the env/auto default) — resolution to a
    #: concrete backend happens per prepared query, where candidate
    #: density is known.
    kernel_policy: Optional[KernelLike]
    #: Which query edges the auxiliary structure will materialize.
    aux_scope: str
    query_vertices: int
    query_edges: int
    #: The enumeration-engine request this plan was compiled under
    #: (registry name or ``None`` for the env/registry default) —
    #: resolution to a concrete engine happens at :func:`run_plan` time,
    #: mirroring the kernel policy.
    engine_policy: Optional[str] = None

    def __repr__(self) -> str:
        return (
            f"MatchPlan({self.algorithm.name}, {self.fingerprint}, "
            f"aux={self.aux_scope!r})"
        )


@dataclass
class PreparedQuery:
    """Per-query preprocessing artifacts, reusable for the exact query.

    Everything here is read-only during enumeration (candidate arrays,
    auxiliary adjacency and the matching order are never mutated by the
    engine), so one ``PreparedQuery`` can serve any number of runs. The
    resolved kernel instance rides along: identity-keyed encode caches
    (bitset/QFilter layouts over the auxiliary arrays) stay warm across
    repeats — the "build the index once" amortization of CNI-style
    data-side indexing.
    """

    candidates: Any = None
    tree: Any = None
    auxiliary: Optional[AuxiliaryStructure] = None
    order: Optional[List[int]] = None
    adaptive_state: Any = None
    lc: Any = None
    kernel_used: Optional[str] = None
    preprocessing_seconds: float = 0.0


class LRUCache:
    """A tiny thread-safe LRU map with hit/miss counters.

    ``capacity=None`` means unbounded; ``capacity=0`` disables the cache
    entirely (every :meth:`get` is a miss and :meth:`put` is a no-op).

    Every operation holds an internal lock: the serving tier shares one
    :class:`~repro.core.session.MatchSession` (and therefore one plan and
    one prep cache) across a worker pool, and the unguarded
    ``hits``/``misses`` read-modify-write plus the ``move_to_end`` /
    eviction reordering are exactly the races the concurrency stress
    suite surfaced. Concurrent misses on one key may both compute and
    both :meth:`put`; the entries are equal by construction, so last
    write wins harmlessly.
    """

    def __init__(self, capacity: Optional[int] = 128) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError("cache capacity must be >= 0 (or None)")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            if self.capacity == 0:
                self.misses += 1
                return None
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if self.capacity == 0:
                return
            self._entries[key] = value
            self._entries.move_to_end(key)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def info(self) -> dict:
        """Counters + occupancy, in the shape ``cache_info`` reports."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "capacity": self.capacity,
            }


def compile_plan(
    algorithm: AlgorithmLike,
    query: Graph,
    data: Graph,
    kernel: Optional[KernelLike] = None,
    fingerprint: Optional[str] = None,
    engine: Optional[str] = None,
) -> MatchPlan:
    """Compile ``(algorithm, query, data)`` into an immutable plan.

    ``fingerprint`` may be passed in when the caller already computed it
    for a cache probe. Only fingerprint-stable query features are
    consulted (``"recommended"`` resolves on ``num_vertices`` and data
    density), which is the invariant that makes fingerprint-keyed plan
    caching sound.
    """
    spec = resolve(algorithm, query, data)
    return MatchPlan(
        algorithm=spec,
        fingerprint=fingerprint or query_fingerprint(query),
        kernel_policy=kernel,
        aux_scope=spec.aux_scope,
        query_vertices=query.num_vertices,
        query_edges=query.num_edges,
        engine_policy=engine,
    )


def prepare_query(
    plan: MatchPlan,
    query: Graph,
    data: Graph,
    metrics: Metrics,
) -> PreparedQuery:
    """Run the preprocessing phases of ``plan`` for one concrete query.

    Filtering, auxiliary-structure construction, ordering and kernel
    resolution — everything Algorithm 1 does before enumeration. The
    caller owns metrics installation; phase timings are recorded on
    ``metrics`` exactly as the one-shot pipeline always did.
    """
    spec = plan.algorithm
    prepared = PreparedQuery()
    with Timer() as prep_timer:
        # Filtering phase: candidate generation plus the auxiliary
        # structure built from it (the paper accounts both to the
        # filtering component of preprocessing).
        with span(
            "filter", filter=spec.filter.name if spec.filter else None
        ), Timer() as filter_timer:
            candidates = spec.filter.run(query, data) if spec.filter else None

            tree = None
            if spec.aux_scope == "tree":
                assert spec.tree_source is not None, "tree scope requires tree_source"
                tree = spec.tree_source(query, data)

            auxiliary = None
            if spec.aux_scope != "none":
                assert candidates is not None, "auxiliary structure needs candidates"
                with span("filter.auxiliary", scope=spec.aux_scope):
                    auxiliary = AuxiliaryStructure.build(
                        query, data, candidates, scope=spec.aux_scope, tree=tree
                    )
        metrics.record_phase("filter", filter_timer.elapsed)

        with span("order", ordering=spec.ordering.name), Timer() as order_timer:
            adaptive_state = None
            order = None
            if spec.adaptive:
                assert candidates is not None, "adaptive mode needs candidates"
                assert isinstance(spec.ordering, DPisoOrdering)
                adaptive_state = spec.ordering.adaptive_state(
                    query, data, candidates
                )
            else:
                order = spec.ordering.order(query, data, candidates)
        metrics.record_phase("order", order_timer.elapsed)

        # Resolve the intersection backend for the Algorithm 5 hot path.
        # A spec constructed with an explicit kernel keeps it; the stock
        # default is swapped for the plan's kernel policy (env var / auto
        # heuristic / an explicit request).
        lc = spec.lc
        kernel_used = None
        kernel = plan.kernel_policy
        if isinstance(lc, IntersectionLC) and (
            kernel is not None or lc.uses_default_kernel
        ):
            with span("kernel.resolve"):
                backend = get_kernel(kernel, data=data, candidates=candidates)
            lc = IntersectionLC(kernel=backend)
            kernel_used = backend.name

    prepared.candidates = candidates
    prepared.tree = tree
    prepared.auxiliary = auxiliary
    prepared.order = order
    prepared.adaptive_state = adaptive_state
    prepared.lc = lc
    prepared.kernel_used = kernel_used
    prepared.preprocessing_seconds = prep_timer.elapsed
    return prepared


def run_plan(
    plan: MatchPlan,
    query: Graph,
    data: Graph,
    prepared: Optional[PreparedQuery] = None,
    match_limit: Optional[int] = 100_000,
    time_limit: Optional[float] = None,
    store_limit: int = 10_000,
    metrics: Optional[Metrics] = None,
    cancel: Optional[Callable[[], bool]] = None,
    root_window: Optional[Tuple[int, int]] = None,
    parallel: Optional[Any] = None,
) -> Tuple[MatchResult, PreparedQuery]:
    """Execute a compiled plan on one query; returns (result, prepared).

    When ``prepared`` is given (a previous run's artifacts for the *exact*
    same query), the preprocessing phases are skipped entirely and only
    enumeration runs — the compile-once, run-many path. Otherwise the
    artifacts are built and returned for the caller to cache.

    ``cancel`` is an optional zero-argument callable polled by the engine
    at the same stride as the time budget; once it returns True the
    enumeration stops between leaf batches and the result reports
    ``solved=False``, exactly like a deadline expiry. The serving tier
    uses this to abort queries whose request deadline passed or whose
    server is shutting down.

    ``root_window=(lo, hi)`` restricts enumeration to a slice of the root
    frame's local candidates — the partition primitive
    :mod:`repro.parallel` workers run chunks with (iterative engine only).

    ``parallel`` is an optional
    :class:`~repro.parallel.executor.ParallelContext`; when the plan is
    eligible (static order, materialized candidates, iterative engine),
    the enumeration phase is fanned out across its worker pool and the
    merged outcome — byte-identical to the sequential run — takes the
    place of ``engine.run``. Everything around enumeration (preparation,
    spans, counters, result construction) is shared with the sequential
    path.
    """
    spec = plan.algorithm
    if metrics is None:
        metrics = Metrics()

    # The whole pipeline runs with `metrics` installed as the ambient
    # sink, so filters and orderings report counters without threading a
    # parameter through every signature; `span()` is a no-op unless the
    # caller installed a tracer (see repro.obs).
    with collecting(metrics), span("match", algorithm=spec.name):
        if prepared is None:
            prepared = prepare_query(plan, query, data, metrics)
            preprocessing_seconds = prepared.preprocessing_seconds
        else:
            preprocessing_seconds = 0.0

        # Resolve the engine per run (the env fallback may change between
        # calls), the same late-binding the kernel policy gets.
        engine_name = resolve_engine_name(plan.engine_policy)
        use_parallel = (
            parallel is not None
            and root_window is None
            and parallel.eligible(plan, prepared, engine_name)
        )
        run_kwargs = {}
        if cancel is not None:
            # Keyword-only and omitted when unused, so engines registered
            # before the cancellation protocol keep working untouched.
            run_kwargs["cancel"] = cancel
        if root_window is not None:
            # Partition primitive for repro.parallel workers; only the
            # iterative engine understands root windows, and only workers
            # (which pin the engine) pass this.
            run_kwargs["root_window"] = root_window
        with span(
            "enumerate", kernel=prepared.kernel_used, engine=engine_name
        ) as enum_span:
            outcome = None
            if use_parallel:
                from repro.parallel.pool import ParallelUnavailable

                try:
                    outcome = parallel.execute(
                        plan,
                        query,
                        data,
                        prepared,
                        match_limit=match_limit,
                        time_limit=time_limit,
                        store_limit=store_limit,
                        cancel=cancel,
                        metrics=metrics,
                    )
                except ParallelUnavailable:
                    # Pool broken or saturated: the sequential engine is
                    # always available, and results are identical.
                    outcome = None
            if outcome is None:
                engine = create_engine(
                    engine_name,
                    prepared.lc,
                    use_failing_sets=spec.failing_sets,
                    adaptive=prepared.adaptive_state,
                )
                outcome = engine.run(
                    query,
                    data,
                    prepared.candidates,
                    prepared.auxiliary,
                    prepared.order,
                    tree_parent=(
                        prepared.tree.parent
                        if prepared.tree is not None
                        else None
                    ),
                    match_limit=match_limit,
                    time_limit=time_limit,
                    store_limit=store_limit,
                    **run_kwargs,
                )
            enum_span.annotate(
                num_matches=outcome.num_matches, solved=outcome.solved
            )
        metrics.record_phase("enumerate", outcome.elapsed)
        metrics.record_enumeration(outcome.stats)

    memory = 0
    candidate_average = None
    if prepared.candidates is not None:
        memory += prepared.candidates.memory_bytes
        candidate_average = prepared.candidates.average_size
    if prepared.auxiliary is not None:
        memory += prepared.auxiliary.memory_bytes

    result = MatchResult(
        algorithm=spec.name,
        num_matches=outcome.num_matches,
        solved=outcome.solved,
        embeddings=outcome.embeddings,
        # A copy: the prepared order may be cached and served to later
        # runs, so the result must not alias it.
        order=list(prepared.order) if prepared.order is not None else None,
        kernel=prepared.kernel_used,
        engine=engine_name,
        preprocessing_seconds=preprocessing_seconds,
        enumeration_seconds=outcome.elapsed,
        candidate_average=candidate_average,
        memory_bytes=memory,
        stats=outcome.stats,
        metrics=metrics,
    )
    return result, prepared

"""Component registries: filters, orderings and ComputeLC methods by name.

The paper's framework thesis is that an algorithm *is* a combination of
independently chosen components (Algorithm 1). This module makes that
combination data: each component family lives in a
:class:`ComponentRegistry`, presets are declarative :class:`PresetDef`
rows referencing components by name, and :func:`build_spec` wires a row
into a runnable :class:`~repro.core.spec.AlgorithmSpec`. The preset
tables in :mod:`repro.core.algorithms` and the ``repro algorithms`` CLI
breakdown both read from here, so they cannot drift apart — and user
code can register new components and presets without touching the core:

    from repro.core.registry import FILTERS, register_algorithm, PresetDef

    FILTERS.register("mine", MyFilter)
    register_algorithm(PresetDef(
        name="MINE", filter="mine", ordering="RI", lc="ALG5",
        aux_scope="all",
    ))
    match(query, data, algorithm="MINE")
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Generic, List, Optional, TypeVar

from repro.core.spec import AlgorithmSpec
from repro.enumeration.local_candidates import (
    CandidateScanLC,
    IntersectionLC,
    LocalCandidateMethod,
    NeighborScanLC,
    TreeAdjacencyLC,
    VF2ppLC,
)
from repro.errors import ConfigurationError
from repro.filtering import (
    CECIFilter,
    CFLFilter,
    DPisoFilter,
    GraphQLFilter,
    LDFFilter,
    NLFFilter,
)
from repro.filtering.base import Filter
from repro.filtering.steady import SteadyFilter
from repro.graph.graph import Graph
from repro.graph.ops import BFSTree
from repro.ordering import (
    CECIOrdering,
    CFLOrdering,
    DPisoOrdering,
    GraphQLOrdering,
    QuickSIOrdering,
    RIOrdering,
    VF2ppOrdering,
)
from repro.ordering.base import Ordering

__all__ = [
    "ComponentRegistry",
    "FILTERS",
    "ORDERINGS",
    "LOCAL_CANDIDATES",
    "TREE_SOURCES",
    "PresetDef",
    "build_spec",
    "describe_preset",
    "register_algorithm",
    "registered_algorithms",
    "get_registered_algorithm",
]

T = TypeVar("T")


class ComponentRegistry(Generic[T]):
    """Name → factory table for one component family.

    Factories (not instances) are stored so every built spec gets fresh
    component objects — some components carry per-run caches.
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._factories: Dict[str, Callable[[], T]] = {}

    def register(self, name: str, factory: Callable[[], T]) -> None:
        """Register ``factory`` under ``name`` (replacing any previous one)."""
        self._factories[name] = factory

    def create(self, name: str) -> T:
        """Instantiate the component registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories))
            raise ConfigurationError(
                f"unknown {self._kind} {name!r}; available: {known}"
            ) from None
        return factory()

    def names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __repr__(self) -> str:
        return f"ComponentRegistry({self._kind!r}, {len(self._factories)} entries)"


#: Candidate-generation methods (Section 3.1).
FILTERS: ComponentRegistry[Filter] = ComponentRegistry("filter")
for _factory in (
    LDFFilter,
    NLFFilter,
    GraphQLFilter,
    CFLFilter,
    CECIFilter,
    DPisoFilter,
    SteadyFilter,
):
    FILTERS.register(_factory.name, _factory)

#: Matching-order methods (Section 3.2).
ORDERINGS: ComponentRegistry[Ordering] = ComponentRegistry("ordering")
for _factory in (
    QuickSIOrdering,
    GraphQLOrdering,
    CFLOrdering,
    CECIOrdering,
    DPisoOrdering,
    RIOrdering,
    VF2ppOrdering,
):
    ORDERINGS.register(_factory.name, _factory)

#: ComputeLC strategies (Algorithms 2–5, Section 3.3).
LOCAL_CANDIDATES: ComponentRegistry[LocalCandidateMethod] = ComponentRegistry(
    "ComputeLC method"
)
for _factory in (
    NeighborScanLC,
    VF2ppLC,
    CandidateScanLC,
    TreeAdjacencyLC,
    IntersectionLC,
):
    LOCAL_CANDIDATES.register(_factory.name, _factory)

#: BFS-tree builders for ``aux_scope="tree"`` presets (Algorithm 4's q_t).
TREE_SOURCES: ComponentRegistry[Callable[[Graph, Graph], BFSTree]] = (
    ComponentRegistry("tree source")
)
TREE_SOURCES.register("CFL", lambda: CFLFilter.build_tree)


@dataclass(frozen=True)
class PresetDef:
    """One declarative preset row: components by registry name.

    ``filter`` may be ``None`` for direct-enumeration algorithms;
    ``tree_source`` names a :data:`TREE_SOURCES` entry and is required
    exactly when ``aux_scope="tree"``.
    """

    name: str
    filter: Optional[str]
    ordering: str
    lc: str
    aux_scope: str = "none"
    adaptive: bool = False
    failing_sets: bool = False
    tree_source: Optional[str] = None

    def with_failing_sets(self, name: Optional[str] = None) -> "PresetDef":
        """The failing-sets variant of this row (default suffix ``fs``)."""
        return replace(
            self, failing_sets=True, name=name or (self.name + "fs")
        )


def build_spec(preset: PresetDef) -> AlgorithmSpec:
    """Wire a preset row into a runnable :class:`AlgorithmSpec`."""
    if preset.aux_scope == "tree" and preset.tree_source is None:
        raise ConfigurationError(
            f"preset {preset.name!r} has aux_scope='tree' but no tree_source"
        )
    return AlgorithmSpec(
        name=preset.name,
        filter=FILTERS.create(preset.filter) if preset.filter else None,
        ordering=ORDERINGS.create(preset.ordering),
        lc=LOCAL_CANDIDATES.create(preset.lc),
        aux_scope=preset.aux_scope,  # type: ignore[arg-type]
        adaptive=preset.adaptive,
        failing_sets=preset.failing_sets,
        tree_source=(
            TREE_SOURCES.create(preset.tree_source)
            if preset.tree_source
            else None
        ),
    )


def describe_preset(preset: PresetDef) -> Dict[str, str]:
    """Human-readable component breakdown of one preset row.

    Sourced from the same table :func:`build_spec` consumes, so the CLI
    listing can never drift from what actually runs.
    """
    return {
        "name": preset.name,
        "filter": preset.filter or "-",
        "ordering": preset.ordering,
        "lc": preset.lc,
        "aux": preset.aux_scope,
        "adaptive": "yes" if preset.adaptive else "-",
        "failing_sets": "yes" if preset.failing_sets else "-",
    }


# ----------------------------------------------------------------------
# User-registered algorithms
# ----------------------------------------------------------------------

_USER_PRESETS: Dict[str, PresetDef] = {}


def register_algorithm(preset: PresetDef) -> None:
    """Register a user preset, resolvable via ``match(algorithm=name)``.

    Component names are checked eagerly so a typo fails at registration,
    not at first use.
    """
    if preset.filter is not None and preset.filter not in FILTERS:
        raise ConfigurationError(
            f"preset {preset.name!r} references unknown filter {preset.filter!r}"
        )
    if preset.ordering not in ORDERINGS:
        raise ConfigurationError(
            f"preset {preset.name!r} references unknown ordering "
            f"{preset.ordering!r}"
        )
    if preset.lc not in LOCAL_CANDIDATES:
        raise ConfigurationError(
            f"preset {preset.name!r} references unknown ComputeLC {preset.lc!r}"
        )
    if preset.tree_source is not None and preset.tree_source not in TREE_SOURCES:
        raise ConfigurationError(
            f"preset {preset.name!r} references unknown tree source "
            f"{preset.tree_source!r}"
        )
    _USER_PRESETS[preset.name] = preset


def registered_algorithms() -> Dict[str, PresetDef]:
    """The user-registered preset rows (name → row), a copy."""
    return dict(_USER_PRESETS)


def get_registered_algorithm(name: str) -> Optional[PresetDef]:
    """The user preset registered under ``name``, or ``None``."""
    return _USER_PRESETS.get(name)

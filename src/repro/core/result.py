"""The result record returned by the public matching API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.enumeration.stats import EnumerationStats
from repro.obs.metrics import Metrics

__all__ = ["MatchResult"]


@dataclass
class MatchResult:
    """Outcome of one subgraph-matching run.

    Attributes mirror the paper's per-query metrics (Section 4, Metrics):
    preprocessing time covers filtering, auxiliary-structure construction
    and ordering; enumeration time covers the backtracking search;
    ``solved`` is False when the time limit killed the query (the paper
    then accounts the enumeration time as the full limit).
    """

    algorithm: str
    num_matches: int
    solved: bool
    embeddings: List[Tuple[int, ...]] = field(default_factory=list)

    #: Matching order φ actually used (None in adaptive mode).
    order: Optional[List[int]] = None

    #: Registry name of the intersection kernel backend that served the
    #: enumeration (``"scalar"``, ``"numpy"``, ``"bitset"``, ``"qfilter"``);
    #: None when the algorithm has no Algorithm 5 intersection hot path.
    kernel: Optional[str] = None

    #: Registry name of the enumeration engine that ran the search
    #: (``"iterative"``, or ``"recursive"`` when the retired baseline
    #: is opted in; see :mod:`repro.enumeration.engines`).
    engine: Optional[str] = None

    preprocessing_seconds: float = 0.0
    enumeration_seconds: float = 0.0

    #: Average candidate-set size (Figure 8's metric); None for
    #: direct-enumeration algorithms that build no candidate sets.
    candidate_average: Optional[float] = None
    #: Estimated bytes held by candidates + auxiliary structure.
    memory_bytes: int = 0

    stats: EnumerationStats = field(default_factory=EnumerationStats)

    #: Cross-layer counters (filter stages, ordering cost evaluations,
    #: the enumeration counters, per-phase wall-clock) collected while
    #: this query ran; see :mod:`repro.obs.metrics` for the glossary.
    metrics: Metrics = field(default_factory=Metrics)

    @property
    def preprocessing_ms(self) -> float:
        """Preprocessing time in milliseconds (the paper's unit)."""
        return self.preprocessing_seconds * 1000.0

    @property
    def enumeration_ms(self) -> float:
        """Enumeration time in milliseconds."""
        return self.enumeration_seconds * 1000.0

    @property
    def total_ms(self) -> float:
        """End-to-end query time in milliseconds."""
        return self.preprocessing_ms + self.enumeration_ms

    @property
    def mappings(self) -> List[Dict[int, int]]:
        """Stored embeddings as ``{query_vertex: data_vertex}`` dicts."""
        return [dict(enumerate(t)) for t in self.embeddings]

    def __repr__(self) -> str:
        status = "solved" if self.solved else "UNSOLVED"
        return (
            f"MatchResult({self.algorithm}, matches={self.num_matches}, "
            f"{status}, total={self.total_ms:.2f}ms)"
        )

"""MatchSession: one resident data graph, many queries, amortized state.

The paper's Algorithm 1 and every figure of its evaluation run *many*
query graphs against *one* in-memory data graph; a production matching
service does the same at traffic scale. ``match()`` re-resolves and
rebuilds everything per call; a :class:`MatchSession` instead owns the
data graph plus the state that amortizes across queries:

* a **plan cache** — compiled :class:`~repro.core.plan.MatchPlan` objects
  (resolved spec + kernel + aux-scope policy), LRU-keyed by the
  order-invariant query fingerprint so resubmitted patterns hit even
  under a different vertex numbering;
* a **prepared-query cache** — full preprocessing artifacts (candidates,
  auxiliary adjacency, matching order, the resolved kernel with its warm
  encode caches), LRU-keyed by *exact* graph equality, so repeating a
  query skips filtering/ordering entirely and goes straight to
  enumeration;
* **hit/miss counters** flowing into :mod:`repro.obs` metrics — per-query
  (``plan.cache_hit`` … on ``MatchResult.metrics``) and session-wide
  (:attr:`MatchSession.metrics`).

Usage::

    session = MatchSession(data, algorithm="GQLfs")
    for query in workload:
        result = session.match(query)
    results = session.match_many(more_queries)   # batch form
    session.cache_info()                          # {'plan': {...}, 'prep': {...}}

Sessions are **thread-safe**: the plan and prep caches take an internal
lock per operation (see :class:`~repro.core.plan.LRUCache`) and the
session-wide counters are guarded here, so one session may be shared by
a worker pool — the shape :mod:`repro.serve` runs at traffic scale.
Each :meth:`match` call still builds its own per-query state (metrics,
engine, frame machine), so concurrent calls never share mutable
enumeration state; cached :class:`~repro.core.plan.PreparedQuery`
artifacts are read-only during enumeration by contract. CPU-bound
workloads that want parallel *speedup* under the GIL should still prefer
one session per process, as :mod:`repro.study.parallel` does.
``match()`` remains the one-shot convenience wrapper: it builds a
throwaway session per call.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.plan import (
    AlgorithmLike,
    KernelLike,
    LRUCache,
    MatchPlan,
    compile_plan,
    run_plan,
    validate_query,
)
from repro.core.result import MatchResult
from repro.core.spec import AlgorithmSpec
from repro.errors import ConfigurationError
from repro.dynamic.mutations import Mutation
from repro.dynamic.overlay import DynamicGraph, MutationDelta
from repro.dynamic.subscribe import Subscription, SubscriptionUpdate
from repro.graph.fingerprint import query_fingerprint
from repro.graph.graph import Graph
from repro.graph.store import GraphSource, SharedMemoryStore, as_graph
from repro.obs import Metrics
from repro.parallel.executor import ParallelContext
from repro.parallel.pool import resolve_workers
from repro.parallel.shared_graph import SharedGraph, SharedGraphHandle
from repro.utils.kernels import KernelBackend

__all__ = ["MatchSession", "MutationOutcome"]

#: What ``MatchSession.mutate`` accepts: built ops or plain op tuples.
MutationLike = Union[Mutation, Sequence]


@dataclass(frozen=True)
class MutationOutcome:
    """What one :meth:`MatchSession.mutate` call changed.

    ``updates`` is aligned with :attr:`MatchSession.subscriptions` at
    the time of the call — one embedding delta per standing query.
    """

    delta: MutationDelta
    updates: Tuple[SubscriptionUpdate, ...] = ()

    @property
    def epoch(self) -> int:
        return self.delta.epoch


class MatchSession:
    """A resident data graph plus its amortizable matching state.

    Parameters
    ----------
    data:
        The data graph this session serves — a :class:`Graph`, any
        :class:`~repro.graph.store.GraphStore` (in-memory, memmap,
        shared-memory), a path to a ``.graph``/``.rgf`` file (resolved
        through :func:`~repro.graph.store.as_graph`), or a
        :class:`~repro.dynamic.overlay.DynamicGraph`. For immutable
        sources every cache below remains valid for the session's life;
        for a dynamic graph the caches key on the graph **epoch**, so a
        :meth:`mutate` invalidates exactly the entries whose graph
        changed — a cache hit happens iff the epoch is unchanged.
    algorithm:
        Default algorithm for :meth:`match` calls that don't name one.
    kernel:
        Default intersection-backend request (see
        :func:`repro.core.api.match`); per-call ``kernel=`` wins.
    engine:
        Default enumeration-engine request by registry name
        (``"iterative"``; the retired ``"recursive"`` baseline needs the
        opt-in in :mod:`repro.enumeration.engines`); per-call
        ``engine=`` wins and ``None`` defers to ``REPRO_ENGINE`` / the
        registry default.
    plan_cache_size:
        LRU capacity for compiled plans (``None`` unbounded, ``0`` off).
    prep_cache_size:
        LRU capacity for prepared queries (``None`` unbounded, ``0``
        off). Disable for measurement harnesses that must observe real
        preprocessing on every query, as the study runners do.
    record_cache_metrics:
        Attach per-query ``plan.cache_hit`` / ``plan.cache_miss`` (and
        ``plan.prep_hit`` / ``plan.prep_miss`` when the prep cache is on)
        counters to each result's metrics. The back-compat one-shot
        ``match()`` disables this so its results stay byte-identical to
        the pre-session pipeline.
    n_workers:
        Default intra-query parallelism (see :mod:`repro.parallel`):
        eligible queries fan their enumeration out over this many worker
        processes, attached zero-copy to the session's shared-memory
        published graph. ``None`` defers to ``REPRO_WORKERS`` (absent →
        sequential); per-call ``n_workers=`` wins. Results are
        byte-identical to sequential execution either way.
    """

    def __init__(
        self,
        data: GraphSource,
        algorithm: AlgorithmLike = "recommended",
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
        plan_cache_size: Optional[int] = 256,
        prep_cache_size: Optional[int] = 64,
        record_cache_metrics: bool = True,
        n_workers: Optional[int] = None,
    ) -> None:
        if isinstance(data, DynamicGraph):
            #: The mutable resident graph (``None`` for static sessions).
            self.dynamic: Optional[DynamicGraph] = data
            self._resident: Tuple[int, Graph] = data.versioned_snapshot()
        else:
            self.dynamic = None
            self._resident = (0, as_graph(data))
        self.algorithm = algorithm
        self.kernel = kernel
        self.engine = engine
        self.n_workers = n_workers
        # Shared-memory published copies of the served snapshot, keyed
        # by epoch: created on the first parallel-eligible match of an
        # epoch and kept until the epoch is superseded (or the session's
        # life for static sessions). Workers cache their attachment by
        # segment name; finalizers cover sessions that are never
        # explicitly closed. A data graph already backed by a
        # SharedMemoryStore is never republished — workers attach to the
        # existing segment by name.
        self._shared_graphs: dict = {}
        self._shared_lock = threading.Lock()
        # Serializes mutate()/subscribe() against each other; match()
        # deliberately does not take it — it reads the (epoch, snapshot)
        # pair atomically and runs against that immutable snapshot.
        self._mutate_lock = threading.RLock()
        self._subscriptions: List[Subscription] = []
        # close() must not unlink the segment under an in-flight parallel
        # dispatch (workers would hit FileNotFoundError mid-attach);
        # dispatches register through _parallel_guard and a close that
        # races one defers the release to the last guard exit.
        self._inflight_parallel = 0
        self._close_deferred = False
        self.record_cache_metrics = record_cache_metrics
        self._plans = LRUCache(plan_cache_size)
        self._prep = LRUCache(prep_cache_size)
        #: Session-wide counters: queries served and cache hits/misses,
        #: in the same :class:`~repro.obs.Metrics` currency the study
        #: aggregates, so they merge into any report.
        self.metrics = Metrics()
        # Metrics.add is a read-modify-write on a plain dict; concurrent
        # match() calls on a shared session would lose increments without
        # this guard (the session stress suite checks the totals).
        self._metrics_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Resident snapshot
    # ------------------------------------------------------------------

    @property
    def data(self) -> Graph:
        """The immutable snapshot currently served.

        Static sessions hold one snapshot forever; dynamic sessions
        advance it on every :meth:`mutate`. In-flight matches keep the
        snapshot they captured, so a mutation never changes a running
        query's view of the graph.
        """
        return self._resident[1]

    @property
    def data_epoch(self) -> int:
        """The epoch of the served snapshot (0 for static sessions)."""
        return self._resident[0]

    # ------------------------------------------------------------------
    # Parallel execution support
    # ------------------------------------------------------------------

    def _shared_handle_for(self, epoch: int, data: Graph) -> SharedGraphHandle:
        """The published copy of one epoch's snapshot (created on first need).

        A snapshot whose arrays already live in a
        :class:`~repro.graph.store.SharedMemoryStore` segment is not
        republished: workers attach to that segment by name, and its
        owner (not this session) remains responsible for unlinking it.
        """
        store = data._store
        if isinstance(store, SharedMemoryStore):
            return store.handle
        with self._shared_lock:
            entry = self._shared_graphs.get(epoch)
            if entry is None:
                shared = SharedGraph(data)
                finalizer = weakref.finalize(self, shared.unlink)
                entry = (shared, finalizer)
                self._shared_graphs[epoch] = entry
            return entry[0].handle

    def _shared_handle(self) -> SharedGraphHandle:
        """The published copy of the *current* snapshot."""
        epoch, data = self._resident
        return self._shared_handle_for(epoch, data)

    def _release_shared_locked(self, keep: Optional[int] = None) -> None:
        # Caller holds _shared_lock. Releases every published epoch
        # except `keep` (None releases all).
        for ep in list(self._shared_graphs):
            if keep is None or ep != keep:
                _, finalizer = self._shared_graphs.pop(ep)
                finalizer()

    def close(self) -> None:
        """Release the session's shared-memory segments.

        Idempotent and safe to call concurrently with in-flight parallel
        dispatch: a close that races an active fan-out defers the
        segment unlink until the last dispatch drains, so workers never
        lose the segment mid-attach. Sessions that never ran a parallel
        match hold no segment and close is a no-op; a garbage-collected
        session is finalized the same way, so close() is a courtesy for
        deterministic cleanup (the one-shot API and the serving tier
        call it explicitly).
        """
        with self._shared_lock:
            if self._inflight_parallel > 0:
                self._close_deferred = True
                return
            self._close_deferred = False
            self._release_shared_locked()

    @contextmanager
    def _parallel_guard(self) -> Iterator[None]:
        """Held around each parallel dispatch; makes close() defer.

        When the last dispatch drains, superseded epochs' segments are
        released too — a mutation that raced a parallel fan-out leaves
        no stale segment behind.
        """
        with self._shared_lock:
            self._inflight_parallel += 1
        try:
            yield
        finally:
            with self._shared_lock:
                self._inflight_parallel -= 1
                if self._inflight_parallel == 0:
                    if self._close_deferred:
                        self._close_deferred = False
                        self._release_shared_locked()
                    elif self.dynamic is not None:
                        self._release_shared_locked(keep=self._resident[0])

    def _parallel_context(
        self,
        n_workers: Optional[int],
        epoch: Optional[int] = None,
        data: Optional[Graph] = None,
    ) -> Optional[ParallelContext]:
        effective = resolve_workers(
            self.n_workers if n_workers is None else n_workers
        )
        if effective <= 0:
            return None
        if data is None:
            epoch, data = self._resident
        return ParallelContext(
            effective,
            lambda: self._shared_handle_for(epoch, data),
            guard=self._parallel_guard,
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    @staticmethod
    def _algorithm_key(algorithm: AlgorithmLike):
        # Specs are frozen dataclasses (hashable by field identity);
        # names are strings. Either is a sound cache-key component.
        return algorithm if isinstance(algorithm, (str, AlgorithmSpec)) else repr(algorithm)

    @staticmethod
    def _kernel_key(kernel: Optional[KernelLike]):
        if kernel is None or isinstance(kernel, str):
            return kernel
        if isinstance(kernel, KernelBackend):
            # A concrete backend instance is its own policy.
            return id(kernel)
        return repr(kernel)

    def compile(
        self,
        query: Graph,
        algorithm: Optional[AlgorithmLike] = None,
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
    ) -> Tuple[MatchPlan, bool]:
        """Resolve (or fetch) the plan for ``query``; returns (plan, hit).

        The cache key is ``(algorithm, kernel policy, engine policy,
        graph epoch, fingerprint)`` — order-invariant in the query, so
        isomorphic renumberings share a slot; keyed by epoch, so a
        mutation invalidates exactly the stale entries (static sessions
        sit at epoch 0 forever).
        """
        epoch, data = self._resident
        return self._compile_on(epoch, data, query, algorithm, kernel, engine)

    def _compile_on(
        self,
        epoch: int,
        data: Graph,
        query: Graph,
        algorithm: Optional[AlgorithmLike],
        kernel: Optional[KernelLike],
        engine: Optional[str],
    ) -> Tuple[MatchPlan, bool]:
        algo = self.algorithm if algorithm is None else algorithm
        kern = self.kernel if kernel is None else kernel
        eng = self.engine if engine is None else engine
        fingerprint = query_fingerprint(query)
        key = (
            self._algorithm_key(algo),
            self._kernel_key(kern),
            eng,
            epoch,
            fingerprint,
        )
        plan = self._plans.get(key)
        if plan is not None:
            return plan, True
        plan = compile_plan(
            algo,
            query,
            data,
            kernel=kern,
            fingerprint=fingerprint,
            engine=eng,
        )
        self._plans.put(key, plan)
        return plan, False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def match(
        self,
        query: Graph,
        algorithm: Optional[AlgorithmLike] = None,
        match_limit: Optional[int] = 100_000,
        time_limit: Optional[float] = None,
        store_limit: int = 10_000,
        validate: bool = True,
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
        cancel: Optional[Callable[[], bool]] = None,
        n_workers: Optional[int] = None,
    ) -> MatchResult:
        """Find matches of ``query`` in this session's data graph.

        Same contract as :func:`repro.core.api.match`, minus the ``data``
        argument (the session owns it) — plus the session's caches:
        a repeated query (exact or renumbered) reuses its compiled plan,
        and an exactly repeated query skips preprocessing outright.
        ``cancel`` is polled by the enumeration engine between leaf
        batches; once it returns True the run stops as unsolved (the
        serving tier's preemption hook). ``n_workers`` overrides the
        session's intra-query parallelism for this call (``0`` forces
        sequential); results are identical either way.
        """
        if validate:
            validate_query(query)
        algo = self.algorithm if algorithm is None else algorithm
        kern = self.kernel if kernel is None else kernel
        eng = self.engine if engine is None else engine

        # One atomic read pins this call to a single epoch's snapshot;
        # a concurrent mutate() swaps the pair but never this view.
        epoch, data = self._resident

        plan, plan_hit = self._compile_on(epoch, data, query, algo, kern, eng)

        prep_enabled = self._prep.capacity != 0
        prep_key = None
        prepared = None
        if prep_enabled:
            # Exact-graph key: Graph hashes/compares its label and CSR
            # arrays, so only a byte-identical query reuses artifacts —
            # and only at the same graph epoch (cache hit iff the graph
            # is unchanged). The engine is deliberately absent —
            # preprocessing artifacts are engine-independent, so both
            # engines share warm entries.
            prep_key = (
                self._algorithm_key(algo),
                self._kernel_key(kern),
                epoch,
                query,
            )
            prepared = self._prep.get(prep_key)
        prep_hit = prepared is not None

        metrics = Metrics()
        if self.record_cache_metrics:
            metrics.add("plan.cache_hit", int(plan_hit))
            metrics.add("plan.cache_miss", int(not plan_hit))
            if prep_enabled:
                metrics.add("plan.prep_hit", int(prep_hit))
                metrics.add("plan.prep_miss", int(not prep_hit))
        if self.dynamic is not None:
            # Stamp which epoch answered: the snapshot-isolation witness
            # the serving tier (and its stress suite) reads back.
            metrics.add("session.data_epoch", epoch)

        result, prepared = run_plan(
            plan,
            query,
            data,
            prepared=prepared,
            match_limit=match_limit,
            time_limit=time_limit,
            store_limit=store_limit,
            metrics=metrics,
            cancel=cancel,
            parallel=self._parallel_context(n_workers, epoch, data),
        )
        if prep_enabled and not prep_hit:
            self._prep.put(prep_key, prepared)

        with self._metrics_lock:
            self.metrics.add("session.queries")
            self.metrics.add("session.plan_cache_hits", int(plan_hit))
            self.metrics.add("session.plan_cache_misses", int(not plan_hit))
            if prep_enabled:
                self.metrics.add("session.prep_cache_hits", int(prep_hit))
                self.metrics.add("session.prep_cache_misses", int(not prep_hit))
        return result

    def match_many(
        self,
        queries: Iterable[Graph],
        algorithm: Optional[AlgorithmLike] = None,
        match_limit: Optional[int] = 100_000,
        time_limit: Optional[float] = None,
        store_limit: int = 10_000,
        validate: bool = True,
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
        cancel: Optional[Callable[[], bool]] = None,
        n_workers: Optional[int] = None,
    ) -> List[MatchResult]:
        """Batch :meth:`match` over ``queries`` (results in input order).

        This is the repeated-query throughput path: every duplicate
        pattern after the first reuses its plan, and exact duplicates
        skip preprocessing entirely.
        """
        return [
            self.match(
                query,
                algorithm=algorithm,
                match_limit=match_limit,
                time_limit=time_limit,
                store_limit=store_limit,
                validate=validate,
                kernel=kernel,
                engine=engine,
                cancel=cancel,
                n_workers=n_workers,
            )
            for query in queries
        ]

    def count_matches(
        self,
        query: Graph,
        algorithm: Optional[AlgorithmLike] = None,
        match_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
        store_limit: int = 0,
        validate: bool = True,
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
        cancel: Optional[Callable[[], bool]] = None,
        n_workers: Optional[int] = None,
    ) -> int:
        """Number of matches (all of them by default); stores no embeddings.

        Delegates to :meth:`match`, so per-call ``kernel``/``engine``
        overrides resolve — and are recorded on the underlying
        :class:`~repro.core.result.MatchResult` — exactly as they are for
        a direct :meth:`match` call (pinned by a regression test).
        """
        return self.match(
            query,
            algorithm=algorithm,
            match_limit=match_limit,
            time_limit=time_limit,
            store_limit=store_limit,
            validate=validate,
            kernel=kernel,
            engine=engine,
            cancel=cancel,
            n_workers=n_workers,
        ).num_matches

    def has_match(
        self,
        query: Graph,
        algorithm: Optional[AlgorithmLike] = None,
        time_limit: Optional[float] = None,
        validate: bool = True,
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
        cancel: Optional[Callable[[], bool]] = None,
        n_workers: Optional[int] = None,
    ) -> bool:
        """Whether at least one match exists (stops at the first).

        Delegates to :meth:`match`; per-call overrides behave exactly as
        they do there (see :meth:`count_matches`).
        """
        return (
            self.match(
                query,
                algorithm=algorithm,
                match_limit=1,
                time_limit=time_limit,
                store_limit=0,
                validate=validate,
                kernel=kernel,
                engine=engine,
                cancel=cancel,
                n_workers=n_workers,
            ).num_matches
            > 0
        )

    # ------------------------------------------------------------------
    # Mutation and continuous queries (dynamic sessions)
    # ------------------------------------------------------------------

    def _require_dynamic(self) -> DynamicGraph:
        if self.dynamic is None:
            raise ConfigurationError(
                "this session serves an immutable graph; build it over a "
                "repro.dynamic.DynamicGraph to mutate or subscribe"
            )
        return self.dynamic

    def mutate(self, mutations: Iterable[MutationLike]) -> MutationOutcome:
        """Apply one mutation batch to the resident dynamic graph.

        Accepts :class:`~repro.dynamic.mutations.Mutation` objects or
        plain op tuples (``("add_edge", u, v)``, ``("remove_edge", u,
        v)``, ``("add_vertex", label)``). The batch is applied
        atomically: the graph epoch advances once, every standing
        :meth:`subscribe` query reports its exact embedding delta in the
        returned outcome, and the served snapshot swaps — in-flight
        matches keep the snapshot they captured, later matches see the
        new epoch, and the epoch-keyed plan/prep caches invalidate
        exactly the superseded entries.
        """
        dynamic = self._require_dynamic()
        batch = [
            m if isinstance(m, Mutation) else Mutation.from_json(m)
            for m in mutations
        ]
        with self._mutate_lock:
            delta = dynamic.apply(batch)
            return self.ingest(delta)

    def ingest(self, delta: MutationDelta) -> MutationOutcome:
        """Fold an *externally applied* mutation delta into this session.

        :class:`~repro.serve.service.MatchService` applies one batch to
        a shared :class:`DynamicGraph` and fans the delta out to every
        tenant session built on it; everyone else wants :meth:`mutate`.
        Idempotent per delta: subscriptions skip deltas at or below
        their epoch, and the resident snapshot only advances.
        """
        dynamic = self._require_dynamic()
        with self._mutate_lock:
            updates = tuple(sub.on_delta(delta) for sub in self._subscriptions)
            if dynamic.epoch != self._resident[0]:
                self._resident = dynamic.versioned_snapshot()
                with self._shared_lock:
                    # Retire published segments of superseded epochs now
                    # if nothing is in flight; otherwise the last
                    # draining parallel guard sweeps them.
                    if self._inflight_parallel == 0 and not self._close_deferred:
                        self._release_shared_locked(keep=self._resident[0])
        with self._metrics_lock:
            self.metrics.add("session.mutations")
            self.metrics.add(
                "session.mutated_edges",
                len(delta.added_edges) + len(delta.removed_edges),
            )
            self.metrics.add(
                "session.mutated_vertices", len(delta.added_vertices)
            )
        return MutationOutcome(delta=delta, updates=updates)

    def subscribe(
        self,
        query: Graph,
        kernel: Optional[str] = None,
        match_limit: int = 100_000,
    ) -> Subscription:
        """Register ``query`` as a standing (continuous) query.

        The returned :class:`~repro.dynamic.subscribe.Subscription`
        holds the current embedding set; every subsequent
        :meth:`mutate` outcome carries its exact embedding delta.
        """
        dynamic = self._require_dynamic()
        if kernel is None and isinstance(self.kernel, str):
            kernel = self.kernel
        with self._mutate_lock:
            sub = Subscription(
                query, dynamic, kernel=kernel, match_limit=match_limit
            )
            self._subscriptions.append(sub)
        with self._metrics_lock:
            self.metrics.add("session.subscriptions")
        return sub

    def unsubscribe(self, subscription: Subscription) -> None:
        """Drop a standing query registered with :meth:`subscribe`."""
        with self._mutate_lock:
            self._subscriptions.remove(subscription)

    @property
    def subscriptions(self) -> Tuple[Subscription, ...]:
        """The standing queries, in registration order."""
        return tuple(self._subscriptions)

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------

    def cache_info(self) -> dict:
        """Hit/miss/size/capacity for both caches."""
        return {"plan": self._plans.info(), "prep": self._prep.info()}

    def clear_caches(self) -> None:
        """Drop all cached plans and prepared queries (counters persist)."""
        self._plans.clear()
        self._prep.clear()

    def __repr__(self) -> str:
        served = self.metrics.counters.get("session.queries", 0)
        algo = (
            self.algorithm
            if isinstance(self.algorithm, str)
            else self.algorithm.name
        )
        return (
            f"MatchSession({self.data!r}, algorithm={algo!r}, queries={served})"
        )

"""MatchSession: one resident data graph, many queries, amortized state.

The paper's Algorithm 1 and every figure of its evaluation run *many*
query graphs against *one* in-memory data graph; a production matching
service does the same at traffic scale. ``match()`` re-resolves and
rebuilds everything per call; a :class:`MatchSession` instead owns the
data graph plus the state that amortizes across queries:

* a **plan cache** — compiled :class:`~repro.core.plan.MatchPlan` objects
  (resolved spec + kernel + aux-scope policy), LRU-keyed by the
  order-invariant query fingerprint so resubmitted patterns hit even
  under a different vertex numbering;
* a **prepared-query cache** — full preprocessing artifacts (candidates,
  auxiliary adjacency, matching order, the resolved kernel with its warm
  encode caches), LRU-keyed by *exact* graph equality, so repeating a
  query skips filtering/ordering entirely and goes straight to
  enumeration;
* **hit/miss counters** flowing into :mod:`repro.obs` metrics — per-query
  (``plan.cache_hit`` … on ``MatchResult.metrics``) and session-wide
  (:attr:`MatchSession.metrics`).

Usage::

    session = MatchSession(data, algorithm="GQLfs")
    for query in workload:
        result = session.match(query)
    results = session.match_many(more_queries)   # batch form
    session.cache_info()                          # {'plan': {...}, 'prep': {...}}

Sessions are **thread-safe**: the plan and prep caches take an internal
lock per operation (see :class:`~repro.core.plan.LRUCache`) and the
session-wide counters are guarded here, so one session may be shared by
a worker pool — the shape :mod:`repro.serve` runs at traffic scale.
Each :meth:`match` call still builds its own per-query state (metrics,
engine, frame machine), so concurrent calls never share mutable
enumeration state; cached :class:`~repro.core.plan.PreparedQuery`
artifacts are read-only during enumeration by contract. CPU-bound
workloads that want parallel *speedup* under the GIL should still prefer
one session per process, as :mod:`repro.study.parallel` does.
``match()`` remains the one-shot convenience wrapper: it builds a
throwaway session per call.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.core.plan import (
    AlgorithmLike,
    KernelLike,
    LRUCache,
    MatchPlan,
    compile_plan,
    run_plan,
    validate_query,
)
from repro.core.result import MatchResult
from repro.core.spec import AlgorithmSpec
from repro.graph.fingerprint import query_fingerprint
from repro.graph.graph import Graph
from repro.graph.store import GraphSource, SharedMemoryStore, as_graph
from repro.obs import Metrics
from repro.parallel.executor import ParallelContext
from repro.parallel.pool import resolve_workers
from repro.parallel.shared_graph import SharedGraph, SharedGraphHandle
from repro.utils.kernels import KernelBackend

__all__ = ["MatchSession"]


class MatchSession:
    """A resident data graph plus its amortizable matching state.

    Parameters
    ----------
    data:
        The data graph this session serves — a :class:`Graph`, any
        :class:`~repro.graph.store.GraphStore` (in-memory, memmap,
        shared-memory), or a path to a ``.graph``/``.rgf`` file
        (resolved through :func:`~repro.graph.store.as_graph`).
        Immutable (as all graphs are), so every cache below remains
        valid for the session's life.
    algorithm:
        Default algorithm for :meth:`match` calls that don't name one.
    kernel:
        Default intersection-backend request (see
        :func:`repro.core.api.match`); per-call ``kernel=`` wins.
    engine:
        Default enumeration-engine request by registry name
        (``"iterative"``, ``"recursive"``); per-call ``engine=`` wins and
        ``None`` defers to ``REPRO_ENGINE`` / the registry default.
    plan_cache_size:
        LRU capacity for compiled plans (``None`` unbounded, ``0`` off).
    prep_cache_size:
        LRU capacity for prepared queries (``None`` unbounded, ``0``
        off). Disable for measurement harnesses that must observe real
        preprocessing on every query, as the study runners do.
    record_cache_metrics:
        Attach per-query ``plan.cache_hit`` / ``plan.cache_miss`` (and
        ``plan.prep_hit`` / ``plan.prep_miss`` when the prep cache is on)
        counters to each result's metrics. The back-compat one-shot
        ``match()`` disables this so its results stay byte-identical to
        the pre-session pipeline.
    n_workers:
        Default intra-query parallelism (see :mod:`repro.parallel`):
        eligible queries fan their enumeration out over this many worker
        processes, attached zero-copy to the session's shared-memory
        published graph. ``None`` defers to ``REPRO_WORKERS`` (absent →
        sequential); per-call ``n_workers=`` wins. Results are
        byte-identical to sequential execution either way.
    """

    def __init__(
        self,
        data: GraphSource,
        algorithm: AlgorithmLike = "recommended",
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
        plan_cache_size: Optional[int] = 256,
        prep_cache_size: Optional[int] = 64,
        record_cache_metrics: bool = True,
        n_workers: Optional[int] = None,
    ) -> None:
        self.data = as_graph(data)
        self.algorithm = algorithm
        self.kernel = kernel
        self.engine = engine
        self.n_workers = n_workers
        # The shared-memory published copy of `data`, created on the
        # first parallel-eligible match and kept for the session's life
        # (workers cache their attachment by segment name). The finalizer
        # covers sessions that are never explicitly closed. A data graph
        # already backed by a SharedMemoryStore is never republished —
        # workers attach to the existing segment by name.
        self._shared_graph = None
        self._shared_lock = threading.Lock()
        self._finalizer = None
        # close() must not unlink the segment under an in-flight parallel
        # dispatch (workers would hit FileNotFoundError mid-attach);
        # dispatches register through _parallel_guard and a close that
        # races one defers the release to the last guard exit.
        self._inflight_parallel = 0
        self._close_deferred = False
        self.record_cache_metrics = record_cache_metrics
        self._plans = LRUCache(plan_cache_size)
        self._prep = LRUCache(prep_cache_size)
        #: Session-wide counters: queries served and cache hits/misses,
        #: in the same :class:`~repro.obs.Metrics` currency the study
        #: aggregates, so they merge into any report.
        self.metrics = Metrics()
        # Metrics.add is a read-modify-write on a plain dict; concurrent
        # match() calls on a shared session would lose increments without
        # this guard (the session stress suite checks the totals).
        self._metrics_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Parallel execution support
    # ------------------------------------------------------------------

    def _shared_handle(self) -> SharedGraphHandle:
        """The session's published graph (created once, on first need).

        A data graph whose arrays already live in a
        :class:`~repro.graph.store.SharedMemoryStore` segment is not
        republished: workers attach to that segment by name, and its
        owner (not this session) remains responsible for unlinking it.
        """
        store = self.data._store
        if isinstance(store, SharedMemoryStore):
            return store.handle
        with self._shared_lock:
            if self._shared_graph is None:
                shared = SharedGraph(self.data)
                self._shared_graph = shared
                self._finalizer = weakref.finalize(self, shared.unlink)
            return self._shared_graph.handle

    def _release_shared_locked(self) -> None:
        # Caller holds _shared_lock.
        self._close_deferred = False
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._shared_graph = None

    def close(self) -> None:
        """Release the session's shared-memory segment.

        Idempotent and safe to call concurrently with in-flight parallel
        dispatch: a close that races an active fan-out defers the
        segment unlink until the last dispatch drains, so workers never
        lose the segment mid-attach. Sessions that never ran a parallel
        match hold no segment and close is a no-op; a garbage-collected
        session is finalized the same way, so close() is a courtesy for
        deterministic cleanup (the one-shot API and the serving tier
        call it explicitly).
        """
        with self._shared_lock:
            if self._inflight_parallel > 0:
                self._close_deferred = True
                return
            self._release_shared_locked()

    @contextmanager
    def _parallel_guard(self) -> Iterator[None]:
        """Held around each parallel dispatch; makes close() defer."""
        with self._shared_lock:
            self._inflight_parallel += 1
        try:
            yield
        finally:
            with self._shared_lock:
                self._inflight_parallel -= 1
                if self._inflight_parallel == 0 and self._close_deferred:
                    self._release_shared_locked()

    def _parallel_context(
        self, n_workers: Optional[int]
    ) -> Optional[ParallelContext]:
        effective = resolve_workers(
            self.n_workers if n_workers is None else n_workers
        )
        if effective <= 0:
            return None
        return ParallelContext(
            effective, self._shared_handle, guard=self._parallel_guard
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    @staticmethod
    def _algorithm_key(algorithm: AlgorithmLike):
        # Specs are frozen dataclasses (hashable by field identity);
        # names are strings. Either is a sound cache-key component.
        return algorithm if isinstance(algorithm, (str, AlgorithmSpec)) else repr(algorithm)

    @staticmethod
    def _kernel_key(kernel: Optional[KernelLike]):
        if kernel is None or isinstance(kernel, str):
            return kernel
        if isinstance(kernel, KernelBackend):
            # A concrete backend instance is its own policy.
            return id(kernel)
        return repr(kernel)

    def compile(
        self,
        query: Graph,
        algorithm: Optional[AlgorithmLike] = None,
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
    ) -> Tuple[MatchPlan, bool]:
        """Resolve (or fetch) the plan for ``query``; returns (plan, hit).

        The cache key is ``(algorithm, kernel policy, engine policy,
        fingerprint)`` — order-invariant in the query, so isomorphic
        renumberings share a slot.
        """
        algo = self.algorithm if algorithm is None else algorithm
        kern = self.kernel if kernel is None else kernel
        eng = self.engine if engine is None else engine
        fingerprint = query_fingerprint(query)
        key = (self._algorithm_key(algo), self._kernel_key(kern), eng, fingerprint)
        plan = self._plans.get(key)
        if plan is not None:
            return plan, True
        plan = compile_plan(
            algo,
            query,
            self.data,
            kernel=kern,
            fingerprint=fingerprint,
            engine=eng,
        )
        self._plans.put(key, plan)
        return plan, False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def match(
        self,
        query: Graph,
        algorithm: Optional[AlgorithmLike] = None,
        match_limit: Optional[int] = 100_000,
        time_limit: Optional[float] = None,
        store_limit: int = 10_000,
        validate: bool = True,
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
        cancel: Optional[Callable[[], bool]] = None,
        n_workers: Optional[int] = None,
    ) -> MatchResult:
        """Find matches of ``query`` in this session's data graph.

        Same contract as :func:`repro.core.api.match`, minus the ``data``
        argument (the session owns it) — plus the session's caches:
        a repeated query (exact or renumbered) reuses its compiled plan,
        and an exactly repeated query skips preprocessing outright.
        ``cancel`` is polled by the enumeration engine between leaf
        batches; once it returns True the run stops as unsolved (the
        serving tier's preemption hook). ``n_workers`` overrides the
        session's intra-query parallelism for this call (``0`` forces
        sequential); results are identical either way.
        """
        if validate:
            validate_query(query)
        algo = self.algorithm if algorithm is None else algorithm
        kern = self.kernel if kernel is None else kernel
        eng = self.engine if engine is None else engine

        plan, plan_hit = self.compile(
            query, algorithm=algo, kernel=kern, engine=eng
        )

        prep_enabled = self._prep.capacity != 0
        prep_key = None
        prepared = None
        if prep_enabled:
            # Exact-graph key: Graph hashes/compares its label and CSR
            # arrays, so only a byte-identical query reuses artifacts.
            # The engine is deliberately absent — preprocessing artifacts
            # are engine-independent, so both engines share warm entries.
            prep_key = (self._algorithm_key(algo), self._kernel_key(kern), query)
            prepared = self._prep.get(prep_key)
        prep_hit = prepared is not None

        metrics = Metrics()
        if self.record_cache_metrics:
            metrics.add("plan.cache_hit", int(plan_hit))
            metrics.add("plan.cache_miss", int(not plan_hit))
            if prep_enabled:
                metrics.add("plan.prep_hit", int(prep_hit))
                metrics.add("plan.prep_miss", int(not prep_hit))

        result, prepared = run_plan(
            plan,
            query,
            self.data,
            prepared=prepared,
            match_limit=match_limit,
            time_limit=time_limit,
            store_limit=store_limit,
            metrics=metrics,
            cancel=cancel,
            parallel=self._parallel_context(n_workers),
        )
        if prep_enabled and not prep_hit:
            self._prep.put(prep_key, prepared)

        with self._metrics_lock:
            self.metrics.add("session.queries")
            self.metrics.add("session.plan_cache_hits", int(plan_hit))
            self.metrics.add("session.plan_cache_misses", int(not plan_hit))
            if prep_enabled:
                self.metrics.add("session.prep_cache_hits", int(prep_hit))
                self.metrics.add("session.prep_cache_misses", int(not prep_hit))
        return result

    def match_many(
        self,
        queries: Iterable[Graph],
        algorithm: Optional[AlgorithmLike] = None,
        match_limit: Optional[int] = 100_000,
        time_limit: Optional[float] = None,
        store_limit: int = 10_000,
        validate: bool = True,
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
        cancel: Optional[Callable[[], bool]] = None,
        n_workers: Optional[int] = None,
    ) -> List[MatchResult]:
        """Batch :meth:`match` over ``queries`` (results in input order).

        This is the repeated-query throughput path: every duplicate
        pattern after the first reuses its plan, and exact duplicates
        skip preprocessing entirely.
        """
        return [
            self.match(
                query,
                algorithm=algorithm,
                match_limit=match_limit,
                time_limit=time_limit,
                store_limit=store_limit,
                validate=validate,
                kernel=kernel,
                engine=engine,
                cancel=cancel,
                n_workers=n_workers,
            )
            for query in queries
        ]

    def count_matches(
        self,
        query: Graph,
        algorithm: Optional[AlgorithmLike] = None,
        match_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
        store_limit: int = 0,
        validate: bool = True,
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
        cancel: Optional[Callable[[], bool]] = None,
        n_workers: Optional[int] = None,
    ) -> int:
        """Number of matches (all of them by default); stores no embeddings.

        Delegates to :meth:`match`, so per-call ``kernel``/``engine``
        overrides resolve — and are recorded on the underlying
        :class:`~repro.core.result.MatchResult` — exactly as they are for
        a direct :meth:`match` call (pinned by a regression test).
        """
        return self.match(
            query,
            algorithm=algorithm,
            match_limit=match_limit,
            time_limit=time_limit,
            store_limit=store_limit,
            validate=validate,
            kernel=kernel,
            engine=engine,
            cancel=cancel,
            n_workers=n_workers,
        ).num_matches

    def has_match(
        self,
        query: Graph,
        algorithm: Optional[AlgorithmLike] = None,
        time_limit: Optional[float] = None,
        validate: bool = True,
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
        cancel: Optional[Callable[[], bool]] = None,
        n_workers: Optional[int] = None,
    ) -> bool:
        """Whether at least one match exists (stops at the first).

        Delegates to :meth:`match`; per-call overrides behave exactly as
        they do there (see :meth:`count_matches`).
        """
        return (
            self.match(
                query,
                algorithm=algorithm,
                match_limit=1,
                time_limit=time_limit,
                store_limit=0,
                validate=validate,
                kernel=kernel,
                engine=engine,
                cancel=cancel,
                n_workers=n_workers,
            ).num_matches
            > 0
        )

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------

    def cache_info(self) -> dict:
        """Hit/miss/size/capacity for both caches."""
        return {"plan": self._plans.info(), "prep": self._prep.info()}

    def clear_caches(self) -> None:
        """Drop all cached plans and prepared queries (counters persist)."""
        self._plans.clear()
        self._prep.clear()

    def __repr__(self) -> str:
        served = self.metrics.counters.get("session.queries", 0)
        algo = (
            self.algorithm
            if isinstance(self.algorithm, str)
            else self.algorithm.name
        )
        return (
            f"MatchSession({self.data!r}, algorithm={algo!r}, queries={served})"
        )

"""Algorithm specifications: one preset = one point in the study's space.

The paper's methodology is to treat each algorithm as a combination of a
filtering method, an ordering method, a local-candidate method, an
auxiliary-structure scope and optional failing-sets pruning (Algorithm 1).
:class:`AlgorithmSpec` is that combination; the preset registry in
:mod:`repro.core.algorithms` enumerates the paper's configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.enumeration.local_candidates import LocalCandidateMethod
from repro.filtering.auxiliary import Scope
from repro.filtering.base import Filter
from repro.graph.graph import Graph
from repro.graph.ops import BFSTree
from repro.ordering.base import Ordering

__all__ = ["AlgorithmSpec"]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A fully wired subgraph-matching algorithm.

    Attributes
    ----------
    name:
        Label used in results and reports.
    filter:
        Candidate generation, or ``None`` for direct-enumeration
        algorithms (QuickSI, RI, VF2++ run LDF lazily inside ComputeLC).
    ordering:
        Matching-order method.
    lc:
        ComputeLC strategy (Algorithm 2, 3, 4 or 5).
    aux_scope:
        Which query edges the auxiliary structure materializes
        (``"none"`` / ``"tree"`` / ``"all"``).
    adaptive:
        Run DP-iso's adaptive vertex selection instead of the static φ.
    failing_sets:
        Enable the failing-sets pruning (Section 3.4).
    tree_source:
        Builder for the BFS tree ``q_t`` when ``aux_scope="tree"`` — also
        supplies the designated ``u.p`` parents for Algorithm 4.
    """

    name: str
    filter: Optional[Filter]
    ordering: Ordering
    lc: LocalCandidateMethod
    aux_scope: Scope = "none"
    adaptive: bool = False
    failing_sets: bool = False
    tree_source: Optional[Callable[[Graph, Graph], BFSTree]] = None

    def with_failing_sets(self, enabled: bool = True) -> "AlgorithmSpec":
        """This spec with failing-sets pruning toggled (renamed with suffix)."""
        if enabled == self.failing_sets:
            return self
        suffix = "fs" if enabled else ""
        base = self.name[:-2] if self.name.endswith("fs") else self.name
        return replace(self, failing_sets=enabled, name=base + suffix)

    def renamed(self, name: str) -> "AlgorithmSpec":
        """This spec under a different report label."""
        return replace(self, name=name)

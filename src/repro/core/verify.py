"""Embedding verification: check a mapping is a genuine match.

Useful for downstream users consuming embeddings (and used by our tests):
re-checks Definition 2.1 — injectivity, label preservation, and edge
preservation — independent of any algorithm state.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Union

from repro.graph.graph import Graph

__all__ = ["verify_embedding", "explain_embedding_failure"]

EmbeddingLike = Union[Sequence[int], Mapping[int, int]]


def _as_mapping(query: Graph, embedding: EmbeddingLike) -> Dict[int, int]:
    if isinstance(embedding, Mapping):
        mapping = dict(embedding)
    else:
        mapping = dict(enumerate(embedding))
    if sorted(mapping) != list(query.vertices()):
        raise ValueError(
            f"embedding must map every query vertex exactly once, got keys "
            f"{sorted(mapping)}"
        )
    return mapping


def explain_embedding_failure(
    query: Graph, data: Graph, embedding: EmbeddingLike
) -> str:
    """Why ``embedding`` is not a match — empty string when it is one.

    >>> q = Graph(labels=[0, 1], edges=[(0, 1)])
    >>> g = Graph(labels=[0, 1], edges=[])
    >>> explain_embedding_failure(q, g, [0, 1])
    'query edge (0, 1) maps to non-edge (0, 1)'
    """
    mapping = _as_mapping(query, embedding)

    for u, v in mapping.items():
        if not (0 <= v < data.num_vertices):
            return f"query vertex {u} maps to nonexistent data vertex {v}"
    if len(set(mapping.values())) != len(mapping):
        return "mapping is not injective"
    for u, v in mapping.items():
        if query.label(u) != data.label(v):
            return (
                f"label mismatch at {u}->{v}: "
                f"{query.label(u)} != {data.label(v)}"
            )
    for a, b in query.edges():
        if not data.has_edge(mapping[a], mapping[b]):
            return (
                f"query edge ({a}, {b}) maps to non-edge "
                f"({mapping[a]}, {mapping[b]})"
            )
    return ""


def verify_embedding(
    query: Graph, data: Graph, embedding: EmbeddingLike
) -> bool:
    """Whether ``embedding`` is a subgraph isomorphism from query to data.

    Accepts either a tuple/list indexed by query vertex or a
    ``{query_vertex: data_vertex}`` mapping.

    >>> q = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
    >>> g = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
    >>> verify_embedding(q, g, (0, 1, 2))
    True
    >>> verify_embedding(q, g, (2, 1, 2))
    False
    """
    return explain_embedding_failure(query, data, embedding) == ""

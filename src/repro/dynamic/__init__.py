"""Dynamic graphs: mutation, incremental maintenance, continuous queries.

The study's pipeline assumes an immutable data graph; this package adds
the serving-side mutation story (ROADMAP item 4):

* :class:`DynamicGraph` — a mutable overlay over the CSR store layer
  with epoch-versioned snapshots and periodic compaction;
* :class:`IncrementalCandidates` — exact delta maintenance of candidate
  sets via support counters and a frontier worklist;
* :class:`Subscription` — continuous queries reporting the embedding
  delta after every mutation batch.
"""

from repro.dynamic.mutations import (
    ADD_EDGE,
    ADD_VERTEX,
    MUTATION_OPS,
    REMOVE_EDGE,
    Mutation,
    MutationScript,
    sanitize_batch,
    script_from_json,
    script_to_json,
)
from repro.dynamic.overlay import DynamicGraph, MutationDelta
from repro.dynamic.incremental import IncrementalCandidates, query_dag
from repro.dynamic.subscribe import Subscription, SubscriptionUpdate

__all__ = [
    "ADD_EDGE",
    "ADD_VERTEX",
    "MUTATION_OPS",
    "REMOVE_EDGE",
    "Mutation",
    "MutationScript",
    "sanitize_batch",
    "DynamicGraph",
    "MutationDelta",
    "IncrementalCandidates",
    "query_dag",
    "Subscription",
    "SubscriptionUpdate",
    "script_from_json",
    "script_to_json",
]

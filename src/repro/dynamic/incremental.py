"""Incremental candidate-set maintenance under graph mutation.

The static filters (Section 3.1) recompute ``C(u)`` from scratch; on a
mutating graph that redoes work whose inputs did not change. This module
maintains candidate sets *exactly* under ``add_edge`` / ``remove_edge``
/ ``add_vertex`` by delta-propagating through the refinement rules —
the DCS/TurboFlux idea of keeping per-(query-edge, data-vertex) support
counters and walking a worklist only over the frontier reachable from
the touched vertices.

Semantics
---------
Candidacy is defined by a stratified two-pass recursion over a
deterministic query DAG (a BFS orientation rooted at the
smallest-id max-degree query vertex — a function of the query alone, so
data mutations never change the DAG):

* ``seed(u, v)``: ``L(v) = L(u)``, ``d(v) ≥ d(u)``, and NLF containment
  (the LDF+NLF filter of Section 3.1.1);
* bottom-up ``d1(u, v)``: ``seed(u, v)`` and every DAG-child ``c`` of
  ``u`` has a neighbor of ``v`` in ``D1(c)``;
* top-down ``d2(u, v)``: ``d1(u, v)`` and every DAG-parent ``p`` of
  ``u`` has a neighbor of ``v`` in ``D2(p)`` — ``C(u) = D2(u)``.

The recursion is acyclic in the query DAG, so it has a *unique*
solution; any genuine embedding survives both passes by induction
(children/parents of ``φ(u)`` are adjacent and candidates themselves),
so the sets are complete in the sense of Definition 2.2 and safe to
hand to any enumeration engine.

Maintenance keeps the support counters
``cnt1[(u, c)][v] = |N(v) ∩ D1(c)|`` and
``cnt2[(u, p)][v] = |N(v) ∩ D2(p)|`` consistent at all times. A
mutation batch (a) re-evaluates ``seed`` only at the touched endpoints
(labels and NLFs elsewhere are untouched), (b) folds the edge delta
into the counters, and (c) drains a recheck worklist: a membership flip
at ``(u, v)`` adjusts the counters of ``v``'s data-neighbors for the
adjacent query vertices and enqueues only those whose counter crossed
the 0↔1 boundary. Because the counters are exact and the defining
recursion is stratified, the quiescent state is the unique solution —
``apply_delta`` lands on byte-for-byte the same sets as
:meth:`IncrementalCandidates.rebuild` from scratch, which is exactly
what the mutate-then-match differential layer in ``repro.qa`` asserts.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.dynamic.overlay import DynamicGraph, MutationDelta

__all__ = ["IncrementalCandidates", "query_dag"]

GraphLike = Union[Graph, DynamicGraph]


def query_dag(query: Graph) -> Tuple[List[int], Dict[int, List[int]], Dict[int, List[int]]]:
    """Deterministic BFS DAG of the query: (topo order, parents, children).

    Rooted at the smallest-id maximum-degree vertex; every query edge is
    oriented from lower BFS level to higher, same-level edges from lower
    id to higher. The orientation depends only on the query, so it is
    stable across data mutations.
    """
    n = query.num_vertices
    degrees = [query.degree(u) for u in range(n)]
    root = min(range(n), key=lambda u: (-degrees[u], u))
    level = {root: 0}
    frontier = [root]
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            for w in query.neighbors(u).tolist():
                if w not in level:
                    level[w] = level[u] + 1
                    nxt.append(w)
        frontier = sorted(nxt)
    order = sorted(range(n), key=lambda u: (level[u], u))
    parents: Dict[int, List[int]] = {u: [] for u in range(n)}
    children: Dict[int, List[int]] = {u: [] for u in range(n)}
    for u in range(n):
        for w in query.neighbors(u).tolist():
            if u >= w:
                continue
            lo, hi = (u, w) if (level[u], u) < (level[w], w) else (w, u)
            children[lo].append(hi)
            parents[hi].append(lo)
    return order, parents, children


def _count_hits(data: Graph, member: np.ndarray) -> np.ndarray:
    """``out[v] = |N(v) ∩ M|`` for every data vertex, one vectorized pass."""
    offsets, neighbors = data.csr
    cs = np.zeros(neighbors.size + 1, dtype=np.int64)
    np.cumsum(member[neighbors], out=cs[1:])
    return cs[offsets[1:]] - cs[offsets[:-1]]


class IncrementalCandidates:
    """Exactly-maintained candidate sets over a mutating data graph.

    Build once against the current graph (a full vectorized two-pass
    computation), then feed each :class:`MutationDelta` to
    :meth:`apply_delta`. :meth:`rebuild` recomputes the same state from
    scratch on the current graph — the differential oracle.

    Examples
    --------
    >>> data = DynamicGraph(Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (1, 2), (2, 3)]))
    >>> query = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
    >>> inc = IncrementalCandidates(query, data)
    >>> inc.apply_delta(data.add_edge(3, 0))
    >>> inc.equal_state(inc.rebuild())
    True
    """

    def __init__(self, query: Graph, data: GraphLike) -> None:
        self.query = query
        self.data = data
        self.order, self.parents, self.children = query_dag(query)
        self.counters: Dict[str, int] = {
            "dynamic.seed_checks": 0,
            "dynamic.rechecks": 0,
            "dynamic.flips": 0,
            "dynamic.cnt_updates": 0,
        }
        self._epoch = data.epoch if isinstance(data, DynamicGraph) else 0
        self._build()

    # ------------------------------------------------------------------
    # Graph access through the overlay (or a plain Graph)
    # ------------------------------------------------------------------

    def _static(self) -> Graph:
        """The current graph as an immutable ``Graph`` (for vectorized passes)."""
        if isinstance(self.data, DynamicGraph):
            return self.data.snapshot()
        return self.data

    def _adj(self, v: int) -> List[int]:
        if isinstance(self.data, DynamicGraph):
            return self.data.neighbors(v)
        return self.data.neighbors(v).tolist()

    def _seed_ok(self, u: int, v: int) -> bool:
        self.counters["dynamic.seed_checks"] += 1
        g = self.data
        q = self.query
        if g.label(v) != q.label(u) or g.degree(v) < q.degree(u):
            return False
        nlf_v = g.nlf(v)
        for lbl, cnt in q.nlf(u).items():
            if nlf_v.get(lbl, 0) < cnt:
                return False
        return True

    # ------------------------------------------------------------------
    # From-scratch build (also the differential oracle)
    # ------------------------------------------------------------------

    def _build(self) -> None:
        g = self._static()
        q = self.query
        n = g.num_vertices
        nq = q.num_vertices

        seed = np.zeros((nq, n), dtype=bool)
        for u in range(nq):
            mask = (g.labels == q.label(u)) & (g.degrees >= q.degree(u))
            need = q.nlf(u)
            for v in np.flatnonzero(mask).tolist():
                nlf_v = g.nlf(v)
                if all(nlf_v.get(lbl, 0) >= cnt for lbl, cnt in need.items()):
                    seed[u, v] = True
        self.seed = seed

        d1 = np.zeros((nq, n), dtype=bool)
        cnt1: Dict[Tuple[int, int], np.ndarray] = {}
        for u in reversed(self.order):
            keep = seed[u].copy()
            for c in self.children[u]:
                cnt = _count_hits(g, d1[c])
                cnt1[(u, c)] = cnt
                keep &= cnt > 0
            d1[u] = keep
        self.d1 = d1

        d2 = np.zeros((nq, n), dtype=bool)
        cnt2: Dict[Tuple[int, int], np.ndarray] = {}
        for u in self.order:
            keep = d1[u].copy()
            for p in self.parents[u]:
                cnt = _count_hits(g, d2[p])
                cnt2[(u, p)] = cnt
                keep &= cnt > 0
            d2[u] = keep
        self.d2 = d2
        self.cnt1 = cnt1
        self.cnt2 = cnt2

    def rebuild(self) -> "IncrementalCandidates":
        """A fresh instance computed from scratch on the current graph."""
        return IncrementalCandidates(self.query, self._static())

    # ------------------------------------------------------------------
    # Delta maintenance
    # ------------------------------------------------------------------

    def apply_delta(self, delta: MutationDelta) -> None:
        """Fold one applied mutation batch into the maintained state."""
        if delta.empty:
            return
        if not isinstance(self.data, DynamicGraph):
            raise ValueError("apply_delta requires a DynamicGraph-backed state")
        if delta.epoch != self._epoch + 1 or self.data.epoch != delta.epoch:
            raise ValueError(
                f"delta epoch {delta.epoch} does not follow state epoch "
                f"{self._epoch} (graph at {self.data.epoch}); deltas must be "
                "applied immediately and in order"
            )
        self._epoch = delta.epoch
        nq = self.query.num_vertices

        grow = len(delta.added_vertices)
        if grow:
            pad_b = np.zeros((nq, grow), dtype=bool)
            self.seed = np.concatenate([self.seed, pad_b], axis=1)
            self.d1 = np.concatenate([self.d1, pad_b], axis=1)
            self.d2 = np.concatenate([self.d2, pad_b], axis=1)
            pad_i = np.zeros(grow, dtype=np.int64)
            for key in self.cnt1:
                self.cnt1[key] = np.concatenate([self.cnt1[key], pad_i])
            for key in self.cnt2:
                self.cnt2[key] = np.concatenate([self.cnt2[key], pad_i])

        work: deque = deque()

        # (a) seed re-evaluation at touched endpoints: only their degree
        # and NLF changed; everyone else's seed verdict is untouched.
        affected = set()
        for a, b in delta.added_edges:
            affected.update((a, b))
        for a, b in delta.removed_edges:
            affected.update((a, b))
        affected.update(v for v, _ in delta.added_vertices)
        for v in affected:
            for u in range(nq):
                now = self._seed_ok(u, v)
                if now != bool(self.seed[u, v]):
                    self.seed[u, v] = now
                    work.append(("d1", u, v))

        # (b) fold the edge delta into the support counters. Memberships
        # have not moved yet, so "count neighbors in D" changes exactly
        # at the endpoints, by the membership of the opposite endpoint.
        for edges, sign in ((delta.added_edges, 1), (delta.removed_edges, -1)):
            for a, b in edges:
                for u in range(nq):
                    for c in self.children[u]:
                        self._bump(self.cnt1, (u, c), a, self.d1[c, b], sign, "d1", u, work)
                        self._bump(self.cnt1, (u, c), b, self.d1[c, a], sign, "d1", u, work)
                    for p in self.parents[u]:
                        self._bump(self.cnt2, (u, p), a, self.d2[p, b], sign, "d2", u, work)
                        self._bump(self.cnt2, (u, p), b, self.d2[p, a], sign, "d2", u, work)

        self._drain(work)

    def _bump(
        self,
        table: Dict[Tuple[int, int], np.ndarray],
        key: Tuple[int, int],
        v: int,
        opposite_member: bool,
        sign: int,
        kind: str,
        u: int,
        work: deque,
    ) -> None:
        if not opposite_member:
            return
        arr = table[key]
        arr[v] += sign
        self.counters["dynamic.cnt_updates"] += 1
        if (sign > 0 and arr[v] == 1) or (sign < 0 and arr[v] == 0):
            work.append((kind, u, v))

    def _drain(self, work: deque) -> None:
        """Drain the recheck worklist to quiescence.

        Chaotic iteration of a stratified (query-DAG-acyclic) recursion:
        every enqueued recheck compares stored membership against its
        defining predicate under the *current* counters; a flip adjusts
        the counters it supports and enqueues only boundary crossings.
        Quiescence therefore means every local equation holds — the
        unique solution.
        """
        while work:
            kind, u, v = work.popleft()
            self.counters["dynamic.rechecks"] += 1
            if kind == "d1":
                want = bool(self.seed[u, v]) and all(
                    self.cnt1[(u, c)][v] > 0 for c in self.children[u]
                )
                if want != bool(self.d1[u, v]):
                    self.d1[u, v] = want
                    self.counters["dynamic.flips"] += 1
                    sign = 1 if want else -1
                    for p in self.parents[u]:
                        for w in self._adj(v):
                            self._bump(self.cnt1, (p, u), w, True, sign, "d1", p, work)
                    # d2 at (u, v) conjoins d1 — recheck it on a d1 flip.
                    work.append(("d2", u, v))
            else:
                want = bool(self.d1[u, v]) and all(
                    self.cnt2[(u, p)][v] > 0 for p in self.parents[u]
                )
                if want != bool(self.d2[u, v]):
                    self.d2[u, v] = want
                    self.counters["dynamic.flips"] += 1
                    sign = 1 if want else -1
                    for c in self.children[u]:
                        for w in self._adj(v):
                            self._bump(self.cnt2, (c, u), w, True, sign, "d2", c, work)

    # ------------------------------------------------------------------
    # Views and comparison
    # ------------------------------------------------------------------

    def candidate_sets(self) -> CandidateSets:
        """The maintained sets as the pipeline's shared container."""
        return CandidateSets(
            self.query,
            [np.flatnonzero(self.d2[u]).tolist() for u in range(self.query.num_vertices)],
        )

    def as_dict(self) -> Dict[int, List[int]]:
        return {
            u: np.flatnonzero(self.d2[u]).tolist()
            for u in range(self.query.num_vertices)
        }

    def equal_state(self, other: "IncrementalCandidates") -> bool:
        """Whether the full maintained state (sets *and* counters) matches."""
        if not (
            np.array_equal(self.seed, other.seed)
            and np.array_equal(self.d1, other.d1)
            and np.array_equal(self.d2, other.d2)
        ):
            return False
        for key in self.cnt1:
            if not np.array_equal(self.cnt1[key], other.cnt1[key]):
                return False
        for key in self.cnt2:
            if not np.array_equal(self.cnt2[key], other.cnt2[key]):
                return False
        return True

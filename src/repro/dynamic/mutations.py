"""Mutation vocabulary shared by the dynamic layer and the QA harness.

A mutation is one of three ops on a resident graph:

``("add_edge", u, v)``
    Insert the undirected edge ``e(u, v)``. Inserting an edge that is
    already present is a no-op (the delta does not report it).
``("remove_edge", u, v)``
    Delete the undirected edge ``e(u, v)``. Deleting an absent edge is
    a no-op.
``("add_vertex", label)``
    Append a fresh isolated vertex carrying ``label``; it receives the
    next dense id.

Vertex *removal* is deliberately absent: dense ids are load-bearing
across every candidate structure and CSR buffer, and the serving
scenarios in ROADMAP item 4 (agent memory, streaming entity edges) are
append-heavy. A "removed" vertex is modeled by removing its edges.

Scripts — sequences of mutation *batches* — are plain data so the QA
corpus can serialize them verbatim: a script is a list of batches, a
batch a list of ``Mutation`` ops. :func:`script_to_json` /
:func:`script_from_json` round-trip through the ``repro.qa/v1`` JSON
corpus format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

__all__ = [
    "ADD_EDGE",
    "REMOVE_EDGE",
    "ADD_VERTEX",
    "MUTATION_OPS",
    "Mutation",
    "MutationScript",
    "sanitize_batch",
    "script_to_json",
    "script_from_json",
]

ADD_EDGE = "add_edge"
REMOVE_EDGE = "remove_edge"
ADD_VERTEX = "add_vertex"

#: Recognized mutation opcodes.
MUTATION_OPS = (ADD_EDGE, REMOVE_EDGE, ADD_VERTEX)


@dataclass(frozen=True)
class Mutation:
    """One mutation op.

    ``a``/``b`` are the edge endpoints for edge ops; for ``add_vertex``
    ``a`` is the label and ``b`` is unused (kept at ``-1``).
    """

    op: str
    a: int
    b: int = -1

    def __post_init__(self) -> None:
        if self.op not in MUTATION_OPS:
            raise ValueError(f"unknown mutation op {self.op!r}")

    def to_json(self) -> List[Any]:
        if self.op == ADD_VERTEX:
            return [self.op, self.a]
        return [self.op, self.a, self.b]

    @classmethod
    def from_json(cls, payload: Sequence[Any]) -> "Mutation":
        op = str(payload[0])
        if op == ADD_VERTEX:
            return cls(op, int(payload[1]))
        return cls(op, int(payload[1]), int(payload[2]))


#: A script: a tuple of batches, each batch a tuple of mutations.
MutationScript = Tuple[Tuple[Mutation, ...], ...]


def sanitize_batch(
    batch: Sequence[Mutation], num_vertices: int
) -> Tuple[Tuple[Mutation, ...], int]:
    """Drop ops that are invalid against a graph of ``num_vertices``.

    The QA shrinker deletes data vertices underneath a recorded mutation
    script, so replay must tolerate edge ops whose endpoints no longer
    exist (or collide into self-loops). ``add_vertex`` ops grow the id
    space for the ops after them, matching the batch-application
    semantics of :meth:`repro.dynamic.overlay.DynamicGraph.apply`.
    Returns the kept ops and the post-batch vertex count.
    """
    kept: List[Mutation] = []
    n = int(num_vertices)
    for mutation in batch:
        if mutation.op == ADD_VERTEX:
            if mutation.a >= 0:
                kept.append(mutation)
                n += 1
        elif (
            0 <= mutation.a < n
            and 0 <= mutation.b < n
            and mutation.a != mutation.b
        ):
            kept.append(mutation)
    return tuple(kept), n


def script_to_json(script: Sequence[Sequence[Mutation]]) -> List[List[List[Any]]]:
    """Serialize a mutation script for the ``repro.qa/v1`` corpus."""
    return [[m.to_json() for m in batch] for batch in script]


def script_from_json(payload: Any) -> MutationScript:
    """Parse a mutation script from its corpus JSON form."""
    if payload is None:
        return ()
    return tuple(
        tuple(Mutation.from_json(item) for item in batch) for batch in payload
    )

"""A mutable overlay over the immutable CSR :class:`~repro.graph.graph.Graph`.

The study's pipeline assumes an immutable data graph; serving traffic
does not. :class:`DynamicGraph` reconciles the two with the classic
log-structured split:

* an immutable **base** graph in canonical CSR form (any
  :class:`~repro.graph.store.GraphStore` backend — heap, ``.rgf``
  memmap, or shared memory — since the base is just a ``Graph`` view);
* a small mutable **overlay**: per-vertex sets of added and removed
  edges plus labels of appended vertices;
* an **epoch** counter, bumped once per applied mutation batch. Two
  reads at the same epoch observe the same graph; every cache in the
  stack (plan/prep caches in :class:`~repro.core.session.MatchSession`)
  keys on the epoch, which makes invalidation exact rather than
  heuristic.

Reads that matter to incremental candidate maintenance (``degree``,
``neighbors``, ``nlf``, ``has_edge``) are answered through the overlay
in O(overlay) extra work, so a delta pass never pays for a CSR rebuild.
:meth:`DynamicGraph.snapshot` materializes the current edge set as a
plain immutable ``Graph`` **through the normal constructor**, which
canonicalizes to the same sorted-CSR layout a from-scratch build would
produce — snapshots are byte-identical to rebuilding the graph from its
edge list, which is what makes the mutate-then-match differential in
``repro.qa`` a byte-level comparison instead of a set-level one.

When the overlay grows past ``compact_threshold`` × |E(base)| ops,
:meth:`compact` folds it back into a canonical CSR base. Compaction
changes the representation, never the graph: the epoch does not move,
and the property suite pins snapshot byte-parity across arbitrary
mutate/compact interleavings.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import InvalidGraphError
from repro.graph.graph import Graph
from repro.dynamic.mutations import (
    ADD_EDGE,
    ADD_VERTEX,
    REMOVE_EDGE,
    Mutation,
)

__all__ = ["DynamicGraph", "MutationDelta"]


@dataclass(frozen=True)
class MutationDelta:
    """What one applied batch actually changed.

    No-op mutations (re-adding a present edge, removing an absent one)
    do not appear; consumers can propagate the delta literally.
    """

    epoch: int
    added_edges: Tuple[Tuple[int, int], ...] = ()
    removed_edges: Tuple[Tuple[int, int], ...] = ()
    added_vertices: Tuple[Tuple[int, int], ...] = ()  # (vertex, label)
    touched: frozenset = field(default_factory=frozenset)

    @property
    def empty(self) -> bool:
        return not (self.added_edges or self.removed_edges or self.added_vertices)


def _norm(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


class DynamicGraph:
    """A resident graph supporting ``add_edge``/``remove_edge``/``add_vertex``.

    Parameters
    ----------
    base:
        The initial immutable graph (any store backend).
    compact_threshold:
        Fold the overlay into a fresh canonical CSR base once the number
        of overlay edge ops exceeds this fraction of the base edge count
        (minimum 64 ops so tiny graphs don't thrash). ``None`` disables
        automatic compaction; :meth:`compact` stays available.

    Examples
    --------
    >>> g = DynamicGraph(Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)]))
    >>> delta = g.apply([Mutation("add_edge", 0, 2)])
    >>> (g.epoch, delta.added_edges)
    (1, ((0, 2),))
    >>> g.snapshot().num_edges
    3
    """

    def __init__(
        self,
        base: Graph,
        *,
        compact_threshold: Optional[float] = 0.25,
    ) -> None:
        if compact_threshold is not None and compact_threshold <= 0:
            raise ValueError("compact_threshold must be positive or None")
        self._lock = threading.RLock()
        self._base = base
        self._compact_threshold = compact_threshold
        self._epoch = 0
        self._added_adj: Dict[int, Set[int]] = {}
        self._removed_adj: Dict[int, Set[int]] = {}
        self._extra_labels: List[int] = []
        self._num_edges = base.num_edges
        self._snapshot: Optional[Graph] = None
        self._snapshot_epoch = -1
        self._compactions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Mutation-batch counter; bumped once per non-empty :meth:`apply`."""
        return self._epoch

    @property
    def base(self) -> Graph:
        """The current immutable base (advances on :meth:`compact`)."""
        return self._base

    @property
    def num_vertices(self) -> int:
        return self._base.num_vertices + len(self._extra_labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def overlay_size(self) -> int:
        """Number of live overlay edge ops (added + removed)."""
        added = sum(len(s) for s in self._added_adj.values()) // 2
        removed = sum(len(s) for s in self._removed_adj.values()) // 2
        return added + removed

    @property
    def compactions(self) -> int:
        """How many times the overlay has been folded into the base."""
        return self._compactions

    def label(self, v: int) -> int:
        base_n = self._base.num_vertices
        if v < base_n:
            return self._base.label(v)
        return self._extra_labels[v - base_n]

    def degree(self, v: int) -> int:
        base_n = self._base.num_vertices
        base_deg = self._base.degree(v) if v < base_n else 0
        return (
            base_deg
            + len(self._added_adj.get(v, ()))
            - len(self._removed_adj.get(v, ()))
        )

    def has_edge(self, u: int, v: int) -> bool:
        if v in self._added_adj.get(u, ()):
            return True
        if v in self._removed_adj.get(u, ()):
            return False
        base_n = self._base.num_vertices
        if u < base_n and v < base_n:
            return self._base.has_edge(u, v)
        return False

    def neighbors(self, v: int) -> List[int]:
        """Sorted neighbor list of ``v`` through the overlay."""
        base_n = self._base.num_vertices
        removed = self._removed_adj.get(v)
        if v < base_n:
            if removed:
                out = [w for w in self._base.neighbors(v).tolist() if w not in removed]
            else:
                out = self._base.neighbors(v).tolist()
        else:
            out = []
        added = self._added_adj.get(v)
        if added:
            out.extend(added)
            out.sort()
        return out

    def nlf(self, v: int) -> Dict[int, int]:
        """Neighbor label frequency of ``v`` through the overlay."""
        counts: Dict[int, int] = {}
        for w in self.neighbors(v):
            lbl = self.label(w)
            counts[lbl] = counts.get(lbl, 0) + 1
        return counts

    def labels_list(self) -> List[int]:
        return self._base.labels.tolist() + list(self._extra_labels)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each live undirected edge once as ``(u, v)``, ``u < v``."""
        for u, v in self._base.edges():
            if v not in self._removed_adj.get(u, ()):
                yield (u, v)
        for u in sorted(self._added_adj):
            for v in sorted(self._added_adj[u]):
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_edge(self, u: int, v: int) -> MutationDelta:
        return self.apply([Mutation(ADD_EDGE, u, v)])

    def remove_edge(self, u: int, v: int) -> MutationDelta:
        return self.apply([Mutation(REMOVE_EDGE, u, v)])

    def add_vertex(self, label: int) -> int:
        """Append a fresh isolated vertex; returns its id."""
        next_id = self.num_vertices
        self.apply([Mutation(ADD_VERTEX, label)])
        return next_id

    def apply(self, batch: Sequence[Mutation]) -> MutationDelta:
        """Apply one mutation batch atomically; bump the epoch once.

        Ops inside a batch see the effects of earlier ops in the same
        batch (an ``add_vertex`` followed by an ``add_edge`` to the new
        id is the canonical insert pattern). An entirely no-op batch
        leaves the epoch unchanged and returns an empty delta.
        """
        with self._lock:
            added: List[Tuple[int, int]] = []
            removed: List[Tuple[int, int]] = []
            new_vertices: List[Tuple[int, int]] = []
            touched: Set[int] = set()
            for mut in batch:
                if mut.op == ADD_VERTEX:
                    if mut.a < 0:
                        raise InvalidGraphError("labels must be non-negative integers")
                    vid = self.num_vertices
                    self._extra_labels.append(int(mut.a))
                    new_vertices.append((vid, int(mut.a)))
                    touched.add(vid)
                    continue
                u, v = int(mut.a), int(mut.b)
                if u == v:
                    raise InvalidGraphError(f"self loop on vertex {u} is not allowed")
                n = self.num_vertices
                if not (0 <= u < n and 0 <= v < n):
                    raise InvalidGraphError(
                        f"edge ({u}, {v}) out of range for {n} vertices"
                    )
                base_n = self._base.num_vertices
                in_base = (
                    u < base_n and v < base_n and self._base.has_edge(u, v)
                )
                if mut.op == ADD_EDGE:
                    if self.has_edge(u, v):
                        continue
                    if in_base:
                        # Re-adding a base edge cancels its removal record.
                        self._discard(self._removed_adj, u, v)
                    else:
                        self._record(self._added_adj, u, v)
                    self._num_edges += 1
                    added.append(_norm(u, v))
                else:
                    if not self.has_edge(u, v):
                        continue
                    if in_base:
                        self._record(self._removed_adj, u, v)
                    else:
                        # Removing an overlay edge cancels its insertion.
                        self._discard(self._added_adj, u, v)
                    self._num_edges -= 1
                    removed.append(_norm(u, v))
                touched.add(u)
                touched.add(v)

            if not (added or removed or new_vertices):
                return MutationDelta(epoch=self._epoch)
            self._epoch += 1
            self._snapshot = None
            delta = MutationDelta(
                epoch=self._epoch,
                added_edges=tuple(added),
                removed_edges=tuple(removed),
                added_vertices=tuple(new_vertices),
                touched=frozenset(touched),
            )
            if self._compact_due():
                self.compact()
            return delta

    @staticmethod
    def _record(adj: Dict[int, Set[int]], u: int, v: int) -> None:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)

    @staticmethod
    def _discard(adj: Dict[int, Set[int]], u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            entry = adj.get(a)
            if entry is not None:
                entry.discard(b)
                if not entry:
                    del adj[a]

    def _compact_due(self) -> bool:
        if self._compact_threshold is None:
            return False
        floor = max(64, int(self._compact_threshold * self._base.num_edges))
        return self.overlay_size > floor

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def snapshot(self) -> Graph:
        """The current graph as an immutable canonical-CSR ``Graph``.

        Cached per epoch; byte-identical (labels/offsets/neighbors
        arrays) to ``Graph(labels_list(), list(edges()))`` built from
        scratch, because it *is* that constructor call.
        """
        with self._lock:
            if self._snapshot is None or self._snapshot_epoch != self._epoch:
                self._snapshot = Graph(
                    labels=self.labels_list(), edges=list(self.edges())
                )
                self._snapshot_epoch = self._epoch
            return self._snapshot

    def versioned_snapshot(self) -> Tuple[int, Graph]:
        """``(epoch, snapshot)`` read atomically under the graph lock.

        Consumers that pair the two (a session pinning its resident
        view) must use this instead of reading ``epoch`` and calling
        :meth:`snapshot` separately, which could interleave with a
        concurrent :meth:`apply`.
        """
        with self._lock:
            return self._epoch, self.snapshot()

    def compact(self) -> Graph:
        """Fold the overlay into a fresh canonical CSR base.

        The epoch is untouched — compaction changes the representation,
        not the graph. Returns the new base.
        """
        with self._lock:
            base = self.snapshot()
            self._base = base
            self._added_adj = {}
            self._removed_adj = {}
            self._extra_labels = []
            self._compactions += 1
            return base

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"epoch={self._epoch}, overlay={self.overlay_size})"
        )

"""Continuous queries: ``subscribe(query)`` over a mutating graph.

A :class:`Subscription` registers a query against a
:class:`~repro.dynamic.overlay.DynamicGraph` and, after every mutation
batch, reports the exact embedding delta:

* **removed** embeddings are stored ones whose image uses a removed
  edge (vertices are never deleted, so that is the only way to die);
* **added** embeddings must use at least one newly-inserted data edge —
  so instead of re-matching the whole graph, each added edge ``(a, b)``
  is pinned onto each label-compatible query edge ``(u0, u1)`` in both
  orientations and the remaining query vertices are enumerated over the
  incrementally-maintained candidate sets, restricted so ``C(u0) = {a}``
  and ``C(u1) = {b}``.

The per-edge enumeration rides the frame machine's pause/resume
protocol — ``start(..., emit_rows=True)`` then one ``advance()`` per
leaf batch, exactly like :func:`repro.enumeration.streaming.iter_matches`
— so delta work is proportional to the delta (plus the candidate
maintenance), never to the number of embeddings that did not change.
Duplicates (an embedding using two new edges is discovered from both)
collapse in the result set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import InvalidQueryError
from repro.filtering.auxiliary import AuxiliaryStructure
from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.graph.ops import connected
from repro.enumeration.frames import FrameMachine
from repro.enumeration.local_candidates import IntersectionLC
from repro.utils.kernels import get_kernel
from repro.dynamic.incremental import IncrementalCandidates
from repro.dynamic.overlay import DynamicGraph, MutationDelta

__all__ = ["Subscription", "SubscriptionUpdate"]

Embedding = Tuple[int, ...]


@dataclass(frozen=True)
class SubscriptionUpdate:
    """The exact embedding delta produced by one mutation batch."""

    epoch: int
    added: Tuple[Embedding, ...]
    removed: Tuple[Embedding, ...]

    @property
    def empty(self) -> bool:
        return not (self.added or self.removed)


class Subscription:
    """A standing query whose embedding set tracks the graph.

    Parameters
    ----------
    query:
        The pattern (same validity rules as ``match``: connected, at
        least 3 vertices).
    data:
        The resident :class:`DynamicGraph`.
    kernel:
        Intersection-kernel registry name for the enumeration (``None``
        defers to ``REPRO_KERNEL`` / the auto heuristic).
    match_limit:
        Safety cap on stored embeddings; exceeding it raises rather
        than silently truncating the standing result set.
    """

    def __init__(
        self,
        query: Graph,
        data: DynamicGraph,
        kernel: Optional[str] = None,
        match_limit: int = 100_000,
    ) -> None:
        if query.num_vertices < 3:
            raise InvalidQueryError("queries must have at least 3 vertices")
        if not connected(query):
            raise InvalidQueryError("query graphs must be connected")
        self.query = query
        self.data = data
        self._kernel = kernel
        self._match_limit = match_limit
        self.candidates = IncrementalCandidates(query, data)
        self._matches: Set[Embedding] = set(self._enumerate(restrict=None))
        self._guard_limit()
        self.epoch = data.epoch

    # ------------------------------------------------------------------

    @property
    def num_matches(self) -> int:
        return len(self._matches)

    def matches(self) -> List[Embedding]:
        """The current embedding set, sorted (each tuple is indexed by
        query vertex id)."""
        return sorted(self._matches)

    def mappings(self) -> List[Dict[int, int]]:
        """The current embeddings as ``{query_vertex: data_vertex}`` dicts."""
        return [
            {u: v for u, v in enumerate(row)} for row in self.matches()
        ]

    # ------------------------------------------------------------------

    def on_delta(self, delta: MutationDelta) -> SubscriptionUpdate:
        """Fold one applied mutation batch; report the embedding delta.

        A delta at or below the subscription's epoch is a no-op — it was
        already incorporated (a subscription created after a batch was
        applied starts current, and the service fans one delta out to
        several sessions).
        """
        if delta.empty or delta.epoch <= self.epoch:
            return SubscriptionUpdate(epoch=self.epoch, added=(), removed=())
        self.candidates.apply_delta(delta)
        self.epoch = delta.epoch

        removed: List[Embedding] = []
        if delta.removed_edges:
            gone = set(delta.removed_edges)
            q_edges = list(self.query.edges())
            for emb in self._matches:
                for u, w in q_edges:
                    a, b = emb[u], emb[w]
                    if ((a, b) if a < b else (b, a)) in gone:
                        removed.append(emb)
                        break
            self._matches.difference_update(removed)

        added: List[Embedding] = []
        if delta.added_edges:
            member = [set(lst) for lst in self.candidates.as_dict().values()]
            for a, b in delta.added_edges:
                for u0, u1 in self.query.edges():
                    for x, y in ((a, b), (b, a)):
                        if x not in member[u0] or y not in member[u1]:
                            continue
                        for emb in self._enumerate(restrict={u0: x, u1: y}):
                            if emb not in self._matches:
                                self._matches.add(emb)
                                added.append(emb)
        self._guard_limit()
        return SubscriptionUpdate(
            epoch=self.epoch, added=tuple(sorted(added)), removed=tuple(sorted(removed))
        )

    # ------------------------------------------------------------------

    def _guard_limit(self) -> None:
        if len(self._matches) > self._match_limit:
            raise InvalidQueryError(
                f"subscription exceeds match_limit={self._match_limit}"
            )

    def _order_from(self, root: int) -> List[int]:
        """A BFS matching order rooted at ``root`` (connected prefixes)."""
        order = [root]
        seen = {root}
        i = 0
        while i < len(order):
            for w in self.query.neighbors(order[i]).tolist():
                if w not in seen:
                    seen.add(w)
                    order.append(w)
            i += 1
        return order

    def _enumerate(self, restrict: Optional[Dict[int, int]]) -> List[Embedding]:
        """Enumerate embeddings over the maintained candidate sets.

        ``restrict`` pins query vertices to single data vertices (the
        added-edge anchors); ``None`` enumerates the full set.
        """
        snapshot = self.data.snapshot()
        nq = self.query.num_vertices
        base = self.candidates.as_dict()
        if restrict:
            for u, v in restrict.items():
                base[u] = [v] if v in set(base[u]) else []
        candidates = CandidateSets(self.query, [base[u] for u in range(nq)])
        if candidates.has_empty_set:
            return []
        auxiliary = AuxiliaryStructure.build(
            self.query, snapshot, candidates, scope="all"
        )
        backend = get_kernel(self._kernel, data=snapshot, candidates=candidates)
        order = self._order_from(next(iter(restrict)) if restrict else 0)
        machine = FrameMachine(IntersectionLC(kernel=backend))
        machine.start(
            self.query,
            snapshot,
            candidates,
            auxiliary,
            order,
            store_limit=0,
            emit_rows=True,
        )
        out: List[Embedding] = []
        while True:
            rows = machine.advance()
            if rows is None:
                return out
            for row in rows.tolist():
                out.append(tuple(int(row[u]) for u in range(nq)))
"""Enumeration: the backtracking search of Algorithm 1 (paper Section 3.3).

The study's third axis. Two engines implement the same semantics — the
iterative :class:`~repro.enumeration.frames.FrameMachine` (default;
explicit frame stacks, vectorized conflict filtering, leaf batching,
pause/resume) and the recursive
:class:`~repro.enumeration.engine.BacktrackingEngine` (retired from the
default registry; opt-in differential baseline for one more release) —
selected through the :mod:`~repro.enumeration.engines` registry. The
:mod:`~repro.enumeration.local_candidates` module provides the four
ComputeLC strategies (Algorithms 2–5); failing-sets pruning (Section 3.4)
is a flag on either engine.
"""

from repro.enumeration.engine import BacktrackingEngine
from repro.enumeration.engines import (
    DEFAULT_ENGINE,
    available_engines,
    create_engine,
    enable_recursive_baseline,
    register_engine,
    resolve_engine_name,
)
from repro.enumeration.frames import FrameMachine, FrameSnapshot
from repro.enumeration.local_candidates import (
    CandidateScanLC,
    IntersectionLC,
    LCContext,
    LocalCandidateMethod,
    NeighborScanLC,
    TreeAdjacencyLC,
    VF2ppLC,
)
from repro.enumeration.stats import EnumerationOutcome, EnumerationStats
from repro.enumeration.streaming import iter_matches
from repro.enumeration.support import AdaptiveSelector, EmbeddingStore

__all__ = [
    "BacktrackingEngine",
    "FrameMachine",
    "FrameSnapshot",
    "DEFAULT_ENGINE",
    "enable_recursive_baseline",
    "register_engine",
    "available_engines",
    "resolve_engine_name",
    "create_engine",
    "AdaptiveSelector",
    "EmbeddingStore",
    "LocalCandidateMethod",
    "LCContext",
    "NeighborScanLC",
    "VF2ppLC",
    "CandidateScanLC",
    "TreeAdjacencyLC",
    "IntersectionLC",
    "EnumerationOutcome",
    "EnumerationStats",
    "iter_matches",
]

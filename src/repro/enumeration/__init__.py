"""Enumeration: the backtracking search of Algorithm 1 (paper Section 3.3).

The study's third axis. :class:`~repro.enumeration.engine.BacktrackingEngine`
implements the shared recursion; the
:mod:`~repro.enumeration.local_candidates` module provides the four
ComputeLC strategies (Algorithms 2–5); failing-sets pruning (Section 3.4)
is a flag on the engine.
"""

from repro.enumeration.engine import BacktrackingEngine
from repro.enumeration.local_candidates import (
    CandidateScanLC,
    IntersectionLC,
    LCContext,
    LocalCandidateMethod,
    NeighborScanLC,
    TreeAdjacencyLC,
    VF2ppLC,
)
from repro.enumeration.stats import EnumerationOutcome, EnumerationStats
from repro.enumeration.streaming import iter_matches

__all__ = [
    "BacktrackingEngine",
    "LocalCandidateMethod",
    "LCContext",
    "NeighborScanLC",
    "VF2ppLC",
    "CandidateScanLC",
    "TreeAdjacencyLC",
    "IntersectionLC",
    "EnumerationOutcome",
    "EnumerationStats",
    "iter_matches",
]

"""The recursive backtracking engine (the paper's Algorithm 1).

One engine drives every algorithm in the study. It is parameterized by

* a :class:`~repro.enumeration.local_candidates.LocalCandidateMethod`
  (Algorithms 2–5),
* a matching order φ (static), or DP-iso's adaptive selection state,
* the failing-sets optimization flag (Section 3.4),
* the paper's two run limits: a match cap (the paper stops at 10^5
  matches) and a wall-clock budget (the paper kills at five minutes and
  reports the query unsolved).

The recursion mirrors Algorithm 1 lines 4–12: select an extendable vertex,
compute ``LC(u, M)``, loop over candidates not already used, extend and
recurse.

This engine is the *reference semantics*: the iterative
:class:`~repro.enumeration.frames.FrameMachine` must produce byte-identical
embeddings and identical counters, which the QA differential harness and
the engine-parity property suite enforce. It is retired from the default
engine registry and retained one more release as that differential
baseline — opt in with ``REPRO_ENGINE=recursive`` or
:func:`repro.enumeration.engines.enable_recursive_baseline`, then select
it with ``engine="recursive"``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.errors import BudgetExceeded
from repro.filtering.auxiliary import AuxiliaryStructure
from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.enumeration.local_candidates import LCContext, LocalCandidateMethod
from repro.enumeration.stats import EnumerationOutcome, EnumerationStats
from repro.enumeration.support import (
    DEADLINE_STRIDE,
    AdaptiveSelector,
    EmbeddingStore,
    prepare_static_order,
)
from repro.ordering.dpiso import DPisoAdaptiveState
from repro.utils.timer import Deadline, Timer

__all__ = ["BacktrackingEngine"]


class _StopSearch(Exception):
    """Internal signal: the match cap was reached; unwind and report solved."""


class BacktrackingEngine:
    """Algorithm 1 with pluggable ComputeLC, ordering mode and failing sets.

    Parameters
    ----------
    lc_method:
        The local-candidate computation (Algorithm 2, 3, 4 or 5).
    use_failing_sets:
        Enable DP-iso's failing-sets pruning (Section 3.4).
    adaptive:
        When given, ignore the static order and run DP-iso's adaptive
        extendable-vertex selection against this state.
    """

    #: Registry name (see :mod:`repro.enumeration.engines`).
    name = "recursive"

    def __init__(
        self,
        lc_method: LocalCandidateMethod,
        use_failing_sets: bool = False,
        adaptive: Optional[DPisoAdaptiveState] = None,
    ) -> None:
        self.lc_method = lc_method
        self.use_failing_sets = use_failing_sets
        self.adaptive = adaptive

    # ------------------------------------------------------------------

    def run(
        self,
        query: Graph,
        data: Graph,
        candidates: Optional[CandidateSets],
        auxiliary: Optional[AuxiliaryStructure],
        order: Optional[Sequence[int]],
        tree_parent: Optional[Sequence[int]] = None,
        match_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
        store_limit: int = 10_000,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> EnumerationOutcome:
        """Enumerate matches of ``query`` in ``data``.

        ``order`` is the matching order φ (ignored in adaptive mode).
        ``tree_parent`` optionally designates ``u.p`` per query vertex (CFL
        must use its BFS-tree parent so Algorithm 4 hits the tree-scoped
        index); otherwise the φ-earliest backward neighbor is the parent.
        ``store_limit`` caps how many embeddings are retained (counting is
        unaffected). ``cancel`` is polled at the deadline stride;
        returning True aborts the search as unsolved.
        """
        n = query.num_vertices
        ctx = LCContext(
            query=query,
            data=data,
            candidates=candidates,
            auxiliary=auxiliary,
            mapping=[-1] * n,
            used={},
        )
        self.lc_method.prepare(ctx)

        self._ctx = ctx
        self._stats = EnumerationStats()
        self._deadline = Deadline(time_limit) if time_limit else None
        self._cancel = cancel
        self._tick = DEADLINE_STRIDE
        self._match_limit = match_limit
        self._num_matches = 0
        self._store = EmbeddingStore(n, store_limit)
        self._full_mask = (1 << n) - 1

        if self.adaptive is None:
            if order is None:
                raise ValueError("static mode requires a matching order")
            info = prepare_static_order(query, list(order), tree_parent)
            self._order = info.order
            self._backward = info.backward
            self._parent = info.parent
            self._backward_mask = info.backward_mask
            self._selector = None
        else:
            self._selector = AdaptiveSelector(
                self.lc_method, self.adaptive, ctx, self._stats
            )

        solved = True
        with Timer() as timer:
            try:
                if candidates is not None and candidates.has_empty_set:
                    pass  # no match possible; report zero immediately
                elif self.adaptive is not None:
                    if self.use_failing_sets:
                        self._search_adaptive_fs(0)
                    else:
                        self._search_adaptive(0)
                elif self.use_failing_sets:
                    self._search_static_fs(0)
                else:
                    self._search_static(0)
            except _StopSearch:
                pass
            except BudgetExceeded:
                solved = False

        return EnumerationOutcome(
            num_matches=self._num_matches,
            solved=solved,
            embeddings=self._store.as_tuples(),
            stats=self._stats,
            elapsed=timer.elapsed,
        )

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _record_match(self) -> None:
        self._num_matches += 1
        self._store.append(self._ctx.mapping)
        if (
            self._match_limit is not None
            and self._num_matches >= self._match_limit
        ):
            raise _StopSearch

    def _check_budget(self) -> None:
        self._tick -= 1
        if self._tick <= 0:
            self._tick = DEADLINE_STRIDE
            if self._deadline is not None and self._deadline.expired():
                raise BudgetExceeded
            if self._cancel is not None and self._cancel():
                raise BudgetExceeded


    # ------------------------------------------------------------------
    # Static order
    # ------------------------------------------------------------------

    def _search_static(self, depth: int) -> None:
        stats = self._stats
        stats.recursion_calls += 1
        self._check_budget()
        ctx = self._ctx
        if depth == len(self._order):
            self._record_match()
            return
        u = self._order[depth]
        lc = self.lc_method.compute(
            ctx, u, self._backward[depth], self._parent[depth]
        )
        mapping, used = ctx.mapping, ctx.used
        for v in lc:
            stats.candidates_scanned += 1
            if v in used:
                stats.conflicts += 1
                continue
            mapping[u] = v
            used[v] = u
            self._search_static(depth + 1)
            del used[v]
            mapping[u] = -1

    def _search_static_fs(self, depth: int) -> int:
        """Failing-sets variant; returns the subtree's failing set bitmask."""
        stats = self._stats
        stats.recursion_calls += 1
        self._check_budget()
        ctx = self._ctx
        if depth == len(self._order):
            self._record_match()
            return self._full_mask
        u = self._order[depth]
        u_bit = 1 << u
        lc = self.lc_method.compute(
            ctx, u, self._backward[depth], self._parent[depth]
        )
        if len(lc) == 0:
            # Emptyset class: the failure involves u and the vertices whose
            # mappings determined LC(u, M).
            return u_bit | self._backward_mask[depth]
        mapping, used = ctx.mapping, ctx.used
        fs_total = 0
        for v in lc:
            stats.candidates_scanned += 1
            conflict_owner = used.get(v)
            if conflict_owner is not None:
                stats.conflicts += 1
                child = u_bit | (1 << conflict_owner)
            else:
                mapping[u] = v
                used[v] = u
                child = self._search_static_fs(depth + 1)
                del used[v]
                mapping[u] = -1
            if not child & u_bit:
                # The failure below does not involve u: mapping u to any
                # other candidate fails identically — skip the siblings.
                stats.failing_set_prunes += 1
                return child
            fs_total |= child
        return fs_total | self._backward_mask[depth]

    # ------------------------------------------------------------------
    # Adaptive order (DP-iso)
    # ------------------------------------------------------------------

    def _search_adaptive(self, depth: int) -> None:
        stats = self._stats
        stats.recursion_calls += 1
        self._check_budget()
        ctx = self._ctx
        if depth == ctx.query.num_vertices:
            self._record_match()
            return
        selection = self._selector.select()
        assert selection is not None, "connected query always has an extendable vertex"
        u, lc, _ = selection
        mapping, used = ctx.mapping, ctx.used
        for v in lc:
            stats.candidates_scanned += 1
            if v in used:
                stats.conflicts += 1
                continue
            mapping[u] = v
            used[v] = u
            self._search_adaptive(depth + 1)
            del used[v]
            mapping[u] = -1

    def _search_adaptive_fs(self, depth: int) -> int:
        stats = self._stats
        stats.recursion_calls += 1
        self._check_budget()
        ctx = self._ctx
        if depth == ctx.query.num_vertices:
            self._record_match()
            return self._full_mask
        selection = self._selector.select()
        assert selection is not None, "connected query always has an extendable vertex"
        u, lc, backward = selection
        u_bit = 1 << u
        backward_mask = 0
        for w in backward:
            backward_mask |= 1 << w
        if len(lc) == 0:
            return u_bit | backward_mask
        mapping, used = ctx.mapping, ctx.used
        fs_total = 0
        for v in lc:
            stats.candidates_scanned += 1
            conflict_owner = used.get(v)
            if conflict_owner is not None:
                stats.conflicts += 1
                child = u_bit | (1 << conflict_owner)
            else:
                mapping[u] = v
                used[v] = u
                child = self._search_adaptive_fs(depth + 1)
                del used[v]
                mapping[u] = -1
            if not child & u_bit:
                stats.failing_set_prunes += 1
                return child
            fs_total |= child
        return fs_total | backward_mask

"""Enumeration-engine registry, mirroring the kernel registry.

Two engines implement the same Algorithm 1 semantics:

* ``"recursive"`` — :class:`~repro.enumeration.engine.BacktrackingEngine`,
  the reference implementation, retained one release as the differential
  baseline;
* ``"iterative"`` — :class:`~repro.enumeration.frames.FrameMachine`, the
  explicit frame machine (the default: same embeddings and counters,
  several times faster on enumeration-heavy workloads).

Selection follows the kernel convention: an explicit name
(``match(engine=...)`` / ``--engine``) wins, then the ``REPRO_ENGINE``
environment variable, then :data:`DEFAULT_ENGINE`. The resolved name is
recorded on :class:`~repro.core.result.MatchResult`.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.enumeration.engine import BacktrackingEngine
from repro.enumeration.frames import FrameMachine

__all__ = [
    "DEFAULT_ENGINE",
    "register_engine",
    "available_engines",
    "resolve_engine_name",
    "create_engine",
]

#: Used when neither the caller nor ``REPRO_ENGINE`` picks an engine.
DEFAULT_ENGINE = "iterative"

_FACTORIES: Dict[str, Callable[..., object]] = {
    "recursive": BacktrackingEngine,
    "iterative": FrameMachine,
}


def register_engine(name: str, factory: Callable[..., object]) -> None:
    """Register an engine factory under ``name`` (overwrites silently).

    The factory must accept the :class:`BacktrackingEngine` constructor
    signature ``(lc_method, use_failing_sets=..., adaptive=...)`` and
    produce an object with its ``run`` contract.
    """
    _FACTORIES[name] = factory


def available_engines() -> List[str]:
    """Registered engine names, sorted."""
    return sorted(_FACTORIES)


def resolve_engine_name(name: Optional[str] = None) -> str:
    """Resolve a requested engine name to a registered one.

    ``None`` falls back to the ``REPRO_ENGINE`` environment variable,
    then to :data:`DEFAULT_ENGINE`. Unknown names raise
    :class:`~repro.errors.ConfigurationError`.
    """
    if name is None:
        name = os.environ.get("REPRO_ENGINE") or DEFAULT_ENGINE
    if name not in _FACTORIES:
        known = ", ".join(available_engines())
        raise ConfigurationError(
            f"unknown enumeration engine {name!r}; available: {known}"
        )
    return name


def create_engine(name: Optional[str], lc_method, use_failing_sets=False, adaptive=None):
    """Instantiate the engine ``name`` resolves to."""
    factory = _FACTORIES[resolve_engine_name(name)]
    return factory(
        lc_method, use_failing_sets=use_failing_sets, adaptive=adaptive
    )

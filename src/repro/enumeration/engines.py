"""Enumeration-engine registry, mirroring the kernel registry.

The default registry carries one engine: ``"iterative"`` —
:class:`~repro.enumeration.frames.FrameMachine`, the explicit frame
machine that has been the default since it reached embedding and counter
parity with the recursive reference implementation.

The ``"recursive"`` :class:`~repro.enumeration.engine.BacktrackingEngine`
is **retired from the default registry** but kept for one more release
as the QA opt-in differential baseline: setting ``REPRO_ENGINE=recursive``
(or calling :func:`enable_recursive_baseline`) re-registers it, which is
how the engine-parity suites and the QA fuzz sweep run it. Without the
opt-in, requesting ``engine="recursive"`` raises
:class:`~repro.errors.ConfigurationError` like any unknown engine.

Selection follows the kernel convention: an explicit name
(``match(engine=...)`` / ``--engine``) wins, then the ``REPRO_ENGINE``
environment variable, then :data:`DEFAULT_ENGINE`. The resolved name is
recorded on :class:`~repro.core.result.MatchResult`.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.enumeration.engine import BacktrackingEngine
from repro.enumeration.frames import FrameMachine

__all__ = [
    "DEFAULT_ENGINE",
    "enable_recursive_baseline",
    "register_engine",
    "available_engines",
    "resolve_engine_name",
    "create_engine",
]

#: Used when neither the caller nor ``REPRO_ENGINE`` picks an engine.
DEFAULT_ENGINE = "iterative"

_FACTORIES: Dict[str, Callable[..., object]] = {
    "iterative": FrameMachine,
}


def enable_recursive_baseline() -> None:
    """Opt back into the retired recursive engine (idempotent).

    The QA harness and the engine-parity suites call this so the frame
    machine keeps a live differential baseline for one more release;
    everything else should not.
    """
    _FACTORIES.setdefault("recursive", BacktrackingEngine)


if os.environ.get("REPRO_ENGINE") == "recursive":
    # The env-var opt-in: honored at import so existing workflows
    # (CLI diff runs, CI parity jobs) keep working unchanged.
    enable_recursive_baseline()


def register_engine(name: str, factory: Callable[..., object]) -> None:
    """Register an engine factory under ``name`` (overwrites silently).

    The factory must accept the :class:`BacktrackingEngine` constructor
    signature ``(lc_method, use_failing_sets=..., adaptive=...)`` and
    produce an object with its ``run`` contract.
    """
    _FACTORIES[name] = factory


def available_engines() -> List[str]:
    """Registered engine names, sorted."""
    return sorted(_FACTORIES)


def resolve_engine_name(name: Optional[str] = None) -> str:
    """Resolve a requested engine name to a registered one.

    ``None`` falls back to the ``REPRO_ENGINE`` environment variable,
    then to :data:`DEFAULT_ENGINE`. Unknown names — including the
    retired ``"recursive"`` without its opt-in — raise
    :class:`~repro.errors.ConfigurationError`.
    """
    if name is None:
        name = os.environ.get("REPRO_ENGINE") or DEFAULT_ENGINE
        if name == "recursive":
            # A fresh env opt-in set after import still counts.
            enable_recursive_baseline()
    if name not in _FACTORIES:
        if name == "recursive" and os.environ.get("REPRO_ENGINE") == "recursive":
            enable_recursive_baseline()
        else:
            known = ", ".join(available_engines())
            raise ConfigurationError(
                f"unknown enumeration engine {name!r}; available: {known} "
                "(the retired 'recursive' baseline needs "
                "REPRO_ENGINE=recursive or enable_recursive_baseline())"
            )
    return name


def create_engine(name: Optional[str], lc_method, use_failing_sets=False, adaptive=None):
    """Instantiate the engine ``name`` resolves to."""
    factory = _FACTORIES[resolve_engine_name(name)]
    return factory(
        lc_method, use_failing_sets=use_failing_sets, adaptive=adaptive
    )

"""The iterative frame-machine enumeration engine.

This replaces the recursive descent of
:class:`~repro.enumeration.engine.BacktrackingEngine` with an explicit
machine over per-depth *frames*. A DFS visits at most one search node per
depth at a time, so the "stack" is a set of preallocated per-depth slots:

* ``mapping`` — one shared int64 array, ``mapping[u]`` = data vertex (-1);
* ``visited``/``owner`` — boolean/int64 arrays over data vertices that
  replace the ``used`` dict (``owner[v]`` = query vertex, valid while
  ``visited[v]``);
* per depth: the frame's query vertex, its *valid* candidate array
  (conflicts filtered out in one vectorized pass), the original-index
  array needed for exact counter parity, a cursor, and the failing-set
  accumulators.

Two structural wins over the recursion:

1. **Vectorized conflict filtering.** ``used`` contains exactly the
   ancestors of a frame, and ancestors do not change while the frame
   iterates (descendants always unmap before control returns). The
   injectivity mask is therefore computed once per frame —
   ``visited[candidates]`` — instead of one dict probe per candidate per
   step.
2. **Leaf batching.** At depth ``n-1`` every valid candidate is a
   complete match; the machine records the whole run of them at once
   (one ``np.repeat`` row build, and none at all when embeddings are
   neither stored nor emitted) instead of paying one recursive call plus
   one tuple conversion per match.

Counter parity with the recursive engine is exact — ``recursion_calls``,
``candidates_scanned``, ``conflicts``, ``failing_set_prunes`` and
``adaptive_lc_reused`` all match, as do the embeddings byte-for-byte.
The engine-parity property suite and the QA differential harness enforce
this.

Pause/resume: the machine's state lives on the object, so
:meth:`FrameMachine.advance` yields one leaf batch at a time —
:func:`repro.enumeration.streaming.iter_matches` is a thin generator over
it. :meth:`FrameMachine.save_state` / :meth:`FrameMachine.restore_state`
snapshot and rewind the full search position for checkpointing and fair
scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BudgetExceeded
from repro.filtering.auxiliary import AuxiliaryStructure
from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.enumeration.local_candidates import LCContext, LocalCandidateMethod
from repro.enumeration.stats import EnumerationOutcome, EnumerationStats
from repro.enumeration.support import (
    DEADLINE_STRIDE,
    AdaptiveSelector,
    EmbeddingStore,
    prepare_static_order,
)
from repro.ordering.dpiso import DPisoAdaptiveState
from repro.utils.timer import Deadline, Timer

__all__ = ["FrameMachine", "FrameSnapshot"]


class _VisitedView:
    """Dict façade over the visited/owner arrays for ``LCContext.used``.

    ComputeLC methods that consult the partial embedding (VF2++'s
    lookahead) only need membership tests and owner lookups; this view
    serves them straight from the arrays without maintaining a dict.
    """

    __slots__ = ("_visited", "_owner")

    def __init__(self, visited: np.ndarray, owner: np.ndarray) -> None:
        self._visited = visited
        self._owner = owner

    def __contains__(self, v: int) -> bool:
        return bool(self._visited[v])

    def get(self, v: int, default: Optional[int] = None) -> Optional[int]:
        if self._visited[v]:
            return int(self._owner[v])
        return default

    def __len__(self) -> int:
        return int(self._visited.sum())


@dataclass
class FrameSnapshot:
    """A full search position, produced by :meth:`FrameMachine.save_state`.

    Restoring rewinds the machine to exactly this node of the search tree
    (mapping, frames, counters, retained-embedding count). The adaptive
    selector's memo cache is deliberately not captured — entries
    self-validate against the current mapping, so a stale cache is
    semantically inert (only ``adaptive_lc_reused`` may differ after a
    rewind).
    """

    depth: int
    f_u: List[int]
    f_v: List[int]
    f_valid: List[Optional[np.ndarray]]
    f_orig: List[Optional[np.ndarray]]
    f_pos: List[int]
    f_last: List[int]
    f_lclen: List[int]
    f_fs: List[int]
    f_bmask: List[int]
    f_cbits: List[int]
    mapping: np.ndarray
    visited: np.ndarray
    owner: np.ndarray
    num_matches: int
    solved: bool
    done: bool
    tick: int
    stats: EnumerationStats
    store_count: int


class FrameMachine:
    """Iterative Algorithm 1: frames instead of recursion.

    Drop-in engine: same constructor and :meth:`run` contract as
    :class:`~repro.enumeration.engine.BacktrackingEngine`, same
    embeddings and counters. Additionally exposes the incremental
    :meth:`start` / :meth:`advance` protocol for streaming consumers.
    """

    #: Registry name (see :mod:`repro.enumeration.engines`).
    name = "iterative"

    def __init__(
        self,
        lc_method: LocalCandidateMethod,
        use_failing_sets: bool = False,
        adaptive: Optional[DPisoAdaptiveState] = None,
    ) -> None:
        self.lc_method = lc_method
        self.use_failing_sets = use_failing_sets
        self.adaptive = adaptive

    # ------------------------------------------------------------------
    # One-shot API (mirrors BacktrackingEngine.run)
    # ------------------------------------------------------------------

    def run(
        self,
        query: Graph,
        data: Graph,
        candidates: Optional[CandidateSets],
        auxiliary: Optional[AuxiliaryStructure],
        order: Optional[Sequence[int]],
        tree_parent: Optional[Sequence[int]] = None,
        match_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
        store_limit: int = 10_000,
        cancel: Optional[Callable[[], bool]] = None,
        root_window: Optional[Tuple[int, int]] = None,
    ) -> EnumerationOutcome:
        """Enumerate matches of ``query`` in ``data``; see the recursive
        engine for the parameter contract. ``cancel`` is polled at the
        deadline stride; returning True aborts the search as unsolved.
        ``root_window`` restricts the search to a slice of the root
        vertex's local candidates (see :meth:`start`)."""
        self.start(
            query,
            data,
            candidates,
            auxiliary,
            order,
            tree_parent=tree_parent,
            match_limit=match_limit,
            time_limit=time_limit,
            store_limit=store_limit,
            emit_rows=False,
            cancel=cancel,
            root_window=root_window,
        )
        with Timer() as timer:
            while self.advance() is not None:
                pass
        return EnumerationOutcome(
            num_matches=self._num_matches,
            solved=self._solved,
            embeddings=self._store.as_tuples(),
            stats=self._stats,
            elapsed=timer.elapsed,
        )

    # ------------------------------------------------------------------
    # Incremental API
    # ------------------------------------------------------------------

    def start(
        self,
        query: Graph,
        data: Graph,
        candidates: Optional[CandidateSets],
        auxiliary: Optional[AuxiliaryStructure],
        order: Optional[Sequence[int]],
        tree_parent: Optional[Sequence[int]] = None,
        match_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
        store_limit: int = 10_000,
        emit_rows: bool = False,
        cancel: Optional[Callable[[], bool]] = None,
        root_window: Optional[Tuple[int, int]] = None,
    ) -> "FrameMachine":
        """Initialize the machine at the root of the search tree.

        With ``emit_rows=True`` each :meth:`advance` call returns the next
        leaf batch as an int64 row array (one row per match, columns
        indexed by query vertex); with ``emit_rows=False`` matches are
        only counted/stored and :meth:`advance` runs to completion.

        ``cancel`` (a zero-argument callable) is polled together with the
        deadline every :data:`~repro.enumeration.support.DEADLINE_STRIDE`
        expansion steps; once it returns True the machine stops where it
        stands — between leaf batches — and reports ``solved=False``.
        This is the cooperative preemption hook the serving tier maps
        request deadlines and shutdown onto.

        ``root_window=(lo, hi)`` restricts the search to the half-open
        slice ``[lo, hi)`` of the root frame's local-candidate list. The
        machine then explores exactly the subtrees rooted at those
        candidates, in the same order the full search would visit them —
        the partitioning primitive behind :mod:`repro.parallel`: windows
        covering ``[0, len)`` without overlap reproduce the full run's
        matches (and all depth-local counters) as the concatenation of the
        per-window runs. Static orders only (adaptive selection has no
        fixed root list).
        """
        if root_window is not None and self.adaptive is not None:
            raise ValueError("root_window requires a static matching order")
        n = query.num_vertices
        self._n = n
        self._mapping = np.full(n, -1, dtype=np.int64)
        self._visited = np.zeros(data.num_vertices, dtype=bool)
        self._owner = np.zeros(data.num_vertices, dtype=np.int64)
        ctx = LCContext(
            query=query,
            data=data,
            candidates=candidates,
            auxiliary=auxiliary,
            mapping=self._mapping,
            used=_VisitedView(self._visited, self._owner),
        )
        self.lc_method.prepare(ctx)

        self._ctx = ctx
        self._stats = EnumerationStats()
        self._deadline = Deadline(time_limit) if time_limit else None
        self._cancel = cancel
        self._root_window = root_window
        self._tick = DEADLINE_STRIDE
        self._match_limit = match_limit
        self._num_matches = 0
        self._store = EmbeddingStore(n, store_limit)
        self._emit_rows = emit_rows
        self._full_mask = (1 << n) - 1
        self._solved = True
        self._done = False

        if self.adaptive is None:
            if order is None:
                raise ValueError("static mode requires a matching order")
            self._static = prepare_static_order(query, list(order), tree_parent)
            self._selector = None
        else:
            self._static = None
            self._selector = AdaptiveSelector(
                self.lc_method, self.adaptive, ctx, self._stats
            )

        self._f_u = [0] * n
        self._f_v = [0] * n
        self._f_valid: List[Optional[np.ndarray]] = [None] * n
        self._f_orig: List[Optional[np.ndarray]] = [None] * n
        self._f_pos = [0] * n
        self._f_last = [0] * n
        self._f_lclen = [0] * n
        self._f_fs = [0] * n
        self._f_bmask = [0] * n
        self._f_cbits = [0] * n
        self._depth = -1

        if candidates is not None and candidates.has_empty_set:
            self._done = True  # no match possible; zero work, zero counters
        elif not self._push(0):
            self._done = True  # fs empty root LC: the search is one node
        return self

    @property
    def done(self) -> bool:
        return self._done

    @property
    def num_matches(self) -> int:
        return self._num_matches

    @property
    def stats(self) -> EnumerationStats:
        return self._stats

    def advance(self) -> Optional[np.ndarray]:
        """Run until the next leaf batch (``emit_rows=True``) or to
        completion. Returns the batch rows, or ``None`` when the search
        is exhausted (or the time budget expired — ``solved`` goes
        False)."""
        if self._done:
            return None
        try:
            return self._loop()
        except BudgetExceeded:
            self._solved = False
            self._done = True
            return None

    # ------------------------------------------------------------------
    # Machine internals
    # ------------------------------------------------------------------

    def _check_budget(self) -> None:
        if self._tick <= 0:
            self._tick = DEADLINE_STRIDE
            if self._deadline is not None and self._deadline.expired():
                raise BudgetExceeded
            if self._cancel is not None and self._cancel():
                raise BudgetExceeded

    def _push(self, depth: int) -> bool:
        """Enter a search node: select the vertex, resolve and filter its
        local candidates. Returns False when the node returns immediately
        (failing-sets empty-LC short circuit, ``self._ret_fs`` set)."""
        stats = self._stats
        stats.recursion_calls += 1
        self._tick -= 1
        if self._tick <= 0:
            self._check_budget()
        ctx = self._ctx
        if self._static is not None:
            u = self._static.order[depth]
            lc = self.lc_method.compute(
                ctx, u, self._static.backward[depth], self._static.parent[depth]
            )
            bmask = self._static.backward_mask[depth]
        else:
            selection = self._selector.select()
            assert (
                selection is not None
            ), "connected query always has an extendable vertex"
            u, lc, backward = selection
            bmask = 0
            for w in backward:
                bmask |= 1 << w
        u_bit = 1 << u
        if depth == 0 and self._root_window is not None:
            # Partitioned run: only this window of root candidates belongs
            # to us. Slicing before the length/conflict accounting keeps
            # every counter window-local, so disjoint covering windows sum
            # exactly to the sequential totals.
            lo, hi = self._root_window
            lc = lc[lo:hi]
        lclen = len(lc)
        if self.use_failing_sets and lclen == 0:
            # Emptyset class: bypass the frame entirely and return the
            # failing set to the parent (u plus its backward neighbors).
            self._ret_fs = u_bit | bmask
            return False
        cand = np.asarray(lc, dtype=np.int64)
        orig: Optional[np.ndarray] = None
        cbits = 0
        if lclen:
            bad = self._visited[cand]
            if bad.any():
                keep = ~bad
                valid = cand[keep]
                orig = np.flatnonzero(keep)
                if self.use_failing_sets:
                    # Conflict children are u_bit | owner_bit; they never
                    # prune, so their union only matters at exhaustion.
                    # Owners are ancestors, constant for the frame's life.
                    obits = 0
                    for w in self._owner[cand[bad]].tolist():
                        obits |= 1 << w
                    cbits = u_bit | obits
            else:
                valid = cand
        else:
            valid = cand
        self._f_u[depth] = u
        self._f_valid[depth] = valid
        self._f_orig[depth] = orig
        self._f_pos[depth] = 0
        self._f_last[depth] = -1
        self._f_lclen[depth] = lclen
        self._f_fs[depth] = 0
        self._f_bmask[depth] = bmask
        self._f_cbits[depth] = cbits
        self._depth = depth
        return True

    def _absorb(self, depth: int, ret: int) -> bool:
        """A child of frame ``depth`` returned ``ret``: unmap the frame's
        current candidate, then apply the failing-set prune test. Returns
        True when the frame itself must return ``ret`` (prune)."""
        u = self._f_u[depth]
        self._visited[self._f_v[depth]] = False
        self._mapping[u] = -1
        if self.use_failing_sets:
            if not ret & (1 << u):
                # The failure below does not involve u: every sibling
                # candidate fails identically — skip them all.
                self._stats.failing_set_prunes += 1
                return True
            self._f_fs[depth] |= ret
        return False

    def _loop(self) -> Optional[np.ndarray]:
        # The frame slot lists are bound once: _push mutates the same list
        # objects in place, and restore_state (which rebinds them) cannot
        # run while this loop owns the machine.
        n = self._n
        fs = self.use_failing_sets
        stats = self._stats
        mapping = self._mapping
        visited = self._visited
        store = self._store
        f_u = self._f_u
        f_v = self._f_v
        f_valid = self._f_valid
        f_orig = self._f_orig
        f_pos = self._f_pos
        f_last = self._f_last
        f_lclen = self._f_lclen
        f_fs = self._f_fs
        f_bmask = self._f_bmask
        f_cbits = self._f_cbits
        while True:
            d = self._depth
            valid = f_valid[d]
            pos = f_pos[d]
            if pos >= len(valid):
                # Frame exhausted: account the trailing conflicts, build
                # the failing set, and return it to the parent.
                tail = f_lclen[d] - 1 - f_last[d]
                if tail > 0:
                    stats.candidates_scanned += tail
                    stats.conflicts += tail
                ret = f_fs[d] | f_cbits[d] | f_bmask[d] if fs else 0
                d -= 1
                while d >= 0 and self._absorb(d, ret):
                    d -= 1  # pruned frames return mid-loop: no tail accounting
                if d < 0:
                    self._done = True
                    return None
                self._depth = d
                continue

            u = f_u[d]
            orig = f_orig[d]
            last = f_last[d]

            if d == n - 1:
                # Leaf batch: every remaining valid candidate completes a
                # match. The recursive engine stops only after recording
                # the match that reaches the limit, so room is clamped to
                # at least one.
                take = len(valid) - pos
                if self._match_limit is not None:
                    room = self._match_limit - self._num_matches
                    if room <= 0:
                        room = 1
                    if take > room:
                        take = room
                o_end = int(orig[pos + take - 1]) if orig is not None else pos + take - 1
                delta = o_end - last
                stats.candidates_scanned += delta
                stats.conflicts += delta - take
                stats.recursion_calls += take
                self._tick -= take
                if self._tick <= 0:
                    self._check_budget()
                f_last[d] = o_end
                f_pos[d] = pos + take
                self._num_matches += take
                if fs:
                    f_fs[d] |= self._full_mask
                rows: Optional[np.ndarray] = None
                if self._emit_rows or not store.full:
                    rows = np.repeat(mapping[None, :], take, axis=0)
                    rows[:, u] = valid[pos : pos + take]
                    if not store.full:
                        store.extend_rows(rows)
                if (
                    self._match_limit is not None
                    and self._num_matches >= self._match_limit
                ):
                    self._done = True
                if self._emit_rows:
                    return rows
                if self._done:
                    return None
                continue

            # Interior step: consume one valid candidate, map it, descend.
            o = int(orig[pos]) if orig is not None else pos
            delta = o - last
            stats.candidates_scanned += delta
            stats.conflicts += delta - 1
            f_last[d] = o
            f_pos[d] = pos + 1
            v = int(valid[pos])
            mapping[u] = v
            visited[v] = True
            self._owner[v] = u
            f_v[d] = v
            if not self._push(d + 1):
                # fs empty-LC: the virtual child returned self._ret_fs.
                ret = self._ret_fs
                while d >= 0 and self._absorb(d, ret):
                    d -= 1
                if d < 0:
                    self._done = True
                    return None
                self._depth = d

    # ------------------------------------------------------------------
    # Pause / resume
    # ------------------------------------------------------------------

    def save_state(self) -> FrameSnapshot:
        """Snapshot the full search position (cheap: O(depth + |V(G)|))."""
        return FrameSnapshot(
            depth=self._depth,
            f_u=list(self._f_u),
            f_v=list(self._f_v),
            f_valid=list(self._f_valid),
            f_orig=list(self._f_orig),
            f_pos=list(self._f_pos),
            f_last=list(self._f_last),
            f_lclen=list(self._f_lclen),
            f_fs=list(self._f_fs),
            f_bmask=list(self._f_bmask),
            f_cbits=list(self._f_cbits),
            mapping=self._mapping.copy(),
            visited=self._visited.copy(),
            owner=self._owner.copy(),
            num_matches=self._num_matches,
            solved=self._solved,
            done=self._done,
            tick=self._tick,
            stats=replace(self._stats),
            store_count=len(self._store),
        )

    def restore_state(self, snapshot: FrameSnapshot) -> None:
        """Rewind to a snapshot taken by :meth:`save_state` on this run.

        Arrays are copied *into* the live buffers (the LC context and the
        visited view hold references to them); retained embeddings are
        truncated back to the snapshot's count.
        """
        self._depth = snapshot.depth
        # Slot lists are mutated in place, never rebound: _loop holds
        # direct references to them.
        self._f_u[:] = snapshot.f_u
        self._f_v[:] = snapshot.f_v
        self._f_valid[:] = snapshot.f_valid
        self._f_orig[:] = snapshot.f_orig
        self._f_pos[:] = snapshot.f_pos
        self._f_last[:] = snapshot.f_last
        self._f_lclen[:] = snapshot.f_lclen
        self._f_fs[:] = snapshot.f_fs
        self._f_bmask[:] = snapshot.f_bmask
        self._f_cbits[:] = snapshot.f_cbits
        self._mapping[:] = snapshot.mapping
        self._visited[:] = snapshot.visited
        self._owner[:] = snapshot.owner
        self._num_matches = snapshot.num_matches
        self._solved = snapshot.solved
        self._done = snapshot.done
        self._tick = snapshot.tick
        for f in fields(EnumerationStats):
            setattr(self._stats, f.name, getattr(snapshot.stats, f.name))
        self._store.truncate(snapshot.store_count)

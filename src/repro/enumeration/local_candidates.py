"""ComputeLC: the local-candidate computation methods (Algorithms 2–5).

Section 3.3 is the study's third axis. All algorithms share the recursive
backtracking of Algorithm 1 but compute ``LC(u, M)`` differently:

* :class:`NeighborScanLC` — Algorithm 2 (QuickSI, RI): scan the data
  neighbors of ``M[u.p]``, check LDF and the remaining backward edges.
  Cost ``O(d_G · (α-1) · β)``.
* :class:`VF2ppLC` — Algorithm 2 plus VF2++'s extra label-count lookahead,
  whose overhead the paper finds exceeds its benefit (Figure 9).
* :class:`CandidateScanLC` — Algorithm 3 (GraphQL): scan the whole
  ``C(u)``, check all backward edges. Cost ``O(|C(u)| · α · β)``.
* :class:`TreeAdjacencyLC` — Algorithm 4 (CFL): read ``A_u^{u.p}(M[u.p])``
  from the tree-scoped index, verify the other backward edges.
* :class:`IntersectionLC` — Algorithm 5 (CECI, DP-iso, and every
  "optimized" variant): intersect ``A_u^{u'}(M[u'])`` over all backward
  neighbors. The paper's conclusion: this is the most efficient method,
  and retrofitting it onto QSI/GQL/CFL/2PP yields the Figure 9 speedups.

Each method receives the immutable :class:`LCContext` once and is then
called per search-tree node with the current partial embedding.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.filtering.auxiliary import AuxiliaryStructure
from repro.filtering.base import ldf_check
from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.utils.intersection import intersect_hybrid, multi_intersect

__all__ = [
    "LCContext",
    "LocalCandidateMethod",
    "NeighborScanLC",
    "VF2ppLC",
    "CandidateScanLC",
    "TreeAdjacencyLC",
    "IntersectionLC",
]


@dataclass
class LCContext:
    """Everything a ComputeLC method may consult.

    ``mapping[u]`` is the data vertex mapped to query vertex ``u`` (or -1);
    it is mutated by the engine as the search proceeds. ``candidates`` /
    ``auxiliary`` may be ``None`` for direct-enumeration algorithms.
    """

    query: Graph
    data: Graph
    candidates: Optional[CandidateSets]
    auxiliary: Optional[AuxiliaryStructure]
    mapping: List[int]
    #: Data vertices currently used, mapped back to their query vertex.
    used: Dict[int, int]


class LocalCandidateMethod(ABC):
    """One ComputeLC strategy. Stateless across runs; bound via prepare()."""

    #: Short name for reports.
    name: str = "?"

    #: Whether this method needs candidate sets / an auxiliary structure.
    needs_candidates: bool = False
    needs_auxiliary: bool = False

    #: Whether ``compute(ctx, u, backward, parent)`` is fully determined
    #: by the current mappings of ``backward`` (plus the immutable
    #: context). True for Algorithms 2–5; methods that also consult
    #: ``ctx.used`` (the whole partial embedding) must set this False so
    #: the adaptive selector never serves them a stale memoized list.
    mapping_determined: bool = True

    def prepare(self, ctx: LCContext) -> None:
        """Validate wiring before a run starts."""
        if self.needs_candidates and ctx.candidates is None:
            raise ConfigurationError(f"{self.name} requires candidate sets")
        if self.needs_auxiliary and (
            ctx.auxiliary is None or ctx.auxiliary.scope == "none"
        ):
            raise ConfigurationError(
                f"{self.name} requires an auxiliary structure"
            )

    @abstractmethod
    def compute(
        self,
        ctx: LCContext,
        u: int,
        backward: Sequence[int],
        parent: int,
    ) -> Sequence[int]:
        """``LC(u, M)`` given the backward neighbors of ``u`` in φ.

        ``parent`` is ``u.p`` (one designated backward neighbor; -1 when
        ``backward`` is empty, i.e. at the first position or a disconnected
        spectrum order). Injectivity (``v ∉ M``) is the engine's job.
        """

    # Shared fallbacks -------------------------------------------------

    def _start_candidates(self, ctx: LCContext, u: int) -> Sequence[int]:
        """LC at a position with no backward neighbors."""
        if ctx.candidates is not None:
            return ctx.candidates[u]
        query, data = ctx.query, ctx.data
        pool = data.vertices_with_label(query.label(u))
        return pool[data.degrees[pool] >= query.degree(u)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NeighborScanLC(LocalCandidateMethod):
    """Algorithm 2: scan ``N(M[u.p])`` with LDF + backward-edge checks."""

    name = "ALG2"

    def compute(
        self,
        ctx: LCContext,
        u: int,
        backward: Sequence[int],
        parent: int,
    ) -> Sequence[int]:
        if parent < 0:
            return self._start_candidates(ctx, u)
        query, data, mapping = ctx.query, ctx.data, ctx.mapping
        anchor_sets = [
            data.neighbor_set(mapping[w]) for w in backward if w != parent
        ]
        result = []
        for v in data.neighbors(mapping[parent]).tolist():
            if not ldf_check(query, u, data, v):
                continue
            if all(v in s for s in anchor_sets):
                result.append(v)
        return result


class VF2ppLC(NeighborScanLC):
    """Algorithm 2 + VF2++'s forward label-count lookahead.

    Requires, for each label ``l`` among the *forward* neighbors of ``u``,
    at least as many unmapped neighbors of ``v`` with that label:
    ``∀l ∈ L(N_-^φ(u)): |N_-^φ(u, l)| ≤ |X(v, l)|``. The per-candidate cost
    is ``O(d(v))`` — the overhead Figure 9 shows outweighing the pruning.
    """

    name = "2PP-LC"
    #: The lookahead counts *unmapped* data neighbors, so the result
    #: depends on the whole partial embedding, not just the backward
    #: neighbors' mappings — it must not be memoized by backward key.
    mapping_determined = False

    def compute(
        self,
        ctx: LCContext,
        u: int,
        backward: Sequence[int],
        parent: int,
    ) -> Sequence[int]:
        base = super().compute(ctx, u, backward, parent)
        query, data, used = ctx.query, ctx.data, ctx.used
        backward_set = set(backward)
        forward_label_counts: Dict[int, int] = {}
        for w in query.neighbors(u).tolist():
            if w not in backward_set:
                label = query.label(w)
                forward_label_counts[label] = (
                    forward_label_counts.get(label, 0) + 1
                )
        if not forward_label_counts:
            return base
        result = []
        for v in base:
            free_counts: Dict[int, int] = {}
            for w in data.neighbors(v).tolist():
                if w not in used:
                    label = data.label(w)
                    free_counts[label] = free_counts.get(label, 0) + 1
            if all(
                free_counts.get(label, 0) >= needed
                for label, needed in forward_label_counts.items()
            ):
                result.append(v)
        return result


class CandidateScanLC(LocalCandidateMethod):
    """Algorithm 3: scan the whole ``C(u)``, verify every backward edge."""

    name = "ALG3"
    needs_candidates = True

    def compute(
        self,
        ctx: LCContext,
        u: int,
        backward: Sequence[int],
        parent: int,
    ) -> Sequence[int]:
        candidates = ctx.candidates[u]  # type: ignore[index]
        if parent < 0:
            return candidates
        data, mapping = ctx.data, ctx.mapping
        anchor_sets = [data.neighbor_set(mapping[w]) for w in backward]
        return [v for v in candidates if all(v in s for s in anchor_sets)]


class TreeAdjacencyLC(LocalCandidateMethod):
    """Algorithm 4: tree-edge adjacency lookup + residual edge checks."""

    name = "ALG4"
    needs_candidates = True
    needs_auxiliary = True

    def compute(
        self,
        ctx: LCContext,
        u: int,
        backward: Sequence[int],
        parent: int,
    ) -> Sequence[int]:
        if parent < 0:
            return ctx.candidates[u]  # type: ignore[index]
        data, mapping = ctx.data, ctx.mapping
        base = ctx.auxiliary.neighbors(parent, u, mapping[parent])  # type: ignore[union-attr]
        if len(backward) == 1:
            return base
        anchor_sets = [
            data.neighbor_set(mapping[w]) for w in backward if w != parent
        ]
        return [v for v in base if all(v in s for s in anchor_sets)]


class IntersectionLC(LocalCandidateMethod):
    """Algorithm 5: intersect candidate adjacency over all backward neighbors.

    ``kernel`` selects the intersection backend:

    * ``None`` (default) — the paper's scalar hybrid merge/galloping
      method. :func:`repro.core.api.match` swaps in the session's
      resolved :class:`~repro.utils.kernels.KernelBackend` for this
      default; an explicitly passed kernel is never overridden.
    * a registered backend name (``"scalar"``, ``"numpy"``, ``"bitset"``,
      ``"qfilter"``, ``"auto"``) — resolved via
      :func:`repro.utils.kernels.get_kernel`.
    * a pairwise callable over sorted lists, or an object exposing
      ``multi_intersect`` (a :class:`~repro.utils.kernels.KernelBackend`,
      ``QFilterIndex``, ``BitmapSetIndex``) — index objects intersect in
      their packed domain and encode-cache the long-lived auxiliary
      lists, which is how Figure 10 models QFilter's one-time layout
      conversion.
    """

    name = "ALG5"
    needs_candidates = True
    needs_auxiliary = True

    def __init__(
        self,
        kernel: Optional[
            Callable[[Sequence[int], Sequence[int]], List[int]]
        ] = None,
    ) -> None:
        #: True when no kernel was requested, letting ``match(kernel=...)``
        #: substitute the session backend without clobbering an explicit
        #: choice.
        self.uses_default_kernel = kernel is None
        if kernel is None:
            kernel = intersect_hybrid
        elif isinstance(kernel, str):
            from repro.utils.kernels import get_kernel

            kernel = get_kernel(kernel)
        self.kernel = kernel
        self._index = kernel if hasattr(kernel, "multi_intersect") else None

    def compute(
        self,
        ctx: LCContext,
        u: int,
        backward: Sequence[int],
        parent: int,
    ) -> Sequence[int]:
        if parent < 0:
            return ctx.candidates[u]  # type: ignore[index]
        mapping = ctx.mapping
        aux = ctx.auxiliary
        if len(backward) == 1:
            return aux.neighbors(parent, u, mapping[parent])  # type: ignore[union-attr]
        lists = [
            aux.neighbors(w, u, mapping[w])  # type: ignore[union-attr]
            for w in backward
        ]
        if self._index is not None:
            return self._index.multi_intersect(lists)
        return multi_intersect(lists, kernel=self.kernel)

"""Counters and result records produced by the enumeration engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["EnumerationStats", "EnumerationOutcome"]


@dataclass
class EnumerationStats:
    """Instrumentation counters for one enumeration run.

    ``recursion_calls`` counts Enumerate invocations (search-tree nodes);
    ``candidates_scanned`` counts local candidates iterated;
    ``conflicts`` counts injectivity rejections (``v ∈ M``);
    ``failing_set_prunes`` counts sibling groups skipped by the failing-set
    optimization;
    ``adaptive_lc_reused`` counts ComputeLC invocations avoided by the
    adaptive selector's memoization (DP-iso mode only; always 0 for
    static orders).
    """

    recursion_calls: int = 0
    candidates_scanned: int = 0
    conflicts: int = 0
    failing_set_prunes: int = 0
    adaptive_lc_reused: int = 0


@dataclass
class EnumerationOutcome:
    """What one enumeration run produced.

    ``solved`` is False when the time budget expired — the paper's
    "unsolved query"; counts then reflect work done before the kill.
    ``embeddings`` holds up to ``store_limit`` full matches, each a tuple
    ``t`` with ``t[u]`` the data vertex mapped to query vertex ``u``.
    """

    num_matches: int
    solved: bool
    embeddings: List[Tuple[int, ...]] = field(default_factory=list)
    stats: EnumerationStats = field(default_factory=EnumerationStats)
    #: Wall-clock seconds spent enumerating (set by the caller's timer).
    elapsed: float = 0.0

    @property
    def as_mapping_list(self) -> List[Dict[int, int]]:
        """Stored embeddings as ``{query_vertex: data_vertex}`` dicts."""
        return [dict(enumerate(t)) for t in self.embeddings]

"""Streaming enumeration: matches as a lazy iterator.

``match()`` materializes results; this module yields them one at a time
so a consumer can stop after any number of matches without paying for
the rest (``itertools.islice`` composes naturally). The pipeline is the
paper's recommended one — GraphQL filter, all-edges auxiliary structure,
Algorithm 5 — with the ordering chosen by data density as in Section 6.

The walk itself is the incremental face of the
:class:`~repro.enumeration.frames.FrameMachine`: ``start(...,
emit_rows=True)`` then one ``advance()`` per leaf batch. There is no
second hand-rolled stack walker here — pausing between batches *is* the
frame machine's pause/resume contract.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.errors import InvalidQueryError
from repro.filtering.auxiliary import AuxiliaryStructure
from repro.filtering.graphql import GraphQLFilter
from repro.graph.graph import Graph
from repro.graph.ops import connected
from repro.ordering.graphql import GraphQLOrdering
from repro.ordering.ri import RIOrdering
from repro.enumeration.frames import FrameMachine
from repro.enumeration.local_candidates import IntersectionLC
from repro.utils.kernels import get_kernel

__all__ = ["iter_matches"]


def iter_matches(
    query: Graph,
    data: Graph,
    dense_degree: float = 10.0,
    kernel: Optional[str] = None,
) -> Iterator[Dict[int, int]]:
    """Yield matches lazily as ``{query_vertex: data_vertex}`` dicts.

    ``kernel`` selects the intersection backend by registry name
    (``"scalar"``, ``"numpy"``, ``"bitset"``, ``"qfilter"``, ``"auto"``);
    ``None`` defers to ``REPRO_KERNEL`` / the auto heuristic.

    >>> from repro.graph import Graph
    >>> from itertools import islice
    >>> data = Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> q = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
    >>> first_two = list(islice(iter_matches(q, data), 2))
    >>> len(first_two)
    2
    """
    if query.num_vertices < 3:
        raise InvalidQueryError("queries must have at least 3 vertices")
    if not connected(query):
        raise InvalidQueryError("query graphs must be connected")

    candidates = GraphQLFilter().run(query, data)
    if candidates.has_empty_set:
        return
    auxiliary = AuxiliaryStructure.build(query, data, candidates, scope="all")
    backend = get_kernel(kernel, data=data, candidates=candidates)
    ordering = (
        GraphQLOrdering()
        if data.average_degree >= dense_degree
        else RIOrdering()
    )
    order = ordering.order(query, data, candidates)

    n = query.num_vertices
    machine = FrameMachine(IntersectionLC(kernel=backend))
    machine.start(
        query,
        data,
        candidates,
        auxiliary,
        order,
        store_limit=0,
        emit_rows=True,
    )
    while True:
        rows = machine.advance()
        if rows is None:
            return
        for row in rows.tolist():
            yield {w: row[w] for w in range(n)}

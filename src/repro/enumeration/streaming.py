"""Streaming enumeration: matches as a lazy iterator.

``match()`` materializes results; this module yields them one at a time
with an explicit-stack backtracking search, so a consumer can stop after
any number of matches without paying for the rest (``itertools.islice``
composes naturally). The pipeline is the paper's recommended one —
GraphQL filter, all-edges auxiliary structure, Algorithm 5 — with the
ordering chosen by data density as in Section 6.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import InvalidQueryError
from repro.filtering.auxiliary import AuxiliaryStructure
from repro.filtering.graphql import GraphQLFilter
from repro.graph.graph import Graph
from repro.graph.ops import connected
from repro.ordering.graphql import GraphQLOrdering
from repro.ordering.ri import RIOrdering
from repro.utils.kernels import get_kernel

__all__ = ["iter_matches"]


def iter_matches(
    query: Graph,
    data: Graph,
    dense_degree: float = 10.0,
    kernel: Optional[str] = None,
) -> Iterator[Dict[int, int]]:
    """Yield matches lazily as ``{query_vertex: data_vertex}`` dicts.

    ``kernel`` selects the intersection backend by registry name
    (``"scalar"``, ``"numpy"``, ``"bitset"``, ``"qfilter"``, ``"auto"``);
    ``None`` defers to ``REPRO_KERNEL`` / the auto heuristic.

    >>> from repro.graph import Graph
    >>> from itertools import islice
    >>> data = Graph(labels=[0, 1, 0, 1], edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> q = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
    >>> first_two = list(islice(iter_matches(q, data), 2))
    >>> len(first_two)
    2
    """
    if query.num_vertices < 3:
        raise InvalidQueryError("queries must have at least 3 vertices")
    if not connected(query):
        raise InvalidQueryError("query graphs must be connected")

    candidates = GraphQLFilter().run(query, data)
    if candidates.has_empty_set:
        return
    auxiliary = AuxiliaryStructure.build(query, data, candidates, scope="all")
    backend = get_kernel(kernel, data=data, candidates=candidates)
    ordering = (
        GraphQLOrdering()
        if data.average_degree >= dense_degree
        else RIOrdering()
    )
    order = ordering.order(query, data, candidates)

    n = len(order)
    position = {u: i for i, u in enumerate(order)}
    backward: List[List[int]] = [
        sorted(
            (w for w in query.neighbors(u).tolist() if position[w] < i),
            key=lambda w: position[w],
        )
        for i, u in enumerate(order)
    ]

    def local_candidates(depth: int, mapping: List[int]) -> List[int]:
        u = order[depth]
        anchors = backward[depth]
        if not anchors:
            return candidates[u]
        lists = [
            auxiliary.neighbors(w, u, mapping[w]) for w in anchors
        ]
        if len(lists) == 1:
            return lists[0]
        return backend.multi_intersect(lists)

    # Explicit-stack DFS: each frame is (candidate list, next index).
    mapping = [-1] * query.num_vertices
    used: set = set()
    stack: List[Tuple[List[int], int]] = [(list(local_candidates(0, mapping)), 0)]

    while stack:
        depth = len(stack) - 1
        lc, idx = stack[-1]
        if idx >= len(lc):
            stack.pop()
            if stack:
                u_prev = order[depth - 1]
                used.discard(mapping[u_prev])
                mapping[u_prev] = -1
            continue
        stack[-1] = (lc, idx + 1)
        v = lc[idx]
        if v in used:
            continue
        u = order[depth]
        mapping[u] = v
        used.add(v)
        if depth + 1 == n:
            yield {w: int(mapping[w]) for w in range(query.num_vertices)}
            used.discard(v)
            mapping[u] = -1
        else:
            stack.append((list(local_candidates(depth + 1, mapping)), 0))

"""Shared plumbing for the two enumeration engines.

Both the recursive :class:`~repro.enumeration.engine.BacktrackingEngine`
and the iterative :class:`~repro.enumeration.frames.FrameMachine` need
the same three pieces, factored here so they cannot drift apart:

* :func:`prepare_static_order` — per-depth backward neighbors, designated
  parent ``u.p`` and failing-set backward masks for a static order φ;
* :class:`EmbeddingStore` — the int64 row store for retained embeddings.
  Matches stay numpy end-to-end on the hot path and are converted to
  plain-int tuples exactly once, when the outcome is built;
* :class:`AdaptiveSelector` — DP-iso's extendable-vertex selection with
  ComputeLC memoization: a vertex's local candidates are fully determined
  by its backward neighbors' current mappings (for mapping-determined
  methods), so re-selection at the next search node reuses the list
  instead of recomputing it. Saved calls are counted in
  ``EnumerationStats.adaptive_lc_reused``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.enumeration.local_candidates import LCContext, LocalCandidateMethod
from repro.enumeration.stats import EnumerationStats
from repro.graph.graph import Graph
from repro.ordering.dpiso import DPisoAdaptiveState

__all__ = [
    "DEADLINE_STRIDE",
    "StaticOrderInfo",
    "prepare_static_order",
    "EmbeddingStore",
    "AdaptiveSelector",
]

#: How many Enumerate calls between cooperative deadline checks.
DEADLINE_STRIDE = 2048


class StaticOrderInfo:
    """Per-depth artifacts of a static matching order φ."""

    __slots__ = ("order", "backward", "parent", "backward_mask")

    def __init__(
        self,
        order: List[int],
        backward: List[List[int]],
        parent: List[int],
        backward_mask: List[int],
    ) -> None:
        self.order = order
        self.backward = backward
        self.parent = parent
        self.backward_mask = backward_mask


def prepare_static_order(
    query: Graph,
    order: List[int],
    tree_parent: Optional[Sequence[int]],
) -> StaticOrderInfo:
    """Backward neighbors, parent ``u.p`` and fs masks per order position.

    ``tree_parent`` optionally designates ``u.p`` per query vertex (CFL
    must use its BFS-tree parent so Algorithm 4 hits the tree-scoped
    index); otherwise the φ-earliest backward neighbor is the parent.
    """
    position = {u: i for i, u in enumerate(order)}
    backward_lists: List[List[int]] = []
    parents: List[int] = []
    masks: List[int] = []
    for i, u in enumerate(order):
        backward = [
            w for w in query.neighbors(u).tolist() if position[w] < i
        ]
        backward.sort(key=lambda w: position[w])
        parent = -1
        if backward:
            parent = backward[0]
            if tree_parent is not None and tree_parent[u] in backward:
                parent = tree_parent[u]
        backward_lists.append(backward)
        parents.append(parent)
        mask = 0
        for w in backward:
            mask |= 1 << w
        masks.append(mask)
    return StaticOrderInfo(order, backward_lists, parents, masks)


class EmbeddingStore:
    """Retained embeddings as int64 rows, converted to tuples once.

    The engines used to pay ``tuple(map(int, mapping))`` per stored match
    on the hot path; here a match is one row assignment into a
    preallocated (geometrically grown) array, and the plain-int tuples the
    public API promises are produced in a single ``tolist()`` pass at
    outcome construction.
    """

    __slots__ = ("limit", "_rows", "_count")

    def __init__(self, width: int, limit: int) -> None:
        self.limit = max(0, int(limit))
        self._count = 0
        self._rows = np.empty(
            (min(self.limit, 1024), max(1, width)), dtype=np.int64
        )

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count >= self.limit

    def _grow_to(self, needed: int) -> None:
        capacity = self._rows.shape[0]
        if needed <= capacity:
            return
        new_capacity = min(self.limit, max(needed, capacity * 2, 16))
        grown = np.empty((new_capacity, self._rows.shape[1]), dtype=np.int64)
        grown[: self._count] = self._rows[: self._count]
        self._rows = grown

    def append(self, mapping: Sequence[int]) -> None:
        """Store one full mapping (no-op once the limit is reached)."""
        if self._count >= self.limit:
            return
        self._grow_to(self._count + 1)
        self._rows[self._count] = mapping
        self._count += 1

    def extend_rows(self, rows: np.ndarray) -> None:
        """Store a batch of mapping rows, truncated to the remaining room."""
        room = self.limit - self._count
        if room <= 0:
            return
        take = min(room, rows.shape[0])
        self._grow_to(self._count + take)
        self._rows[self._count : self._count + take] = rows[:take]
        self._count += take

    def truncate(self, count: int) -> None:
        """Roll back to ``count`` rows (pause/resume support)."""
        if not 0 <= count <= self._count:
            raise ValueError(f"cannot truncate {self._count} rows to {count}")
        self._count = count

    def as_tuples(self) -> List[Tuple[int, ...]]:
        """The stored embeddings as tuples of plain Python ints."""
        return [tuple(row) for row in self._rows[: self._count].tolist()]


class AdaptiveSelector:
    """DP-iso extendable-vertex selection with local-candidate reuse.

    The original ``_select_adaptive`` recomputed ``lc_method.compute`` for
    *every* extendable vertex at *every* search node and discarded all but
    the winner's list. For mapping-determined ComputeLC methods the list
    for ``u`` depends only on the current mappings of ``u``'s backward
    neighbors (under the δ order), so it is memoized per vertex keyed by
    that mapping tuple; the estimated-work score rides along. Both engines
    share one selector implementation, which keeps their selection — and
    therefore their whole search trees — identical.
    """

    __slots__ = (
        "lc_method",
        "state",
        "ctx",
        "stats",
        "_n",
        "_backward",
        "_cacheable",
        "_cache",
    )

    def __init__(
        self,
        lc_method: LocalCandidateMethod,
        state: DPisoAdaptiveState,
        ctx: LCContext,
        stats: EnumerationStats,
    ) -> None:
        self.lc_method = lc_method
        self.state = state
        self.ctx = ctx
        self.stats = stats
        query = ctx.query
        position = state.position
        self._n = query.num_vertices
        # Backward neighbors under δ are static; only extendability (all
        # of them mapped) changes as the search proceeds.
        self._backward: List[List[int]] = []
        for u in range(self._n):
            backward = [
                w
                for w in query.neighbors(u).tolist()
                if position[w] < position[u]
            ]
            backward.sort(key=lambda w: position[w])
            self._backward.append(backward)
        self._cacheable = lc_method.mapping_determined
        #: Per-vertex (backward-mapping key, lc, estimated work) entry.
        self._cache: List[Optional[Tuple[Tuple[int, ...], Sequence[int], float]]] = [
            None
        ] * self._n

    def select(self) -> Optional[Tuple[int, Sequence[int], List[int]]]:
        """Pick the next vertex per DP-iso: least estimated work among
        extendable vertices, degree-one vertices last. Returns
        ``(u, local_candidates, backward_neighbors)``.
        """
        state = self.state
        mapping = self.ctx.mapping
        position = state.position
        degree_one = state.degree_one

        best: Optional[Tuple[int, Sequence[int], List[int]]] = None
        best_key: Optional[Tuple[int, float, int]] = None
        for u in range(self._n):
            if mapping[u] != -1:
                continue
            backward = self._backward[u]
            extendable = True
            for w in backward:
                if mapping[w] == -1:
                    extendable = False
                    break
            if not extendable:
                continue
            lc, work = self._lc_and_work(u, backward, mapping)
            degree_one_rank = 1 if u in degree_one else 0
            key = (degree_one_rank, work, position[u])
            if best_key is None or key < best_key:
                best = (u, lc, backward)
                best_key = key
        return best

    def _lc_and_work(
        self, u: int, backward: List[int], mapping: Sequence[int]
    ) -> Tuple[Sequence[int], float]:
        key = None
        if self._cacheable:
            key = tuple(int(mapping[w]) for w in backward)
            entry = self._cache[u]
            if entry is not None and entry[0] == key:
                self.stats.adaptive_lc_reused += 1
                return entry[1], entry[2]
        parent = backward[0] if backward else -1
        lc = self.lc_method.compute(self.ctx, u, backward, parent)
        work = self.state.estimated_work(u, list(lc))
        if key is not None:
            self._cache[u] = (key, lc, work)
        return lc, work

"""Exception hierarchy for the subgraph-matching study framework.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch framework failures without masking programming errors (``TypeError``,
``KeyError`` and friends propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(ReproError):
    """A graph file or edge list is malformed."""


class InvalidGraphError(ReproError):
    """A graph violates a structural requirement (e.g. self loop, bad label)."""


class InvalidQueryError(ReproError):
    """A query graph is unusable (disconnected, too small, too large)."""


class ConfigurationError(ReproError):
    """An algorithm was composed from incompatible or unknown components."""


class BudgetExceeded(ReproError):
    """Internal signal: a per-query time budget expired during enumeration.

    The enumeration engine catches this and reports the query as unsolved;
    it never escapes the public API.
    """

"""Exception hierarchy for the subgraph-matching study framework.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch framework failures without masking programming errors (``TypeError``,
``KeyError`` and friends propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(ReproError):
    """A graph file or edge list is malformed."""


class InvalidGraphError(ReproError):
    """A graph violates a structural requirement (e.g. self loop, bad label)."""


class InvalidQueryError(ReproError):
    """A query graph is unusable (disconnected, too small, too large)."""


class ConfigurationError(ReproError):
    """An algorithm was composed from incompatible or unknown components."""


class BudgetExceeded(ReproError):
    """Internal signal: a per-query time budget expired during enumeration.

    The enumeration engine catches this and reports the query as unsolved;
    it never escapes the public API.
    """


class ServeError(ReproError):
    """Base class for serving-tier (:mod:`repro.serve`) failures."""


class UnknownGraphError(ServeError):
    """A request named a resident graph the service does not hold."""


class QueueFullError(ServeError):
    """Admission rejected a request because the pending queue is full.

    This is backpressure, not failure: the caller should retry later or
    shed load. ``submit`` raises it immediately instead of blocking.
    """


class DeadlineExceededError(ServeError):
    """Admission rejected a request whose budget was already spent."""


class ServiceClosedError(ServeError):
    """A request arrived after the service shut down."""

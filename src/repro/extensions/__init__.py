"""Extensions beyond the paper's core study.

* :mod:`repro.extensions.compression` — TurboIso-style query-graph
  compression via neighborhood equivalence classes;
* :mod:`repro.extensions.data_compression` — BoostIso-style data-graph
  compression via vertex equivalence.

Both are the Section 3.4 techniques the paper discusses but excludes from
its main comparison (query compression rarely applies to random queries;
data compression only pays on dense graphs) — the ablation benches
``bench_ablation_compression.py`` and ``bench_ablation_data_compression.py``
quantify those two claims.
"""

from repro.extensions.compression import (
    CompressedQuery,
    compress_query,
    count_matches_compressed,
    match_compressed,
    neighborhood_equivalence_classes,
)
from repro.extensions.data_compression import (
    CompressedData,
    compress_data_graph,
    count_matches_data_compressed,
    match_data_compressed,
)

__all__ = [
    "CompressedQuery",
    "compress_query",
    "count_matches_compressed",
    "match_compressed",
    "neighborhood_equivalence_classes",
    "CompressedData",
    "compress_data_graph",
    "count_matches_data_compressed",
    "match_data_compressed",
]

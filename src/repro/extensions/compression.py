"""Query-graph compression via neighborhood equivalence classes (NEC).

TurboIso's optimization (paper Section 3.4): query vertices that are
*interchangeable* — same label and same neighborhood — can be matched as a
group. Two flavours:

* **false twins** — ``L(u) = L(u')``, ``u ̸~ u'`` and ``N(u) = N(u')``
  (e.g. the leaves of a star);
* **true twins** — ``L(u) = L(u')``, ``u ~ u'`` and
  ``N(u) ∪ {u} = N(u') ∪ {u'}`` (e.g. the vertices of a same-label clique).

The compressed query has one vertex per class. Enumeration assigns each
class an (unordered) set of distinct data vertices — adjacent to every
vertex assigned to neighboring classes, and mutually adjacent for
true-twin classes — and every assignment then expands to ``Π |class|!``
original embeddings by permuting the interchangeable members.

The paper's finding to verify (Section 3.4, quoting the CFL study): "only
a small number of query vertices could be compressed by the query graph
compression method" on random-walk queries — the ablation bench
``bench_ablation_compression.py`` measures class sizes and the speedup on
compression-friendly shapes (stars, cliques).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, permutations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.result import MatchResult
from repro.errors import BudgetExceeded
from repro.filtering.base import ldf_candidates_for, nlf_check
from repro.graph.graph import Graph
from repro.utils.timer import Deadline, Timer

__all__ = [
    "CompressedQuery",
    "neighborhood_equivalence_classes",
    "compress_query",
    "count_matches_compressed",
    "match_compressed",
]


def neighborhood_equivalence_classes(query: Graph) -> List[List[int]]:
    """Partition ``V(q)`` into NEC classes (sorted, deterministic).

    >>> star = Graph(labels=[0, 1, 1, 1], edges=[(0, 1), (0, 2), (0, 3)])
    >>> neighborhood_equivalence_classes(star)
    [[0], [1, 2, 3]]
    """
    signature_to_class: Dict[Tuple, List[int]] = {}
    for u in query.vertices():
        open_nb: FrozenSet[int] = query.neighbor_set(u)
        closed_nb = frozenset(open_nb | {u})
        # One signature covers both twin kinds: the closed neighborhood of
        # true twins coincides; for false twins the open one does. Key on
        # (label, closed-neighborhood-without-self-distinction) by trying
        # the closed form: two true twins share closed_nb; two false twins
        # share open_nb but differ in closed_nb, so key both.
        key_true = (query.label(u), "t", closed_nb)
        key_false = (query.label(u), "f", open_nb)
        # Prefer merging under whichever key already exists.
        if key_true in signature_to_class and _is_true_twin(
            query, u, signature_to_class[key_true][0]
        ):
            signature_to_class[key_true].append(u)
        elif key_false in signature_to_class and _is_false_twin(
            query, u, signature_to_class[key_false][0]
        ):
            signature_to_class[key_false].append(u)
        else:
            signature_to_class[key_true] = [u]
            signature_to_class[key_false] = signature_to_class[key_true]

    seen: set = set()
    classes: List[List[int]] = []
    for members in signature_to_class.values():
        marker = id(members)
        if marker not in seen:
            seen.add(marker)
            classes.append(sorted(members))
    classes.sort()
    return classes


def _is_true_twin(query: Graph, a: int, b: int) -> bool:
    if a == b:
        return True
    return (
        query.label(a) == query.label(b)
        and query.has_edge(a, b)
        and query.neighbor_set(a) | {a} == query.neighbor_set(b) | {b}
    )


def _is_false_twin(query: Graph, a: int, b: int) -> bool:
    if a == b:
        return True
    return (
        query.label(a) == query.label(b)
        and not query.has_edge(a, b)
        and query.neighbor_set(a) == query.neighbor_set(b)
    )


@dataclass(frozen=True)
class CompressedQuery:
    """A query graph folded along its NEC classes.

    ``classes[i]`` lists the original vertices represented by compressed
    vertex ``i``; ``clique[i]`` marks true-twin classes (members mutually
    adjacent); ``edges`` connect classes whose members are adjacent;
    ``labels[i]`` is the shared label.
    """

    original: Graph
    classes: Tuple[Tuple[int, ...], ...]
    labels: Tuple[int, ...]
    edges: Tuple[Tuple[int, int], ...]
    clique: Tuple[bool, ...]

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def compression_ratio(self) -> float:
        """``|V(q)| / #classes`` — 1.0 means nothing compressed."""
        return self.original.num_vertices / max(1, self.num_classes)

    @property
    def expansion_factor(self) -> int:
        """``Π |class|!`` — original embeddings per compressed assignment."""
        factor = 1
        for members in self.classes:
            for k in range(2, len(members) + 1):
                factor *= k
        return factor

    def neighbor_classes(self, index: int) -> List[int]:
        result = []
        for a, b in self.edges:
            if a == index:
                result.append(b)
            elif b == index:
                result.append(a)
        return sorted(set(result))


def compress_query(query: Graph) -> CompressedQuery:
    """Fold ``query`` along its NEC classes."""
    classes = neighborhood_equivalence_classes(query)
    index_of = {}
    for i, members in enumerate(classes):
        for u in members:
            index_of[u] = i
    edges = set()
    for u, v in query.edges():
        a, b = index_of[u], index_of[v]
        if a != b:
            edges.add((min(a, b), max(a, b)))
    clique = tuple(
        len(members) > 1 and query.has_edge(members[0], members[1])
        for members in classes
    )
    return CompressedQuery(
        original=query,
        classes=tuple(tuple(m) for m in classes),
        labels=tuple(query.label(members[0]) for members in classes),
        edges=tuple(sorted(edges)),
        clique=clique,
    )


class _CompressedEnumerator:
    """Backtracking over class assignments (sets of data vertices)."""

    def __init__(
        self,
        compressed: CompressedQuery,
        data: Graph,
        match_limit: Optional[int],
        time_limit: Optional[float],
        store_limit: int,
    ) -> None:
        self.c = compressed
        self.data = data
        self.match_limit = match_limit
        self.store_limit = store_limit
        self.deadline = Deadline(time_limit) if time_limit else None
        self.num_matches = 0
        self.embeddings: List[Tuple[int, ...]] = []
        self.solved = True

    def run(self) -> None:
        c = self.c
        candidates = [
            self._base_candidates(i) for i in range(c.num_classes)
        ]
        if any(
            len(candidates[i]) < len(c.classes[i])
            for i in range(c.num_classes)
        ):
            return
        order = self._class_order(candidates)
        try:
            self._extend(order, 0, candidates, [None] * c.num_classes, set())
        except _Stop:
            pass
        except BudgetExceeded:
            self.solved = False

    # ------------------------------------------------------------------

    def _class_order(self, candidates: List[List[int]]) -> List[int]:
        """Connected order over compressed vertices, cheapest class first.

        A class of size k fans out over ``C(|local|, k)`` combinations, so
        the start (and every frontier pick) minimizes ``k · log|base|`` —
        putting a star's center before its leaf class, for example.
        """
        import math

        c = self.c
        if c.num_classes == 0:
            return []

        def cost(i: int) -> float:
            size = len(c.classes[i])
            return size * math.log2(max(2, len(candidates[i])))

        start = min(range(c.num_classes), key=lambda i: (cost(i), i))
        order = [start]
        placed = {start}
        while len(order) < c.num_classes:
            frontier = [
                j
                for i in placed
                for j in c.neighbor_classes(i)
                if j not in placed
            ]
            if not frontier:  # disconnected compressed query
                frontier = [j for j in range(c.num_classes) if j not in placed]
            nxt = min(frontier, key=lambda j: (cost(j), j))
            order.append(nxt)
            placed.add(nxt)
        return order

    def _base_candidates(self, index: int) -> List[int]:
        """LDF + NLF candidates of the class representative."""
        rep = self.c.classes[index][0]
        query = self.c.original
        return [
            v
            for v in ldf_candidates_for(query, rep, self.data)
            if nlf_check(query, rep, self.data, v)
        ]

    def _extend(
        self,
        order: List[int],
        depth: int,
        candidates: List[List[int]],
        assignment: List[Optional[Tuple[int, ...]]],
        used: set,
    ) -> None:
        if self.deadline is not None and self.deadline.expired():
            raise BudgetExceeded
        c = self.c
        if depth == len(order):
            self._record(assignment)
            return
        index = order[depth]
        size = len(c.classes[index])

        # Local candidates: base ∩ adjacency to every assigned neighbor
        # class member, minus used vertices.
        anchor_sets = [
            self.data.neighbor_set(v)
            for j in c.neighbor_classes(index)
            if assignment[j] is not None
            for v in assignment[j]
        ]
        local = [
            v
            for v in candidates[index]
            if v not in used and all(v in s for s in anchor_sets)
        ]
        if len(local) < size:
            return

        for chosen in combinations(local, size):
            if c.clique[index] and not self._mutually_adjacent(chosen):
                continue
            assignment[index] = chosen
            used.update(chosen)
            self._extend(order, depth + 1, candidates, assignment, used)
            used.difference_update(chosen)
            assignment[index] = None

    def _mutually_adjacent(self, vertices: Sequence[int]) -> bool:
        for i, a in enumerate(vertices):
            nb = self.data.neighbor_set(a)
            for b in vertices[i + 1:]:
                if b not in nb:
                    return False
        return True

    def _record(self, assignment: List[Optional[Tuple[int, ...]]]) -> None:
        c = self.c
        expansion = c.expansion_factor
        self.num_matches += expansion

        # Materialize original embeddings (up to the store limit) by
        # permuting class members over the chosen vertex sets.
        if len(self.embeddings) < self.store_limit:
            self._expand_embeddings(assignment)

        if (
            self.match_limit is not None
            and self.num_matches >= self.match_limit
        ):
            raise _Stop

    def _expand_embeddings(
        self, assignment: List[Optional[Tuple[int, ...]]]
    ) -> None:
        c = self.c
        partial: List[Dict[int, int]] = [dict()]
        for index, members in enumerate(c.classes):
            chosen = assignment[index]
            assert chosen is not None
            new_partial = []
            for base in partial:
                for perm in permutations(chosen):
                    extended = dict(base)
                    for u, v in zip(members, perm):
                        extended[u] = v
                    new_partial.append(extended)
            partial = new_partial
        for mapping in partial:
            if len(self.embeddings) >= self.store_limit:
                break
            self.embeddings.append(
                tuple(mapping[u] for u in range(c.original.num_vertices))
            )


class _Stop(Exception):
    """Match cap reached."""


def match_compressed(
    query: Graph,
    data: Graph,
    match_limit: Optional[int] = 100_000,
    time_limit: Optional[float] = None,
    store_limit: int = 10_000,
) -> MatchResult:
    """Enumerate matches through NEC compression.

    Returns a regular :class:`MatchResult`; ``num_matches`` counts
    *original* embeddings (each compressed assignment contributes
    ``Π |class|!``).
    """
    with Timer() as prep_timer:
        compressed = compress_query(query)
    enumerator = _CompressedEnumerator(
        compressed, data, match_limit, time_limit, store_limit
    )
    with Timer() as enum_timer:
        enumerator.run()
    return MatchResult(
        algorithm="NEC",
        num_matches=enumerator.num_matches,
        solved=enumerator.solved,
        embeddings=enumerator.embeddings,
        order=None,
        preprocessing_seconds=prep_timer.elapsed,
        enumeration_seconds=enum_timer.elapsed,
    )


def count_matches_compressed(
    query: Graph,
    data: Graph,
    time_limit: Optional[float] = None,
) -> int:
    """Exact match count through compression (no embeddings stored)."""
    return match_compressed(
        query, data, match_limit=None, time_limit=time_limit, store_limit=0
    ).num_matches

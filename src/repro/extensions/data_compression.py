"""Data-graph compression via vertex equivalence (BoostIso-style).

The second compression technique of the paper's Section 3.4: BoostIso
folds *data* vertices that are interchangeable — same label and same
neighborhood — into hyper-vertices, so the enumeration explores each
equivalence class once and multiplies counts instead of permuting
members. The paper relays the CFL study's verdict: "the data graph
compression technique worked well only when the data graph was very
dense"; the ablation bench ``bench_ablation_data_compression.py``
measures exactly that (compression ratio and speedup vs density).

Semantics. Let ``classes`` partition ``V(G)`` into label-preserving
false-twin (``N(v) = N(v')``) or true-twin (``N[v] = N[v']``) classes.
Adjacency is uniform class-to-class, so an assignment of query vertices
to classes is valid iff

* labels match,
* adjacent query vertices land in adjacent classes (or in one *clique*
  class — true twins are mutually adjacent),
* no class receives more query vertices than it has members
  (and any two query vertices sharing a *non-clique* class must be
  non-adjacent, which the adjacency rule already enforces).

Each valid assignment contributes ``Π_C P(|C|, k_C)`` original
embeddings, where ``k_C`` query vertices landed in class ``C`` and ``P``
is the falling factorial — interchangeable members can be picked in any
injective way.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Optional, Tuple

from repro.core.result import MatchResult
from repro.errors import BudgetExceeded
from repro.graph.graph import Graph
from repro.utils.timer import Deadline, Timer

__all__ = [
    "CompressedData",
    "compress_data_graph",
    "count_matches_data_compressed",
    "match_data_compressed",
]


def _data_equivalence_classes(data: Graph) -> List[List[int]]:
    """Label-preserving twin classes of the data graph."""
    by_signature: Dict[Tuple, List[int]] = {}
    for v in data.vertices():
        open_nb = data.neighbor_set(v)
        # Key on the closed neighborhood for true twins, open for false
        # twins; a vertex joins whichever bucket it genuinely twins with.
        key_true = (data.label(v), "t", frozenset(open_nb | {v}))
        key_false = (data.label(v), "f", open_nb)
        bucket = by_signature.get(key_true)
        if bucket is not None and _true_twin(data, v, bucket[0]):
            bucket.append(v)
            continue
        bucket = by_signature.get(key_false)
        if bucket is not None and _false_twin(data, v, bucket[0]):
            bucket.append(v)
            continue
        fresh = [v]
        by_signature[key_true] = fresh
        by_signature[key_false] = fresh

    seen: set = set()
    classes: List[List[int]] = []
    for bucket in by_signature.values():
        if id(bucket) not in seen:
            seen.add(id(bucket))
            classes.append(sorted(bucket))
    classes.sort()
    return classes


def _true_twin(data: Graph, a: int, b: int) -> bool:
    if a == b:
        return True
    return (
        data.label(a) == data.label(b)
        and data.has_edge(a, b)
        and data.neighbor_set(a) | {a} == data.neighbor_set(b) | {b}
    )


def _false_twin(data: Graph, a: int, b: int) -> bool:
    if a == b:
        return True
    return (
        data.label(a) == data.label(b)
        and not data.has_edge(a, b)
        and data.neighbor_set(a) == data.neighbor_set(b)
    )


@dataclass(frozen=True)
class CompressedData:
    """A data graph folded along vertex equivalence classes.

    ``members[i]`` are the original vertices of hyper-vertex ``i``;
    ``clique[i]`` marks true-twin classes; the hyper-graph ``skeleton``
    connects classes whose members are adjacent (uniformly, by
    equivalence).
    """

    original: Graph
    members: Tuple[Tuple[int, ...], ...]
    labels: Tuple[int, ...]
    clique: Tuple[bool, ...]
    skeleton: Graph  # labels mirror `labels`; edges = class adjacency

    @property
    def num_classes(self) -> int:
        return len(self.members)

    @property
    def compression_ratio(self) -> float:
        """``|V(G)| / #classes`` — 1.0 means nothing compressed."""
        return self.original.num_vertices / max(1, self.num_classes)


def compress_data_graph(data: Graph) -> CompressedData:
    """Fold ``data`` along its vertex equivalence classes."""
    classes = _data_equivalence_classes(data)
    index_of: Dict[int, int] = {}
    for i, members in enumerate(classes):
        for v in members:
            index_of[v] = i
    edges = set()
    for u, v in data.edges():
        a, b = index_of[u], index_of[v]
        if a != b:
            edges.add((min(a, b), max(a, b)))
    labels = [data.label(members[0]) for members in classes]
    clique = tuple(
        len(members) > 1 and data.has_edge(members[0], members[1])
        for members in classes
    )
    skeleton = Graph(labels=labels, edges=sorted(edges))
    return CompressedData(
        original=data,
        members=tuple(tuple(m) for m in classes),
        labels=tuple(labels),
        clique=clique,
        skeleton=skeleton,
    )


class _HyperEnumerator:
    """Backtracking over query-vertex → hyper-vertex assignments."""

    def __init__(
        self,
        query: Graph,
        compressed: CompressedData,
        match_limit: Optional[int],
        time_limit: Optional[float],
        store_limit: int,
    ) -> None:
        self.query = query
        self.c = compressed
        self.match_limit = match_limit
        self.store_limit = store_limit
        self.deadline = Deadline(time_limit) if time_limit else None
        self.num_matches = 0
        self.embeddings: List[Tuple[int, ...]] = []
        self.solved = True

    def run(self) -> None:
        query = self.query
        if query.num_vertices == 0:
            return
        order = self._query_order()
        try:
            self._extend(order, 0, [-1] * query.num_vertices, {})
        except _Stop:
            pass
        except BudgetExceeded:
            self.solved = False

    def _query_order(self) -> List[int]:
        """Connected query order, rarest skeleton label first."""
        query, skeleton = self.query, self.c.skeleton
        start = min(
            query.vertices(),
            key=lambda u: (skeleton.label_frequency(query.label(u)), u),
        )
        order = [start]
        placed = {start}
        while len(order) < query.num_vertices:
            frontier = sorted(
                w
                for u in placed
                for w in query.neighbors(u).tolist()
                if w not in placed
            )
            order.append(frontier[0])
            placed.add(frontier[0])
        return order

    def _extend(
        self,
        order: List[int],
        depth: int,
        assignment: List[int],
        load: Dict[int, int],
    ) -> None:
        if self.deadline is not None and self.deadline.expired():
            raise BudgetExceeded
        query, c = self.query, self.c
        if depth == len(order):
            self._record(assignment, load)
            return
        u = order[depth]
        backward = [
            w for w in query.neighbors(u).tolist() if assignment[w] != -1
        ]

        candidates = self._candidates(u, backward, assignment)
        for class_index in candidates:
            current = load.get(class_index, 0)
            if current >= len(c.members[class_index]):
                continue  # capacity exhausted
            assignment[u] = class_index
            load[class_index] = current + 1
            self._extend(order, depth + 1, assignment, load)
            load[class_index] = current
            if load[class_index] == 0:
                del load[class_index]
            assignment[u] = -1

    def _candidates(
        self, u: int, backward: List[int], assignment: List[int]
    ) -> List[int]:
        query, c = self.query, self.c
        skeleton = c.skeleton
        label = query.label(u)
        if not backward:
            return skeleton.vertices_with_label(label).tolist()
        # Anchor on the first backward neighbor's class: candidates are
        # its skeleton neighbors plus (if clique) the class itself.
        anchor = assignment[backward[0]]
        pool = [
            w
            for w in skeleton.neighbors(anchor).tolist()
            if skeleton.label(w) == label
        ]
        if c.clique[anchor] and c.labels[anchor] == label:
            pool.append(anchor)
        result = []
        for class_index in pool:
            if all(
                self._class_edge_ok(class_index, assignment[w])
                for w in backward
            ):
                result.append(class_index)
        return result

    def _class_edge_ok(self, a: int, b: int) -> bool:
        """Whether query-adjacent vertices may map into classes a and b."""
        if a == b:
            return self.c.clique[a]
        return self.c.skeleton.has_edge(a, b)

    def _record(self, assignment: List[int], load: Dict[int, int]) -> None:
        c = self.c
        count = 1
        for class_index, k in load.items():
            size = len(c.members[class_index])
            for i in range(k):
                count *= size - i
        self.num_matches += count
        if len(self.embeddings) < self.store_limit:
            self._expand(assignment, load)
        if (
            self.match_limit is not None
            and self.num_matches >= self.match_limit
        ):
            raise _Stop

    def _expand(self, assignment: List[int], load: Dict[int, int]) -> None:
        """Materialize original embeddings for one class assignment."""
        c = self.c
        by_class: Dict[int, List[int]] = {}
        for u, class_index in enumerate(assignment):
            by_class.setdefault(class_index, []).append(u)

        partial: List[Dict[int, int]] = [dict()]
        for class_index, query_vertices in by_class.items():
            members = c.members[class_index]
            k = len(query_vertices)
            new_partial: List[Dict[int, int]] = []
            for base in partial:
                for perm in permutations(members, k):
                    extended = dict(base)
                    for u, v in zip(query_vertices, perm):
                        extended[u] = v
                    new_partial.append(extended)
            partial = new_partial
        for mapping in partial:
            if len(self.embeddings) >= self.store_limit:
                break
            self.embeddings.append(
                tuple(mapping[u] for u in range(self.query.num_vertices))
            )


class _Stop(Exception):
    """Match cap reached."""


def match_data_compressed(
    query: Graph,
    data: Graph,
    match_limit: Optional[int] = 100_000,
    time_limit: Optional[float] = None,
    store_limit: int = 10_000,
    compressed: Optional[CompressedData] = None,
) -> MatchResult:
    """Enumerate matches through data-graph compression.

    ``compressed`` may be supplied to reuse a compression across queries
    (the point of BoostIso: compress once, query many times).
    """
    with Timer() as prep_timer:
        if compressed is None:
            compressed = compress_data_graph(data)
    enumerator = _HyperEnumerator(
        query, compressed, match_limit, time_limit, store_limit
    )
    with Timer() as enum_timer:
        enumerator.run()
    return MatchResult(
        algorithm="BoostIso",
        num_matches=enumerator.num_matches,
        solved=enumerator.solved,
        embeddings=enumerator.embeddings,
        order=None,
        preprocessing_seconds=prep_timer.elapsed,
        enumeration_seconds=enum_timer.elapsed,
    )


def count_matches_data_compressed(
    query: Graph,
    data: Graph,
    time_limit: Optional[float] = None,
    compressed: Optional[CompressedData] = None,
) -> int:
    """Exact match count through data compression."""
    return match_data_compressed(
        query,
        data,
        match_limit=None,
        time_limit=time_limit,
        store_limit=0,
        compressed=compressed,
    ).num_matches

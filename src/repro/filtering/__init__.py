"""Filtering methods: candidate vertex set generation (paper Section 3.1).

The study's first axis. Every filter implements
:class:`~repro.filtering.base.Filter` and returns *complete*
:class:`~repro.filtering.candidates.CandidateSets`; the
:class:`~repro.filtering.auxiliary.AuxiliaryStructure` then materializes
candidate-to-candidate adjacency for whichever query edges an algorithm's
ComputeLC needs.
"""

from repro.filtering.auxiliary import AuxiliaryStructure
from repro.filtering.base import (
    Filter,
    LDFFilter,
    NLFFilter,
    ldf_candidates_for,
    ldf_check,
    nlf_check,
)
from repro.filtering.candidates import CandidateSets
from repro.filtering.ceci import CECIFilter
from repro.filtering.cfl import CFLFilter
from repro.filtering.dpiso import DPisoFilter
from repro.filtering.graphql import GraphQLFilter
from repro.filtering.roots import ceci_root, cfl_root, dpiso_root
from repro.filtering.steady import SteadyFilter

__all__ = [
    "AuxiliaryStructure",
    "CandidateSets",
    "Filter",
    "LDFFilter",
    "NLFFilter",
    "GraphQLFilter",
    "CFLFilter",
    "CECIFilter",
    "DPisoFilter",
    "SteadyFilter",
    "ldf_candidates_for",
    "ldf_check",
    "nlf_check",
    "cfl_root",
    "ceci_root",
    "dpiso_root",
]

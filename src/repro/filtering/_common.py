"""Internal helpers shared by the BFS-tree-based filters (CFL/CECI/DP-iso).

These implement the primitive of Observation 3.1 / Filtering Rule 3.1:
checking whether a candidate has at least one neighbor inside another
candidate set. The scalar :func:`has_candidate_neighbor` iterates whichever
side is smaller; the vectorized pass (:func:`refine_keep` over
:func:`neighbor_hit_mask`) gathers every candidate's CSR neighbor slice in
one shot and reduces a membership bitmap over it, so a whole refinement
sweep costs a handful of numpy calls instead of a Python loop per
candidate-neighbor pair.
"""

from __future__ import annotations

from typing import AbstractSet, Sequence

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "as_vertex_array",
    "has_candidate_neighbor",
    "neighbor_expansion",
    "neighbor_hit_mask",
    "neighbor_union",
    "refine_keep",
]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def as_vertex_array(values: Sequence[int]) -> np.ndarray:
    """``values`` as an int64 vertex-id array (no copy for int64 arrays)."""
    if isinstance(values, np.ndarray):
        if values.dtype == np.int64:
            return values
        return values.astype(np.int64)
    return np.asarray(values, dtype=np.int64)


def has_candidate_neighbor(
    data: Graph,
    v: int,
    candidate_list: Sequence[int],
    candidate_set: AbstractSet[int],
) -> bool:
    """Whether ``N(v) ∩ C ≠ ∅`` (Filtering Rule 3.1's primitive check)."""
    neighbor_set = data.neighbor_set(v)
    if len(candidate_list) <= len(neighbor_set):
        return any(c in neighbor_set for c in candidate_list)
    return any(w in candidate_set for w in neighbor_set)


def neighbor_expansion(data: Graph, candidate_list: Sequence[int]) -> set:
    """``N(C) = ∪_{v ∈ C} N(v)`` — the pool of Generation Rule 3.1."""
    pool: set = set()
    for v in candidate_list:
        pool.update(data.neighbor_set(v))
    return pool


def _ragged_indices(starts: np.ndarray, lengths: np.ndarray, total: int) -> np.ndarray:
    """Flat CSR indices selecting each ``starts[i] .. +lengths[i]`` slice."""
    seg_starts = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=seg_starts[1:])
    return np.repeat(starts - seg_starts, lengths) + np.arange(total, dtype=np.int64)


def neighbor_union(data: Graph, vertices: Sequence[int]) -> np.ndarray:
    """``N(C)`` as a sorted unique array — vectorized neighbor expansion."""
    vs = as_vertex_array(vertices)
    if vs.size == 0:
        return _EMPTY_I64
    offsets, neighbors = data.csr
    starts = offsets[vs]
    lengths = offsets[vs + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return _EMPTY_I64
    return np.unique(neighbors[_ragged_indices(starts, lengths, total)])


def neighbor_hit_mask(
    data: Graph, vertices: np.ndarray, member_mask: np.ndarray
) -> np.ndarray:
    """Per-vertex ``N(v) ∩ C ≠ ∅`` over a membership bitmap, batched.

    ``member_mask`` is a bool array over the data-vertex universe with
    ``True`` at the members of ``C``. Returns a bool array aligned with
    ``vertices``. One gather plus one segmented OR — no per-vertex loop.
    """
    vs = as_vertex_array(vertices)
    out = np.zeros(vs.size, dtype=bool)
    if vs.size == 0:
        return out
    offsets, neighbors = data.csr
    starts = offsets[vs]
    lengths = offsets[vs + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return out
    idx = _ragged_indices(starts, lengths, total)
    hits = member_mask[neighbors[idx]]
    seg_starts = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=seg_starts[1:])
    nonempty = lengths > 0
    # reduceat boundaries: zero-length segments share their start with the
    # following segment, so dropping them leaves boundaries that exactly
    # tile the gathered hits array.
    out[nonempty] = np.bitwise_or.reduceat(hits, seg_starts[nonempty])
    return out


def refine_keep(
    data: Graph,
    target: Sequence[int],
    anchor_lists: Sequence[Sequence[int]],
    scratch: np.ndarray,
) -> np.ndarray:
    """Filtering Rule 3.1, batched: keep ``v ∈ target`` with at least one
    neighbor in every anchor list.

    ``scratch`` is a reusable bool array over the data-vertex universe
    (all ``False`` on entry; restored to all ``False`` on exit). The
    surviving candidates shrink after each anchor, so later anchors scan
    progressively smaller gather sets.
    """
    vs = as_vertex_array(target)
    for anchor in anchor_lists:
        if vs.size == 0:
            break
        arr = as_vertex_array(anchor)
        if arr.size == 0:
            return _EMPTY_I64
        scratch[arr] = True
        vs = vs[neighbor_hit_mask(data, vs, scratch)]
        scratch[arr] = False
    return vs

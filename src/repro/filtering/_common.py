"""Internal helpers shared by the BFS-tree-based filters (CFL/CECI/DP-iso).

These implement the primitive of Observation 3.1 / Filtering Rule 3.1:
checking whether a candidate has at least one neighbor inside another
candidate set, iterating whichever side is smaller.
"""

from __future__ import annotations

from typing import AbstractSet, Sequence

from repro.graph.graph import Graph

__all__ = ["has_candidate_neighbor", "neighbor_expansion"]


def has_candidate_neighbor(
    data: Graph,
    v: int,
    candidate_list: Sequence[int],
    candidate_set: AbstractSet[int],
) -> bool:
    """Whether ``N(v) ∩ C ≠ ∅`` (Filtering Rule 3.1's primitive check)."""
    neighbor_set = data.neighbor_set(v)
    if len(candidate_list) <= len(neighbor_set):
        return any(c in neighbor_set for c in candidate_list)
    return any(w in candidate_set for w in neighbor_set)


def neighbor_expansion(data: Graph, candidate_list: Sequence[int]) -> set:
    """``N(C) = ∪_{v ∈ C} N(v)`` — the pool of Generation Rule 3.1."""
    pool: set = set()
    for v in candidate_list:
        pool.update(data.neighbor_set(v))
    return pool

"""The auxiliary data structure ``A`` maintaining edges between candidates.

Given a query edge ``e(u, u')`` and ``v ∈ C(u)``, the paper defines
``A_{u'}^{u}(v) = N(v) ∩ C(u')`` — the neighbors of ``v`` inside ``C(u')``
(Section 2.1). The three preprocessing-enumeration algorithms differ in
*which* query edges they materialize:

* CFL's compressed path index keeps only the BFS-tree edges,
* CECI's compact embedding cluster index and DP-iso's candidate space keep
  every query edge,
* GraphQL keeps none (its ComputeLC scans ``C(u)`` directly).

``AuxiliaryStructure.build`` takes the final candidate sets and a scope and
materializes exactly those adjacency lists; contents are identical to what
an incremental construction would leave behind, since ``A`` is fully
determined by the final ``C`` sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Literal, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.filtering._common import _ragged_indices
from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.graph.ops import BFSTree

__all__ = ["AuxiliaryStructure", "Scope"]

Scope = Literal["none", "tree", "all"]

_EMPTY = np.empty(0, dtype=np.int64)


class AuxiliaryStructure:
    """Candidate-to-candidate adjacency for a chosen set of query edges.

    The structure is directional: the pair ``(u_from, u_to)`` maps each
    ``v ∈ C(u_from)`` to the sorted list ``N(v) ∩ C(u_to)``. Query edges in
    scope are materialized in both directions, which is what both Algorithm 4
    (tree-edge lookups) and Algorithm 5 (set intersections over all backward
    neighbors) need.
    """

    __slots__ = ("_tables", "_scope")

    def __init__(
        self,
        tables: Dict[Tuple[int, int], Dict[int, np.ndarray]],
        scope: Scope,
    ) -> None:
        self._tables = tables
        self._scope = scope

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        query: Graph,
        data: Graph,
        candidates: CandidateSets,
        scope: Scope = "all",
        tree: Optional[BFSTree] = None,
    ) -> "AuxiliaryStructure":
        """Materialize ``A`` for the requested scope.

        ``scope="tree"`` requires the BFS tree whose edges should be kept
        (CFL's ``q_t``); ``scope="all"`` keeps every query edge;
        ``scope="none"`` produces an empty structure (GraphQL).
        """
        if scope == "none":
            return cls({}, scope)
        if scope == "tree":
            if tree is None:
                raise ConfigurationError("tree scope requires a BFSTree")
            pairs = [(p, c) for p, c in tree.tree_edges]
        elif scope == "all":
            pairs = list(query.edges())
        else:
            raise ConfigurationError(f"unknown auxiliary scope {scope!r}")

        tables: Dict[Tuple[int, int], Dict[int, np.ndarray]] = {}
        member = np.zeros(data.num_vertices, dtype=bool)
        for u, u2 in pairs:
            tables[(u, u2)] = cls._adjacency(data, candidates, u, u2, member)
            tables[(u2, u)] = cls._adjacency(data, candidates, u2, u, member)
        return cls(tables, scope)

    @staticmethod
    def _adjacency(
        data: Graph,
        candidates: CandidateSets,
        u_from: int,
        u_to: int,
        member: np.ndarray,
    ) -> Dict[int, np.ndarray]:
        """``{v: N(v) ∩ C(u_to)}`` (sorted arrays) for each ``v ∈ C(u_from)``.

        One ragged gather over the CSR slices of all of ``C(u_from)``, one
        membership mask against ``C(u_to)``, then a segmented split — no
        per-candidate Python loop. ``member`` is a reusable bool scratch of
        size ``|V(G)|``.
        """
        source = candidates.array(u_from)
        if source.size == 0:
            return {}
        target = candidates.array(u_to)
        member[target] = True
        offsets, neighbors = data.csr
        starts = offsets[source]
        lengths = offsets[source + 1] - starts
        total = int(lengths.sum())
        gathered = neighbors[_ragged_indices(starts, lengths, total)]
        keep = member[gathered]
        member[target] = False
        seg = np.repeat(np.arange(source.size), lengths)
        kept_counts = np.bincount(seg[keep], minlength=source.size)
        chunks = np.split(gathered[keep], np.cumsum(kept_counts)[:-1])
        # data.neighbors(v) is sorted, so each filtered chunk stays sorted.
        return {int(v): chunk for v, chunk in zip(source.tolist(), chunks)}

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    @property
    def scope(self) -> Scope:
        """Which query edges were materialized."""
        return self._scope

    def has_pair(self, u_from: int, u_to: int) -> bool:
        """Whether the directed pair ``(u_from, u_to)`` is materialized."""
        return (u_from, u_to) in self._tables

    def neighbors(self, u_from: int, u_to: int, v: int) -> np.ndarray:
        """``A_{u_to}^{u_from}(v)``: candidates of ``u_to`` adjacent to ``v``.

        Returns a sorted int64 array (do not mutate). Empty if ``v`` is not
        a candidate of ``u_from``; raises ``KeyError`` if the pair itself is
        not materialized (that is a wiring bug, not a data condition).
        """
        return self._tables[(u_from, u_to)].get(v, _EMPTY)

    def pairs(self) -> Iterable[Tuple[int, int]]:
        """All materialized directed pairs."""
        return self._tables.keys()

    @property
    def num_entries(self) -> int:
        """Total stored candidate-edge endpoints (both directions)."""
        return sum(
            len(adj)
            for table in self._tables.values()
            for adj in table.values()
        )

    @property
    def memory_bytes(self) -> int:
        """Estimated footprint at 8 bytes per stored endpoint."""
        return 8 * self.num_entries

    def __repr__(self) -> str:
        return (
            f"AuxiliaryStructure(scope={self._scope!r}, "
            f"pairs={len(self._tables)}, entries={self.num_entries})"
        )

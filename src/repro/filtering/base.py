"""Filter interface plus the two basic rules every method builds on.

Section 3.1.1: the *label and degree filter* (LDF) admits
``C(u) = {v | L(v) = L(u) ∧ d(v) ≥ d(u)}`` and is used by every algorithm;
the *neighbor label frequency filter* (NLF) additionally requires, for each
label ``l`` among ``u``'s neighbors, ``|N(u, l)| ≤ |N(v, l)|``. CFL, CECI
and DP-iso layer NLF on top of LDF.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.obs import record_stage, span, total_candidates

__all__ = [
    "Filter",
    "LDFFilter",
    "NLFFilter",
    "ldf_check",
    "ldf_candidates_for",
    "nlf_check",
]


def ldf_check(query: Graph, u: int, data: Graph, v: int) -> bool:
    """Label-and-degree check: ``L(v) = L(u)`` and ``d(v) ≥ d(u)``."""
    return data.label(v) == query.label(u) and data.degree(v) >= query.degree(u)


def nlf_check(query: Graph, u: int, data: Graph, v: int) -> bool:
    """Neighbor-label-frequency check.

    For every label ``l`` appearing among ``u``'s neighbors, ``v`` must have
    at least as many neighbors with that label.
    """
    v_nlf = data.nlf(v)
    for label, needed in query.nlf(u).items():
        if v_nlf.get(label, 0) < needed:
            return False
    return True


def ldf_candidates_for(query: Graph, u: int, data: Graph):
    """The sorted LDF candidates of one query vertex (int64 array).

    One label-index lookup plus a vectorized degree mask — no per-vertex
    Python loop.
    """
    pool = data.vertices_with_label(query.label(u))
    return pool[data.degrees[pool] >= query.degree(u)]


class Filter(ABC):
    """A candidate-generation method (the paper's "filtering method").

    Implementations must return *complete* candidate sets: every data vertex
    participating in a match of ``q`` survives filtering (Definition 2.2).
    """

    #: Short name used in reports (e.g. ``"GQL"``, ``"CFL"``).
    name: str = "?"

    @abstractmethod
    def run(self, query: Graph, data: Graph) -> CandidateSets:
        """Compute candidate sets for every query vertex."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LDFFilter(Filter):
    """The baseline filter: label and degree only (Figure 8's LDF series)."""

    name = "LDF"

    def run(self, query: Graph, data: Graph) -> CandidateSets:
        with span("filter.ldf"):
            lists = [ldf_candidates_for(query, u, data) for u in query.vertices()]
        record_stage("ldf", total_candidates(lists))
        return CandidateSets(query, lists)


class NLFFilter(Filter):
    """LDF plus the neighbor-label-frequency rule.

    Not an algorithm on its own in the study, but the common starting point
    of CFL, CECI and DP-iso, and useful as an intermediate baseline.
    """

    name = "NLF"

    def run(self, query: Graph, data: Graph) -> CandidateSets:
        with span("filter.ldf"):
            ldf_lists = [
                ldf_candidates_for(query, u, data) for u in query.vertices()
            ]
        record_stage("ldf", total_candidates(ldf_lists))
        with span("filter.nlf"):
            lists = [
                [v for v in ldf_list if nlf_check(query, u, data, v)]
                for u, ldf_list in enumerate(ldf_lists)
            ]
        record_stage("nlf", total_candidates(lists))
        return CandidateSets(query, lists)

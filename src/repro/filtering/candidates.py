"""Candidate vertex sets ``C(u)`` and their bookkeeping.

Every filtering method in the study produces one *complete* candidate set
per query vertex (Definition 2.2: if ``(u, v)`` appears in any match then
``v ∈ C(u)``). This module holds the shared container plus the metrics the
paper reports about it — the average candidate count of Figure 8 and the
memory footprint of Section 5.6.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph

__all__ = ["CandidateSets"]


class CandidateSets:
    """Per-query-vertex candidate lists, sorted and immutable once built.

    Parameters
    ----------
    query:
        The query graph the sets belong to (defines how many sets exist).
    sets:
        ``sets[u]`` is an iterable of data vertices for query vertex ``u``.
        Each is deduplicated and sorted on construction.
    """

    __slots__ = ("_query", "_lists", "_sets", "_arrays")

    def __init__(self, query: Graph, sets: Sequence[Iterable[int]]) -> None:
        if len(sets) != query.num_vertices:
            raise ValueError(
                f"expected {query.num_vertices} candidate sets, got {len(sets)}"
            )
        self._query = query
        self._lists: Tuple[List[int], ...] = tuple(
            sorted(set(int(v) for v in s)) for s in sets
        )
        self._sets: Tuple[frozenset, ...] = tuple(
            frozenset(lst) for lst in self._lists
        )
        self._arrays: Tuple[np.ndarray, ...] = tuple(
            np.asarray(lst, dtype=np.int64) for lst in self._lists
        )

    @property
    def query(self) -> Graph:
        """The query graph these candidates belong to."""
        return self._query

    def __getitem__(self, u: int) -> List[int]:
        """Sorted candidate list ``C(u)`` (do not mutate)."""
        return self._lists[u]

    def __len__(self) -> int:
        return len(self._lists)

    def membership(self, u: int) -> frozenset:
        """``C(u)`` as a frozenset for O(1) membership checks."""
        return self._sets[u]

    def array(self, u: int) -> np.ndarray:
        """``C(u)`` as a sorted int64 array (do not mutate).

        The array is built once at construction; vectorized consumers
        (auxiliary-structure build, kernel backends) index and mask it
        without re-materializing the Python list.
        """
        return self._arrays[u]

    def contains(self, u: int, v: int) -> bool:
        """Whether data vertex ``v`` is a candidate of query vertex ``u``."""
        return v in self._sets[u]

    def size(self, u: int) -> int:
        """``|C(u)|``."""
        return len(self._lists[u])

    @property
    def total_size(self) -> int:
        """``Σ_u |C(u)|``."""
        return sum(len(lst) for lst in self._lists)

    @property
    def average_size(self) -> float:
        """The paper's Figure 8 metric: ``(1/|V(q)|) Σ_u |C(u)|``."""
        if not self._lists:
            return 0.0
        return self.total_size / len(self._lists)

    @property
    def has_empty_set(self) -> bool:
        """True when some ``C(u)`` is empty — the query has no match."""
        return any(not lst for lst in self._lists)

    @property
    def memory_bytes(self) -> int:
        """Estimated footprint, counting 8 bytes per stored candidate id.

        This mirrors how the paper accounts candidate memory (arrays of
        vertex ids), not CPython object overhead.
        """
        return 8 * self.total_size

    def as_dict(self) -> Dict[int, List[int]]:
        """Copy out as ``{u: sorted list}`` (for display and tests)."""
        return {u: list(lst) for u, lst in enumerate(self._lists)}

    def restricted(self, keep: Sequence[Iterable[int]]) -> "CandidateSets":
        """A new container intersecting each ``C(u)`` with ``keep[u]``."""
        if len(keep) != len(self._lists):
            raise ValueError("keep must provide one set per query vertex")
        return CandidateSets(
            self._query,
            [
                [v for v in lst if v in kset]
                for lst, kset in zip(self._lists, [set(k) for k in keep])
            ],
        )

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(lst)) for lst in self._lists)
        return f"CandidateSets(sizes=[{sizes}])"

"""CECI's filtering: candidate generation for the compact embedding cluster index.

Section 3.1.1: CECI shares CFL's two rules but differs in the sweep —

1. **Construction + filtering along δ** (the BFS order). ``C(u)`` is
   generated from its parent set alone; while doing so, parent candidates
   with no child in ``C(u)`` are ruled out. Then each backward *non-tree*
   neighbor ``u_n`` prunes ``C(u)`` and is pruned back (bidirectional, per
   the paper's Example 3.3 where ``v6`` leaves ``C(u1)`` and ``v1`` leaves
   ``C(u2)``).
2. **Refinement along reverse δ.** ``C(u)`` keeps only candidates with a
   neighbor in every *child's* set — children only, which is why the paper
   finds CECI's pruning power weaker than CFL/DP-iso (Figure 8).

Time and space complexity are both ``O(|E(q)|·|E(G)|)``. CECI's auxiliary
structure covers every query edge (scope ``"all"``), enabling Algorithm 5.

Candidate lists live in int64 arrays; generation pools neighbors with one
ragged CSR gather and every pruning step is a batched
:func:`~repro.filtering._common.refine_keep`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.filtering._common import neighbor_union, refine_keep
from repro.filtering.base import Filter, nlf_check
from repro.filtering.candidates import CandidateSets
from repro.filtering.roots import ceci_root
from repro.graph.graph import Graph
from repro.graph.ops import BFSTree, bfs_tree
from repro.obs import add_counter, record_stage, span, total_candidates

__all__ = ["CECIFilter"]


class CECIFilter(Filter):
    """CECI's BFS-order construction and child-based refinement."""

    name = "CECI"

    def run(self, query: Graph, data: Graph) -> CandidateSets:
        tree = self.build_tree(query, data)
        scratch = np.zeros(data.num_vertices, dtype=bool)
        with span("filter.construct"):
            lists = self._construct(query, data, tree, scratch)
        record_stage("construct", total_candidates(lists))
        with span("filter.refine", rule="reverse_bfs"):
            self._refine_reverse(data, tree, lists, scratch)
        add_counter("filter.refinement_iterations")
        record_stage("reverse_bfs", total_candidates(lists))
        return CandidateSets(query, lists)

    @staticmethod
    def build_tree(query: Graph, data: Graph) -> BFSTree:
        """The BFS tree rooted per CECI's ``argmin |C_NLF(u)|/d(u)`` rule."""
        return bfs_tree(query, ceci_root(query, data))

    # ------------------------------------------------------------------

    def _construct(
        self, query: Graph, data: Graph, tree: BFSTree, scratch: np.ndarray
    ) -> List[np.ndarray]:
        n = query.num_vertices
        lists: List[Optional[np.ndarray]] = [None] * n
        position = {v: i for i, v in enumerate(tree.order)}

        root = tree.root
        pool = data.vertices_with_label(query.label(root))
        pool = pool[data.degrees[pool] >= query.degree(root)]
        lists[root] = np.asarray(
            [v for v in pool.tolist() if nlf_check(query, root, data, v)],
            dtype=np.int64,
        )

        for u in tree.order[1:]:
            parent = tree.parent[u]
            # Generate C(u) from the parent set alone (X = {u_p}): one
            # ragged gather over the parent candidates, then LDF + NLF.
            pool = neighbor_union(data, lists[parent])  # type: ignore[arg-type]
            pool = pool[
                (data.labels[pool] == query.label(u))
                & (data.degrees[pool] >= query.degree(u))
            ]
            lists[u] = np.asarray(
                [v for v in pool.tolist() if nlf_check(query, u, data, v)],
                dtype=np.int64,
            )

            # Rule out parent candidates with no child in C(u).
            self._prune_against(data, parent, u, lists, scratch)

            # Non-tree backward neighbors prune C(u) and are pruned back.
            for u_n in query.neighbors(u).tolist():
                if u_n == parent or lists[u_n] is None:
                    continue
                if position[u_n] > position[u]:
                    continue
                self._prune_against(data, u, u_n, lists, scratch)
                self._prune_against(data, u_n, u, lists, scratch)

        assert all(lst is not None for lst in lists)
        return lists  # type: ignore[return-value]

    @staticmethod
    def _prune_against(
        data: Graph,
        target: int,
        anchor: int,
        lists: List[Optional[np.ndarray]],
        scratch: np.ndarray,
    ) -> None:
        """Keep only candidates of ``target`` with a neighbor in ``C(anchor)``."""
        lists[target] = refine_keep(
            data, lists[target], [lists[anchor]], scratch  # type: ignore[arg-type]
        )

    def _refine_reverse(
        self,
        data: Graph,
        tree: BFSTree,
        lists: List[np.ndarray],
        scratch: np.ndarray,
    ) -> None:
        """Reverse-δ refinement against children only."""
        for u in reversed(tree.order):
            if tree.children[u]:
                lists[u] = refine_keep(
                    data,
                    lists[u],
                    [lists[child] for child in tree.children[u]],
                    scratch,
                )

"""CECI's filtering: candidate generation for the compact embedding cluster index.

Section 3.1.1: CECI shares CFL's two rules but differs in the sweep —

1. **Construction + filtering along δ** (the BFS order). ``C(u)`` is
   generated from its parent set alone; while doing so, parent candidates
   with no child in ``C(u)`` are ruled out. Then each backward *non-tree*
   neighbor ``u_n`` prunes ``C(u)`` and is pruned back (bidirectional, per
   the paper's Example 3.3 where ``v6`` leaves ``C(u1)`` and ``v1`` leaves
   ``C(u2)``).
2. **Refinement along reverse δ.** ``C(u)`` keeps only candidates with a
   neighbor in every *child's* set — children only, which is why the paper
   finds CECI's pruning power weaker than CFL/DP-iso (Figure 8).

Time and space complexity are both ``O(|E(q)|·|E(G)|)``. CECI's auxiliary
structure covers every query edge (scope ``"all"``), enabling Algorithm 5.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.filtering._common import has_candidate_neighbor
from repro.filtering.base import Filter, ldf_check, nlf_check
from repro.filtering.candidates import CandidateSets
from repro.filtering.roots import ceci_root
from repro.graph.graph import Graph
from repro.graph.ops import BFSTree, bfs_tree

__all__ = ["CECIFilter"]


class CECIFilter(Filter):
    """CECI's BFS-order construction and child-based refinement."""

    name = "CECI"

    def run(self, query: Graph, data: Graph) -> CandidateSets:
        tree = self.build_tree(query, data)
        lists = self._construct(query, data, tree)
        self._refine_reverse(data, tree, lists)
        return CandidateSets(query, lists)

    @staticmethod
    def build_tree(query: Graph, data: Graph) -> BFSTree:
        """The BFS tree rooted per CECI's ``argmin |C_NLF(u)|/d(u)`` rule."""
        return bfs_tree(query, ceci_root(query, data))

    # ------------------------------------------------------------------

    def _construct(
        self, query: Graph, data: Graph, tree: BFSTree
    ) -> List[List[int]]:
        n = query.num_vertices
        lists: List[Optional[List[int]]] = [None] * n
        sets: List[Optional[Set[int]]] = [None] * n
        position = {v: i for i, v in enumerate(tree.order)}

        root = tree.root
        lists[root] = [
            v
            for v in data.vertices_with_label(query.label(root)).tolist()
            if data.degree(v) >= query.degree(root)
            and nlf_check(query, root, data, v)
        ]
        sets[root] = set(lists[root])

        for u in tree.order[1:]:
            parent = tree.parent[u]
            # Generate C(u) from the parent set alone (X = {u_p}).
            pool: Set[int] = set()
            for v in lists[parent]:  # type: ignore[union-attr]
                pool.update(data.neighbor_set(v))
            generated = [
                v
                for v in sorted(pool)
                if ldf_check(query, u, data, v) and nlf_check(query, u, data, v)
            ]
            lists[u] = generated
            sets[u] = set(generated)

            # Rule out parent candidates with no child in C(u).
            self._prune_against(data, parent, u, lists, sets)

            # Non-tree backward neighbors prune C(u) and are pruned back.
            for u_n in query.neighbors(u).tolist():
                if u_n == parent or lists[u_n] is None:
                    continue
                if position[u_n] > position[u]:
                    continue
                self._prune_against(data, u, u_n, lists, sets)
                self._prune_against(data, u_n, u, lists, sets)

        assert all(lst is not None for lst in lists)
        return lists  # type: ignore[return-value]

    @staticmethod
    def _prune_against(
        data: Graph,
        target: int,
        anchor: int,
        lists: List[Optional[List[int]]],
        sets: List[Optional[Set[int]]],
    ) -> None:
        """Keep only candidates of ``target`` with a neighbor in ``C(anchor)``."""
        kept = [
            v
            for v in lists[target]  # type: ignore[union-attr]
            if has_candidate_neighbor(data, v, lists[anchor], sets[anchor])  # type: ignore[arg-type]
        ]
        if len(kept) != len(lists[target]):  # type: ignore[arg-type]
            lists[target] = kept
            sets[target] = set(kept)

    def _refine_reverse(
        self, data: Graph, tree: BFSTree, lists: List[List[int]]
    ) -> None:
        """Reverse-δ refinement against children only."""
        sets = [set(lst) for lst in lists]
        for u in reversed(tree.order):
            for child in tree.children[u]:
                kept = [
                    v
                    for v in lists[u]
                    if has_candidate_neighbor(data, v, lists[child], sets[child])
                ]
                if len(kept) != len(lists[u]):
                    lists[u] = kept
                    sets[u] = set(kept)

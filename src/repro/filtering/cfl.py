"""CFL's filtering: the candidate generation behind the compressed path index.

Section 3.1.1: CFL builds its auxiliary structure in two phases over a BFS
tree ``q_t`` of the query —

1. **Top-down generation.** Along the BFS order, ``C(u)`` is generated from
   the already-generated neighbors of ``u`` with Generation Rule 3.1
   (intersecting their candidate neighborhoods) under LDF + NLF checks.
   At each step, *backward pruning* applies Filtering Rule 3.1 through
   non-tree edges: once ``C(u)`` exists, candidates of earlier non-tree
   neighbors with no neighbor in ``C(u)`` are removed (this is how ``v6``
   leaves ``C(u1)`` in the paper's Example 3.2).
2. **Bottom-up refinement.** Along the reverse BFS order, ``C(u)`` keeps
   only candidates with a neighbor in every later neighbor's set (this is
   how ``v1`` leaves ``C(u2)`` in Example 3.2).

Time complexity ``O(|E(q)|·|E(G)|)``; the auxiliary structure CFL pairs with
these sets covers *tree edges only* (scope ``"tree"``), which is what limits
its ComputeLC to Algorithm 4.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.filtering._common import has_candidate_neighbor
from repro.filtering.base import Filter, ldf_check, nlf_check
from repro.filtering.candidates import CandidateSets
from repro.filtering.roots import cfl_root
from repro.graph.graph import Graph
from repro.graph.ops import BFSTree, bfs_tree

__all__ = ["CFLFilter"]


class CFLFilter(Filter):
    """CFL's two-phase candidate filtering over a BFS tree."""

    name = "CFL"

    def run(self, query: Graph, data: Graph) -> CandidateSets:
        tree = self.build_tree(query, data)
        lists = self._generate(query, data, tree)
        self._refine_bottom_up(query, data, tree, lists)
        return CandidateSets(query, lists)

    @staticmethod
    def build_tree(query: Graph, data: Graph) -> BFSTree:
        """The BFS tree ``q_t`` rooted per CFL's root-selection rule."""
        return bfs_tree(query, cfl_root(query, data))

    # ------------------------------------------------------------------

    def _generate(
        self, query: Graph, data: Graph, tree: BFSTree
    ) -> List[List[int]]:
        """Top-down generation with per-level backward pruning.

        Backward pruning applies Filtering Rule 3.1 only through non-tree
        edges between *same-level* vertices (this is how ``v6`` leaves
        ``C(u1)`` via ``e(u1, u2)`` in Example 3.2); cross-level non-tree
        edges participate in generation (their earlier endpoint is in the
        Generation Rule's ``X``) but prune upward only in the bottom-up
        refinement phase.
        """
        n = query.num_vertices
        lists: List[Optional[List[int]]] = [None] * n
        sets: List[Optional[Set[int]]] = [None] * n
        depth = tree.depth

        for u in tree.order:
            backward = [
                w
                for w in query.neighbors(u).tolist()
                if lists[w] is not None
            ]
            lists[u] = self._generate_one(query, data, u, backward, lists, sets)
            sets[u] = set(lists[u])

            # Same-level backward pruning (necessarily non-tree edges,
            # since tree edges always cross levels).
            for w in backward:
                if depth[w] != depth[u]:
                    continue
                kept = [
                    v
                    for v in lists[w]
                    if has_candidate_neighbor(data, v, lists[u], sets[u])
                ]
                if len(kept) != len(lists[w]):
                    lists[w] = kept
                    sets[w] = set(kept)

        assert all(lst is not None for lst in lists)
        return lists  # type: ignore[return-value]

    def _generate_one(
        self,
        query: Graph,
        data: Graph,
        u: int,
        backward: List[int],
        lists: List[Optional[List[int]]],
        sets: List[Optional[Set[int]]],
    ) -> List[int]:
        """Generation Rule 3.1 for one vertex, under LDF + NLF checks."""
        if not backward:
            # The root: plain LDF + NLF.
            return [
                v
                for v in data.vertices_with_label(query.label(u)).tolist()
                if data.degree(v) >= query.degree(u)
                and nlf_check(query, u, data, v)
            ]
        # Expand from the smallest backward candidate set, then verify
        # LDF/NLF and adjacency to every other backward set.
        seed = min(backward, key=lambda w: len(lists[w]))  # type: ignore[arg-type]
        others = [w for w in backward if w != seed]
        pool: Set[int] = set()
        for v in lists[seed]:  # type: ignore[union-attr]
            pool.update(data.neighbor_set(v))
        survivors = []
        for v in sorted(pool):
            if not ldf_check(query, u, data, v):
                continue
            if not nlf_check(query, u, data, v):
                continue
            if all(
                has_candidate_neighbor(data, v, lists[w], sets[w])  # type: ignore[arg-type]
                for w in others
            ):
                survivors.append(v)
        return survivors

    @staticmethod
    def _refine_bottom_up(
        query: Graph,
        data: Graph,
        tree: BFSTree,
        lists: List[List[int]],
    ) -> None:
        """Reverse-BFS sweep of Filtering Rule 3.1 over *deeper* neighbors.

        Per Example 3.2, the bottom-up phase prunes ``C(u)`` only against
        neighbors at strictly greater tree depth (``C(u1)`` and ``C(u2)``
        are refined based on ``C(u3)``, not against each other).
        """
        depth = tree.depth
        sets = [set(lst) for lst in lists]
        for u in reversed(tree.order):
            deeper = [
                w
                for w in query.neighbors(u).tolist()
                if depth[w] > depth[u]
            ]
            if not deeper:
                continue
            kept = [
                v
                for v in lists[u]
                if all(
                    has_candidate_neighbor(data, v, lists[w], sets[w])
                    for w in deeper
                )
            ]
            if len(kept) != len(lists[u]):
                lists[u] = kept
                sets[u] = set(kept)

"""CFL's filtering: the candidate generation behind the compressed path index.

Section 3.1.1: CFL builds its auxiliary structure in two phases over a BFS
tree ``q_t`` of the query —

1. **Top-down generation.** Along the BFS order, ``C(u)`` is generated from
   the already-generated neighbors of ``u`` with Generation Rule 3.1
   (intersecting their candidate neighborhoods) under LDF + NLF checks.
   At each step, *backward pruning* applies Filtering Rule 3.1 through
   non-tree edges: once ``C(u)`` exists, candidates of earlier non-tree
   neighbors with no neighbor in ``C(u)`` are removed (this is how ``v6``
   leaves ``C(u1)`` in the paper's Example 3.2).
2. **Bottom-up refinement.** Along the reverse BFS order, ``C(u)`` keeps
   only candidates with a neighbor in every later neighbor's set (this is
   how ``v1`` leaves ``C(u2)`` in Example 3.2).

Time complexity ``O(|E(q)|·|E(G)|)``; the auxiliary structure CFL pairs with
these sets covers *tree edges only* (scope ``"tree"``), which is what limits
its ComputeLC to Algorithm 4.

Both phases run on the CSR arrays directly: candidate lists are int64
arrays, neighbor expansion is one ragged gather + ``np.unique``, and every
Filtering Rule 3.1 sweep is a batched :func:`~repro.filtering._common.refine_keep`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.filtering._common import neighbor_union, refine_keep
from repro.filtering.base import Filter, nlf_check
from repro.filtering.candidates import CandidateSets
from repro.filtering.roots import cfl_root
from repro.graph.graph import Graph
from repro.graph.ops import BFSTree, bfs_tree
from repro.obs import add_counter, record_stage, span, total_candidates

__all__ = ["CFLFilter"]


class CFLFilter(Filter):
    """CFL's two-phase candidate filtering over a BFS tree."""

    name = "CFL"

    def run(self, query: Graph, data: Graph) -> CandidateSets:
        tree = self.build_tree(query, data)
        scratch = np.zeros(data.num_vertices, dtype=bool)
        with span("filter.top_down"):
            lists = self._generate(query, data, tree, scratch)
        record_stage("top_down", total_candidates(lists))
        with span("filter.refine", rule="bottom_up"):
            self._refine_bottom_up(query, data, tree, lists, scratch)
        add_counter("filter.refinement_iterations")
        record_stage("bottom_up", total_candidates(lists))
        return CandidateSets(query, lists)

    @staticmethod
    def build_tree(query: Graph, data: Graph) -> BFSTree:
        """The BFS tree ``q_t`` rooted per CFL's root-selection rule."""
        return bfs_tree(query, cfl_root(query, data))

    # ------------------------------------------------------------------

    def _generate(
        self, query: Graph, data: Graph, tree: BFSTree, scratch: np.ndarray
    ) -> List[np.ndarray]:
        """Top-down generation with per-level backward pruning.

        Backward pruning applies Filtering Rule 3.1 only through non-tree
        edges between *same-level* vertices (this is how ``v6`` leaves
        ``C(u1)`` via ``e(u1, u2)`` in Example 3.2); cross-level non-tree
        edges participate in generation (their earlier endpoint is in the
        Generation Rule's ``X``) but prune upward only in the bottom-up
        refinement phase.
        """
        n = query.num_vertices
        lists: List[Optional[np.ndarray]] = [None] * n
        depth = tree.depth

        for u in tree.order:
            backward = [
                w
                for w in query.neighbors(u).tolist()
                if lists[w] is not None
            ]
            lists[u] = self._generate_one(query, data, u, backward, lists, scratch)

            # Same-level backward pruning (necessarily non-tree edges,
            # since tree edges always cross levels).
            for w in backward:
                if depth[w] != depth[u]:
                    continue
                lists[w] = refine_keep(data, lists[w], [lists[u]], scratch)

        assert all(lst is not None for lst in lists)
        return lists  # type: ignore[return-value]

    def _generate_one(
        self,
        query: Graph,
        data: Graph,
        u: int,
        backward: List[int],
        lists: List[Optional[np.ndarray]],
        scratch: np.ndarray,
    ) -> np.ndarray:
        """Generation Rule 3.1 for one vertex, under LDF + NLF checks."""
        if not backward:
            # The root: plain LDF + NLF.
            pool = data.vertices_with_label(query.label(u))
            pool = pool[data.degrees[pool] >= query.degree(u)]
            others: List[np.ndarray] = []
        else:
            # Expand from the smallest backward candidate set, then apply
            # LDF in one vectorized pass over the pooled neighbors.
            seed = min(backward, key=lambda w: len(lists[w]))  # type: ignore[arg-type]
            others = [lists[w] for w in backward if w != seed]  # type: ignore[misc]
            pool = neighbor_union(data, lists[seed])  # type: ignore[arg-type]
            pool = pool[
                (data.labels[pool] == query.label(u))
                & (data.degrees[pool] >= query.degree(u))
            ]
        survivors = np.asarray(
            [v for v in pool.tolist() if nlf_check(query, u, data, v)],
            dtype=np.int64,
        )
        return refine_keep(data, survivors, others, scratch)

    @staticmethod
    def _refine_bottom_up(
        query: Graph,
        data: Graph,
        tree: BFSTree,
        lists: List[np.ndarray],
        scratch: np.ndarray,
    ) -> None:
        """Reverse-BFS sweep of Filtering Rule 3.1 over *deeper* neighbors.

        Per Example 3.2, the bottom-up phase prunes ``C(u)`` only against
        neighbors at strictly greater tree depth (``C(u1)`` and ``C(u2)``
        are refined based on ``C(u3)``, not against each other).
        """
        depth = tree.depth
        for u in reversed(tree.order):
            deeper = [
                w
                for w in query.neighbors(u).tolist()
                if depth[w] > depth[u]
            ]
            if not deeper:
                continue
            lists[u] = refine_keep(
                data, lists[u], [lists[w] for w in deeper], scratch
            )

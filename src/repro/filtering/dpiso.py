"""DP-iso's filtering: the candidate space construction.

Section 3.1.1: DP-iso initializes every ``C(u)`` with LDF, then runs ``k``
refinement sweeps of Filtering Rule 3.1, alternating direction over the BFS
order δ —

* sweeps in **reverse δ** refine ``C(u)`` against ``C(u')`` for the
  *forward* neighbors ``u' ∈ N_-^δ(u)`` (already refined in this sweep);
  the first sweep additionally applies NLF;
* sweeps **along δ** refine against the *backward* neighbors
  ``u' ∈ N_+^δ(u)``.

The original paper sets ``k = 3`` (reverse, forward, reverse). Time and
space complexity are ``O(|E(q)|·|E(G)|)``; the resulting candidate space
keeps adjacency for every query edge (scope ``"all"``), enabling the
set-intersection ComputeLC of Algorithm 5.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.filtering._common import as_vertex_array, refine_keep
from repro.filtering.base import Filter, ldf_candidates_for, nlf_check
from repro.filtering.candidates import CandidateSets
from repro.filtering.roots import dpiso_root
from repro.graph.graph import Graph
from repro.graph.ops import BFSTree, bfs_tree
from repro.obs import add_counter, record_stage, span, total_candidates

__all__ = ["DPisoFilter"]


class DPisoFilter(Filter):
    """DP-iso's alternating-sweep candidate-space filter.

    Parameters
    ----------
    refinement_phases:
        The ``k`` of the paper (default 3). Phase 1, 3, 5, … run in reverse
        δ; phase 2, 4, … along δ.
    """

    name = "DP"

    def __init__(self, refinement_phases: int = 3) -> None:
        if refinement_phases < 1:
            raise ValueError("DP-iso needs at least one refinement phase")
        self.refinement_phases = refinement_phases

    def run(self, query: Graph, data: Graph) -> CandidateSets:
        tree = self.build_tree(query, data)
        position = {v: i for i, v in enumerate(tree.order)}

        with span("filter.ldf"):
            lists: List[np.ndarray] = [
                as_vertex_array(ldf_candidates_for(query, u, data))
                for u in query.vertices()
            ]
        record_stage("ldf", total_candidates(lists))
        scratch = np.zeros(data.num_vertices, dtype=bool)

        for phase in range(1, self.refinement_phases + 1):
            reverse = phase % 2 == 1
            apply_nlf = phase == 1
            with span(
                "filter.refine",
                rule="rule_3_1",
                phase=phase,
                direction="reverse" if reverse else "forward",
            ):
                order = reversed(tree.order) if reverse else tree.order
                for u in order:
                    if reverse:
                        anchors = [
                            w
                            for w in query.neighbors(u).tolist()
                            if position[w] > position[u]
                        ]
                    else:
                        anchors = [
                            w
                            for w in query.neighbors(u).tolist()
                            if position[w] < position[u]
                        ]
                    vs = lists[u]
                    if apply_nlf:
                        vs = np.asarray(
                            [v for v in vs.tolist() if nlf_check(query, u, data, v)],
                            dtype=np.int64,
                        )
                    lists[u] = refine_keep(
                        data, vs, [lists[w] for w in anchors], scratch
                    )
            add_counter("filter.refinement_iterations")
            record_stage(f"phase_{phase}", total_candidates(lists))

        return CandidateSets(query, lists)

    @staticmethod
    def build_tree(query: Graph, data: Graph) -> BFSTree:
        """The BFS tree rooted per DP-iso's ``argmin |C_LDF(u)|/d(u)`` rule."""
        return bfs_tree(query, dpiso_root(query, data))

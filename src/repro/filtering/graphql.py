"""GraphQL's candidate filtering: profile pruning + pseudo-isomorphism.

Section 3.1.1: GraphQL works in two steps.

1. **Local pruning** — the *profile* of a vertex is the lexicographic
   (sorted) sequence of the labels of the vertex and of all vertices within
   distance ``r``. ``v`` survives for ``u`` iff ``u``'s profile is a
   sub-sequence of ``v``'s (multiset inclusion, since both are sorted).
2. **Global refinement** — a pseudo subgraph-isomorphism test repeated ``k``
   times: for ``v ∈ C(u)``, build the bipartite graph ``B_v^u`` between
   ``N(u)`` and ``N(v)`` with an edge ``(u', v')`` whenever ``v' ∈ C(u')``,
   and drop ``v`` unless a *semi-perfect matching* (all of ``N(u)``
   matched) exists.

The time complexity with ``k = 1, r = 1`` is
``O(|V(q)|·|E(G)| + Σ_u Σ_v (d(u)·d(v) + Θ(d(u), d(v))))`` — higher than
CFL/CECI/DP-iso, which is the paper's explanation for GraphQL's slower
preprocessing (Figure 7) despite competitive pruning power (Figure 8).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from repro.filtering.base import Filter, ldf_candidates_for
from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.obs import add_counter, record_stage, span, total_candidates

__all__ = ["GraphQLFilter", "profile", "is_subsequence", "has_semi_perfect_matching"]


def profile(graph: Graph, v: int, radius: int = 1) -> Tuple[int, ...]:
    """Sorted labels of ``v`` and every vertex within ``radius`` hops.

    With ``radius=1`` this is the paper's running example: the profile of
    ``u1`` in Figure 1(a) is ``ABCD``.
    """
    if radius == 1:
        # Fast path; r=1 is the paper's default.
        labels = [graph.label(v)]
        labels.extend(graph.label(w) for w in graph.neighbors(v).tolist())
        return tuple(sorted(labels))
    seen = {v}
    frontier = deque([(v, 0)])
    labels = []
    while frontier:
        w, dist = frontier.popleft()
        labels.append(graph.label(w))
        if dist < radius:
            for x in graph.neighbors(w).tolist():
                if x not in seen:
                    seen.add(x)
                    frontier.append((x, dist + 1))
    return tuple(sorted(labels))


def is_subsequence(needle: Sequence[int], haystack: Sequence[int]) -> bool:
    """Whether sorted ``needle`` embeds into sorted ``haystack``.

    For sorted sequences this is exactly multiset inclusion.

    >>> is_subsequence((1, 2, 2), (1, 2, 2, 3))
    True
    >>> is_subsequence((1, 2, 2), (1, 2, 3))
    False
    """
    i = 0
    n = len(needle)
    if n > len(haystack):
        return False
    for x in haystack:
        if i < n and needle[i] == x:
            i += 1
        elif i < n and needle[i] < x:
            return False
    return i == n


def has_semi_perfect_matching(
    left_count: int, adjacency: Sequence[Sequence[int]], right_count: int
) -> bool:
    """Whether a bipartite graph has a matching covering every left vertex.

    ``adjacency[i]`` lists the right-side vertices reachable from left
    vertex ``i``. Kuhn's augmenting-path algorithm; the left side is a query
    neighborhood so sizes are tiny and O(V·E) is fine.
    """
    if left_count > right_count:
        return False
    match_of_right: List[int] = [-1] * right_count

    def try_augment(i: int, visited: Set[int]) -> bool:
        for j in adjacency[i]:
            if j in visited:
                continue
            visited.add(j)
            if match_of_right[j] == -1 or try_augment(match_of_right[j], visited):
                match_of_right[j] = i
                return True
        return False

    for i in range(left_count):
        if not try_augment(i, set()):
            return False
    return True


class GraphQLFilter(Filter):
    """GraphQL's local pruning + global pseudo-isomorphism refinement.

    Parameters
    ----------
    radius:
        Profile radius ``r`` (paper default 1).
    refinement_rounds:
        Number of global-refinement sweeps ``k`` (paper default 1; the
        pseudo-isomorphism test "repeats the above procedure k times").
    """

    name = "GQL"

    def __init__(self, radius: int = 1, refinement_rounds: int = 1) -> None:
        if radius < 1:
            raise ValueError("profile radius must be >= 1")
        if refinement_rounds < 0:
            raise ValueError("refinement rounds must be >= 0")
        self.radius = radius
        self.refinement_rounds = refinement_rounds

    def run(self, query: Graph, data: Graph) -> CandidateSets:
        with span("filter.local_pruning"):
            lists = self._local_pruning(query, data)
        record_stage("ldf+profile", total_candidates(lists))
        self._global_refinement(query, data, lists)
        return CandidateSets(query, lists)

    # ------------------------------------------------------------------

    def _local_pruning(self, query: Graph, data: Graph) -> List[List[int]]:
        """LDF + profile sub-sequence check per candidate."""
        data_profiles: Dict[int, Tuple[int, ...]] = {}
        lists: List[List[int]] = []
        for u in query.vertices():
            u_profile = profile(query, u, self.radius)
            survivors = []
            for v in ldf_candidates_for(query, u, data):
                v_profile = data_profiles.get(v)
                if v_profile is None:
                    v_profile = profile(data, v, self.radius)
                    data_profiles[v] = v_profile
                if is_subsequence(u_profile, v_profile):
                    survivors.append(v)
            lists.append(survivors)
        return lists

    def _global_refinement(
        self, query: Graph, data: Graph, lists: List[List[int]]
    ) -> None:
        """k sweeps of the pseudo subgraph-isomorphism test, in place.

        Candidates are re-checked against the *current* sets (GraphQL
        refines along an order, so removals in earlier sets strengthen
        later checks within the same sweep).
        """
        membership: List[Set[int]] = [set(lst) for lst in lists]
        for sweep in range(self.refinement_rounds):
            with span("filter.refine", rule="pseudo_iso", sweep=sweep):
                changed = False
                for u in query.vertices():
                    u_neighbors = query.neighbors(u).tolist()
                    if not u_neighbors:
                        continue
                    kept = []
                    for v in lists[u]:
                        if self._pseudo_iso_ok(data, u_neighbors, v, membership):
                            kept.append(v)
                        else:
                            membership[u].discard(v)
                            changed = True
                    lists[u] = kept
            add_counter("filter.refinement_iterations")
            record_stage("pseudo_iso", total_candidates(lists))
            if not changed:
                break

    @staticmethod
    def _pseudo_iso_ok(
        data: Graph,
        u_neighbors: List[int],
        v: int,
        membership: List[Set[int]],
    ) -> bool:
        """Semi-perfect matching test between ``N(u)`` and ``N(v)``."""
        v_neighbors = data.neighbors(v).tolist()
        right_index = {w: j for j, w in enumerate(v_neighbors)}
        adjacency: List[List[int]] = []
        for u_prime in u_neighbors:
            allowed = membership[u_prime]
            row = [right_index[w] for w in v_neighbors if w in allowed]
            if not row:
                return False
            adjacency.append(row)
        return has_semi_perfect_matching(
            len(u_neighbors), adjacency, len(v_neighbors)
        )

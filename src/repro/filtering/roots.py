"""BFS-root selection rules of CFL, CECI and DP-iso.

Each preprocessing-enumeration algorithm roots its BFS tree differently
(Section 3.2):

* **CFL** — among core vertices, take the three minimizing
  ``|{v : L(v) = L(u)}| / d(u)``, then the one with the fewest NLF
  candidates.
* **CECI** — ``argmin_u |C_NLF(u)| / d(u)``.
* **DP-iso** — ``argmin_u |C_LDF(u)| / d(u)``.

Ties break toward the smaller vertex id so runs are deterministic.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.filtering.base import ldf_candidates_for, nlf_check
from repro.graph.graph import Graph
from repro.graph.ops import two_core

__all__ = ["cfl_root", "ceci_root", "dpiso_root"]


def _nlf_candidate_count(query: Graph, u: int, data: Graph) -> int:
    return sum(
        1
        for v in ldf_candidates_for(query, u, data)
        if nlf_check(query, u, data, v)
    )


def _ldf_candidate_count(query: Graph, u: int, data: Graph) -> int:
    return len(ldf_candidates_for(query, u, data))


def _argmin(vertices: Iterable[int], key) -> int:
    best = None
    best_key = None
    for u in vertices:
        k = key(u)
        if best_key is None or k < best_key:
            best, best_key = u, k
    assert best is not None, "argmin over empty vertex set"
    return best


def cfl_root(query: Graph, data: Graph) -> int:
    """CFL's root: rarest-label-per-degree core vertex with fewest NLF candidates."""
    core = sorted(two_core(query))
    pool: List[int] = core if core else list(query.vertices())

    def rarity(u: int) -> float:
        return data.label_frequency(query.label(u)) / max(1, query.degree(u))

    top3 = sorted(pool, key=lambda u: (rarity(u), u))[:3]
    return _argmin(top3, lambda u: (_nlf_candidate_count(query, u, data), u))


def ceci_root(query: Graph, data: Graph) -> int:
    """CECI's root: ``argmin |C_NLF(u)| / d(u)``."""
    return _argmin(
        query.vertices(),
        lambda u: (_nlf_candidate_count(query, u, data) / max(1, query.degree(u)), u),
    )


def dpiso_root(query: Graph, data: Graph) -> int:
    """DP-iso's root: ``argmin |C_LDF(u)| / d(u)``."""
    return _argmin(
        query.vertices(),
        lambda u: (_ldf_candidate_count(query, u, data) / max(1, query.degree(u)), u),
    )

"""The STEADY baseline: Filtering Rule 3.1 iterated to a fixpoint.

Section 3.1.2: "Ideally, we can repeat refining C(u) to reach a *steady
state*, in which for each v ∈ C(u) and u ∈ V(q), v satisfies the constraint
in Observation 3.1, but this process can be time consuming." Figure 8 plots
this steady state as the lower bound the practical filters approach.

Starting from LDF + NLF (the initial sets of the algorithms STEADY lower-
bounds), we sweep all query vertices until no candidate changes — this is
arc-consistency over the "has a neighbor in every neighbor's set"
constraint, so the fixpoint is unique regardless of sweep order.
"""

from __future__ import annotations

from repro.filtering._common import has_candidate_neighbor
from repro.filtering.base import Filter, ldf_candidates_for, nlf_check
from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.obs import add_counter, record_stage, span, total_candidates

__all__ = ["SteadyFilter"]


class SteadyFilter(Filter):
    """Fixpoint refinement under Filtering Rule 3.1 (Figure 8's STEADY)."""

    name = "STEADY"

    def __init__(self, max_iterations: int = 1000) -> None:
        if max_iterations < 1:
            raise ValueError("need at least one iteration")
        self.max_iterations = max_iterations
        #: Sweeps the last :meth:`run` needed to converge (for analysis).
        self.last_iterations = 0

    def run(self, query: Graph, data: Graph) -> CandidateSets:
        with span("filter.nlf"):
            lists = [
                [
                    v
                    for v in ldf_candidates_for(query, u, data)
                    if nlf_check(query, u, data, v)
                ]
                for u in query.vertices()
            ]
        record_stage("ldf+nlf", total_candidates(lists))
        sets = [set(lst) for lst in lists]
        neighbor_lists = [query.neighbors(u).tolist() for u in query.vertices()]

        self.last_iterations = 0
        for sweep in range(self.max_iterations):
            self.last_iterations += 1
            with span("filter.refine", rule="steady", sweep=sweep):
                changed = False
                for u in query.vertices():
                    anchors = neighbor_lists[u]
                    kept = [
                        v
                        for v in lists[u]
                        if all(
                            has_candidate_neighbor(data, v, lists[w], sets[w])
                            for w in anchors
                        )
                    ]
                    if len(kept) != len(lists[u]):
                        lists[u] = kept
                        sets[u] = set(kept)
                        changed = True
            add_counter("filter.refinement_iterations")
            if not changed:
                break
        record_stage("steady", total_candidates(lists))
        return CandidateSets(query, lists)

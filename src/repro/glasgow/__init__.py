"""Glasgow: subgraph matching as constraint programming (paper Section 3.5).

Glasgow cannot be decomposed into the common framework (its variable
selection, value ordering and propagation are interleaved with the search),
so — exactly as in the paper — it is compared end-to-end only.
"""

from repro.glasgow.solver import GlasgowSolver, glasgow_match

__all__ = ["GlasgowSolver", "glasgow_match"]

"""The Glasgow subgraph solver, re-implemented as described in Section 3.5.

Glasgow models subgraph matching as constraint programming: query vertices
are variables, query edges are constraints, and domains range over data
vertices. Per the paper's description:

* initial domains come from labels and the degrees of ``u' ∈ N(u)``
  (we implement the neighbourhood degree-sequence dominance test) — no
  edges between candidates are maintained;
* no matching order is generated in advance: at each search node the
  unassigned variable with the *minimum remaining domain* is selected;
* values are tried *largest data-vertex degree first* (Glasgow is tuned
  for decision queries, where high-degree vertices succeed sooner);
* each assignment triggers inference — adjacency propagation into
  neighboring domains, all-different filtering, and a Hall-style pigeonhole
  check;
* the solver copies all domains at every search node, the status the paper
  blames for Glasgow's large memory footprint (it ran out of memory on
  the bigger datasets in Figure 16).

Domains are bitsets packed into Python big-ints, so propagation is a few
``&`` operations per neighbor regardless of graph size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.result import MatchResult
from repro.errors import BudgetExceeded
from repro.graph.graph import Graph
from repro.utils.timer import Deadline, Timer

__all__ = ["GlasgowSolver", "glasgow_match"]


class _StopSearch(Exception):
    """Match cap reached; unwind."""


def _degree_sequence_dominates(
    needed: List[int], available: List[int]
) -> bool:
    """Whether ``available`` (desc) dominates ``needed`` (desc) pointwise."""
    if len(needed) > len(available):
        return False
    return all(a >= n for n, a in zip(needed, available))


class GlasgowSolver:
    """A constraint-programming subgraph enumerator in the Glasgow style.

    One instance is bound to a query/data pair; :meth:`solve` runs the
    search. ``peak_domain_copies`` tracks how many per-node domain copies
    were live at once — the memory behaviour the paper calls out.
    """

    def __init__(self, query: Graph, data: Graph) -> None:
        self.query = query
        self.data = data
        self._neighbor_mask: List[int] = self._build_neighbor_masks(data)
        self._degree_order: List[int] = sorted(
            data.vertices(), key=lambda v: (-data.degree(v), v)
        )
        self._rank = {v: i for i, v in enumerate(self._degree_order)}
        self.nodes_explored = 0
        self.peak_domain_copies = 0

    @staticmethod
    def _build_neighbor_masks(data: Graph) -> List[int]:
        masks = []
        for v in data.vertices():
            bits = 0
            for w in data.neighbors(v).tolist():
                bits |= 1 << w
            masks.append(bits)
        return masks

    # ------------------------------------------------------------------
    # Initial domains
    # ------------------------------------------------------------------

    def initial_domains(self) -> List[int]:
        """Label + neighbourhood-degree-sequence domains, as bitsets."""
        query, data = self.query, self.data
        degree_sequences: Dict[int, List[int]] = {}

        def data_sequence(v: int) -> List[int]:
            seq = degree_sequences.get(v)
            if seq is None:
                seq = sorted(
                    (data.degree(w) for w in data.neighbors(v).tolist()),
                    reverse=True,
                )
                degree_sequences[v] = seq
            return seq

        domains = []
        for u in query.vertices():
            needed = sorted(
                (query.degree(w) for w in query.neighbors(u).tolist()),
                reverse=True,
            )
            bits = 0
            for v in data.vertices_with_label(query.label(u)).tolist():
                if data.degree(v) < query.degree(u):
                    continue
                if _degree_sequence_dominates(needed, data_sequence(v)):
                    bits |= 1 << v
            domains.append(bits)
        return domains

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def solve(
        self,
        match_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
        store_limit: int = 10_000,
    ) -> MatchResult:
        """Enumerate all matches (up to the limits)."""
        self.nodes_explored = 0
        self.peak_domain_copies = 0
        self._match_limit = match_limit
        self._store_limit = store_limit
        self._deadline = Deadline(time_limit) if time_limit else None
        self._tick = 512
        self._matches: List[Tuple[int, ...]] = []
        self._num_matches = 0
        self._assignment: List[int] = [-1] * self.query.num_vertices
        self._live_copies = 0

        with Timer() as prep_timer:
            domains = self.initial_domains()

        solved = True
        with Timer() as timer:
            try:
                if all(domains):
                    self._search(domains, 0)
            except _StopSearch:
                pass
            except BudgetExceeded:
                solved = False

        return MatchResult(
            algorithm="GLW",
            num_matches=self._num_matches,
            solved=solved,
            embeddings=self._matches,
            order=None,
            preprocessing_seconds=prep_timer.elapsed,
            enumeration_seconds=timer.elapsed,
            candidate_average=None,
            memory_bytes=self._estimate_memory(),
        )

    def _estimate_memory(self) -> int:
        """Peak bytes in domain copies: n_q bitsets of |V(G)| bits per node."""
        per_copy = self.query.num_vertices * (self.data.num_vertices // 8 + 1)
        return self.peak_domain_copies * per_copy

    def _search(self, domains: List[int], assigned_count: int) -> None:
        self.nodes_explored += 1
        self._tick -= 1
        if self._tick <= 0:
            self._tick = 512
            if self._deadline is not None and self._deadline.expired():
                raise BudgetExceeded

        n = self.query.num_vertices
        if assigned_count == n:
            self._record()
            return

        # Smallest-domain variable selection.
        variable = -1
        best_size = None
        for u in range(n):
            if self._assignment[u] != -1:
                continue
            size = domains[u].bit_count()
            if best_size is None or size < best_size:
                variable, best_size = u, size
        if best_size == 0:
            return

        # Largest-degree-first value ordering.
        values = self._decode_by_degree(domains[variable])
        query_neighbors = self.query.neighbors(variable).tolist()

        for v in values:
            child = list(domains)  # Glasgow copies all domains per node.
            self._live_copies += 1
            self.peak_domain_copies = max(
                self.peak_domain_copies, self._live_copies
            )
            if self._propagate(child, variable, v, query_neighbors):
                self._assignment[variable] = v
                self._search(child, assigned_count + 1)
                self._assignment[variable] = -1
            self._live_copies -= 1

    def _decode_by_degree(self, bits: int) -> List[int]:
        values = []
        while bits:
            low = bits & -bits
            values.append(low.bit_length() - 1)
            bits ^= low
        values.sort(key=lambda v: self._rank[v])
        return values

    def _propagate(
        self,
        domains: List[int],
        variable: int,
        value: int,
        query_neighbors: List[int],
    ) -> bool:
        """Inference after assigning ``variable := value``.

        Fixes the assigned domain to a singleton, removes ``value``
        everywhere else (all-different), intersects neighboring domains
        with ``N(value)``, then runs a Hall-style pigeonhole check over the
        unassigned domains. Returns False on wipe-out.
        """
        value_bit = 1 << value
        domains[variable] = value_bit
        neighbor_mask = self._neighbor_mask[value]
        not_value = ~value_bit

        neighbor_set = set(query_neighbors)
        for u in range(self.query.num_vertices):
            if u == variable or self._assignment[u] != -1:
                continue
            d = domains[u] & not_value
            if u in neighbor_set:
                d &= neighbor_mask
            if not d:
                return False
            domains[u] = d

        return self._halls_check(domains)

    def _halls_check(self, domains: List[int]) -> bool:
        """Pigeonhole all-different filter over the unassigned variables.

        Walking domains in ascending size, if the union of the first k
        covers fewer than k values there is no injective assignment.
        """
        unassigned = [
            domains[u]
            for u in range(self.query.num_vertices)
            if self._assignment[u] == -1
        ]
        unassigned.sort(key=int.bit_count)
        union = 0
        for count, bits in enumerate(unassigned, start=1):
            union |= bits
            if union.bit_count() < count:
                return False
        return True

    def _record(self) -> None:
        self._num_matches += 1
        if len(self._matches) < self._store_limit:
            self._matches.append(tuple(self._assignment))
        if (
            self._match_limit is not None
            and self._num_matches >= self._match_limit
        ):
            raise _StopSearch


def glasgow_match(
    query: Graph,
    data: Graph,
    match_limit: Optional[int] = 100_000,
    time_limit: Optional[float] = None,
    store_limit: int = 10_000,
) -> MatchResult:
    """Convenience wrapper: build a solver and enumerate matches."""
    return GlasgowSolver(query, data).solve(
        match_limit=match_limit,
        time_limit=time_limit,
        store_limit=store_limit,
    )

"""Graph substrate: labeled undirected graphs in CSR form plus tooling.

This package provides everything the matching algorithms consume:

* :class:`~repro.graph.graph.Graph` — the immutable CSR graph used for both
  query and data graphs,
* :mod:`~repro.graph.io` — readers/writers for the ``.graph`` text format
  used by the paper's reference repository,
* :mod:`~repro.graph.generators` — seeded RMAT / Erdős–Rényi generators and
  label assigners,
* :mod:`~repro.graph.query_gen` — random-walk query extraction producing the
  dense/sparse query sets of the paper's Table 4,
* :mod:`~repro.graph.ops` — 2-core, BFS trees and related structure helpers,
* :mod:`~repro.graph.fingerprint` — order-invariant query fingerprints for
  the plan cache of :class:`~repro.core.session.MatchSession`,
* :mod:`~repro.graph.store` — the pluggable storage layer: one canonical
  CSR layout behind in-memory, ``.rgf``/memmap, and shared-memory
  backends.
"""

from repro.graph.fingerprint import query_fingerprint, vertex_signatures
from repro.graph.graph import Graph
from repro.graph.io import load_graph, loads_graph, save_graph, dumps_graph
from repro.graph.store import (
    GraphStore,
    InMemoryStore,
    MmapStore,
    SharedMemoryStore,
    as_graph,
    write_rgf,
)
from repro.graph.generators import (
    erdos_renyi_graph,
    rmat_graph,
    uniform_labels,
    zipf_labels,
)
from repro.graph.query_gen import extract_query, generate_query_set
from repro.graph.metrics import (
    degree_histogram,
    density,
    global_clustering_coefficient,
    triangle_count,
)
from repro.graph.ops import bfs_tree, connected, core_vertices, two_core

__all__ = [
    "Graph",
    "GraphStore",
    "InMemoryStore",
    "MmapStore",
    "SharedMemoryStore",
    "as_graph",
    "write_rgf",
    "query_fingerprint",
    "vertex_signatures",
    "load_graph",
    "loads_graph",
    "save_graph",
    "dumps_graph",
    "erdos_renyi_graph",
    "rmat_graph",
    "uniform_labels",
    "zipf_labels",
    "extract_query",
    "generate_query_set",
    "bfs_tree",
    "connected",
    "core_vertices",
    "two_core",
    "triangle_count",
    "global_clustering_coefficient",
    "density",
    "degree_histogram",
]

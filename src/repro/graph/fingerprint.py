"""Canonical query fingerprints for plan caching.

A :class:`~repro.core.session.MatchSession` caches compiled
:class:`~repro.core.plan.MatchPlan` objects keyed by the *structure* of the
query, not its vertex numbering: the repeated-query workloads the paper
evaluates (many queries against one resident data graph) routinely resubmit
the same pattern under a different vertex ordering, and those must hit the
same cache slot.

:func:`query_fingerprint` hashes the multiset of per-vertex signatures
``(label, degree, sorted NLF)`` plus the multiset of edge signatures (the
unordered pair of endpoint signatures), so it is invariant under any
permutation of vertex ids but sensitive to labels, degrees and the
label-degree-NLF structure of the edge set. It is a 1-WL-style invariant,
not a full canonical form: non-isomorphic graphs *may* collide, which is
why plan contents are restricted to fingerprint-stable inputs (see
:func:`repro.core.plan.compile_plan`) and per-query *preprocessing* is
cached under exact graph equality instead.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

from repro.graph.graph import Graph

__all__ = ["query_fingerprint", "vertex_signatures"]


def vertex_signatures(graph: Graph) -> List[Tuple]:
    """Per-vertex structural signature ``(label, degree, sorted NLF)``.

    ``signatures[v]`` depends only on ``v``'s label, degree and the label
    histogram of its neighborhood — quantities preserved by any renumbering
    of vertex ids.
    """
    return [
        (
            graph.label(v),
            graph.degree(v),
            tuple(sorted(graph.nlf(v).items())),
        )
        for v in graph.vertices()
    ]


def query_fingerprint(graph: Graph) -> str:
    """Order-invariant label-degree-NLF hash of ``graph``.

    Two graphs that differ only by a permutation of vertex ids produce the
    same fingerprint; changing any label, edge or degree changes it (up to
    hash collisions of the underlying 1-WL invariant).

    >>> g = Graph(labels=[0, 1, 2], edges=[(0, 1), (1, 2)])
    >>> h = Graph(labels=[2, 1, 0], edges=[(1, 2), (0, 1)])  # ids reversed
    >>> query_fingerprint(g) == query_fingerprint(h)
    True
    >>> query_fingerprint(g) == query_fingerprint(
    ...     Graph(labels=[0, 1, 1], edges=[(0, 1), (1, 2)])
    ... )
    False
    """
    signatures = vertex_signatures(graph)
    vertex_part = sorted(repr(sig) for sig in signatures)
    edge_part = sorted(
        repr(tuple(sorted((repr(signatures[u]), repr(signatures[v])))))
        for u, v in graph.edges()
    )
    payload = "|".join(
        [
            f"V={graph.num_vertices}",
            f"E={graph.num_edges}",
            ";".join(vertex_part),
            ";".join(edge_part),
        ]
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return f"q{graph.num_vertices}e{graph.num_edges}-{digest[:24]}"

"""Seeded random graph generators.

The paper's synthetic experiments (Figures 17–18) use the RMAT model with
``a=0.45, b=0.22, c=0.22, d=0.11`` and uniformly random labels. We provide
that generator plus Erdős–Rényi (for small test graphs) and two label
assigners: uniform (the paper's choice for unlabeled datasets) and Zipf
(to mimic the skewed label frequencies of the bio/lexical graphs, e.g. the
WordNet property that >80% of vertices share one label).

Every generator takes an integer ``seed`` and is fully deterministic.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import InvalidGraphError
from repro.graph.graph import Graph

__all__ = [
    "RMAT_DEFAULT_PARTITION",
    "erdos_renyi_graph",
    "rmat_graph",
    "uniform_labels",
    "zipf_labels",
]

#: RMAT quadrant probabilities used throughout the paper's synthetic study.
RMAT_DEFAULT_PARTITION: Tuple[float, float, float, float] = (0.45, 0.22, 0.22, 0.11)


def uniform_labels(num_vertices: int, num_labels: int, seed: int) -> List[int]:
    """Assign each vertex a label drawn uniformly from ``0..num_labels-1``.

    This is the paper's method for originally-unlabeled datasets: "randomly
    chooses a label from a label set Σ and assigns the label to the vertex".
    """
    if num_labels < 1:
        raise InvalidGraphError("need at least one label")
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_labels, size=num_vertices).tolist()


def zipf_labels(
    num_vertices: int, num_labels: int, seed: int, exponent: float = 1.5
) -> List[int]:
    """Assign labels with Zipf-skewed frequencies.

    Label 0 is the most frequent; with the default exponent and a small
    label set the top label covers the majority of vertices, mimicking
    WordNet-like datasets where most vertices share a label.
    """
    if num_labels < 1:
        raise InvalidGraphError("need at least one label")
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, num_labels + 1, dtype=np.float64) ** exponent
    weights /= weights.sum()
    return rng.choice(num_labels, size=num_vertices, p=weights).tolist()


def erdos_renyi_graph(
    num_vertices: int,
    average_degree: float,
    num_labels: int,
    seed: int,
) -> Graph:
    """A G(n, m) random graph with ``m ≈ n * average_degree / 2`` edges.

    Used for small deterministic test graphs; labels are uniform.
    """
    if num_vertices < 1:
        raise InvalidGraphError("need at least one vertex")
    rng = np.random.default_rng(seed)
    target_edges = int(round(num_vertices * average_degree / 2.0))
    max_edges = num_vertices * (num_vertices - 1) // 2
    target_edges = min(target_edges, max_edges)

    edges = set()
    # Rejection-sample distinct pairs; dense requests fall back to sampling
    # from the full pair universe to guarantee termination.
    if target_edges > max_edges // 2:
        all_pairs = [
            (u, v)
            for u in range(num_vertices)
            for v in range(u + 1, num_vertices)
        ]
        idx = rng.choice(len(all_pairs), size=target_edges, replace=False)
        edges = {all_pairs[i] for i in idx}
    else:
        while len(edges) < target_edges:
            u = int(rng.integers(0, num_vertices))
            v = int(rng.integers(0, num_vertices))
            if u != v:
                edges.add((min(u, v), max(u, v)))

    labels = uniform_labels(num_vertices, num_labels, seed + 1)
    return Graph(labels=labels, edges=sorted(edges))


def _rmat_edge(
    rng: np.random.Generator,
    scale: int,
    partition: Tuple[float, float, float, float],
) -> Tuple[int, int]:
    """Draw one RMAT edge by recursive quadrant selection."""
    a, b, c, _ = partition
    u = v = 0
    for _ in range(scale):
        r = rng.random()
        u <<= 1
        v <<= 1
        if r < a:
            pass
        elif r < a + b:
            v |= 1
        elif r < a + b + c:
            u |= 1
        else:
            u |= 1
            v |= 1
    return u, v


def rmat_graph(
    num_vertices: int,
    average_degree: float,
    num_labels: int,
    seed: int,
    partition: Tuple[float, float, float, float] = RMAT_DEFAULT_PARTITION,
    label_skew: float | None = None,
    clustering: float = 0.0,
) -> Graph:
    """A power-law graph from the RMAT model (Chakrabarti et al., SDM'04).

    Parameters mirror the paper's synthetic setup: ``partition`` defaults to
    ``(0.45, 0.22, 0.22, 0.11)`` and labels are uniform unless ``label_skew``
    is given, in which case a Zipf assignment with that exponent is used.

    ``clustering`` diverts that fraction of the edge budget to a triadic-
    closure pass (closing randomly sampled wedges). Plain RMAT has almost
    no triangles, unlike the real social/bio graphs it stands in for; the
    closure pass restores the dense pockets that the paper's dense query
    sets (``d(q) ≥ 3``) are extracted from.

    The generator over-samples to compensate for duplicate/self-loop
    rejection, so the realized edge count lands close to the target
    ``num_vertices * average_degree / 2``. Vertex ids are randomly permuted
    to avoid the RMAT artifact that low ids are hubs.
    """
    if num_vertices < 2:
        raise InvalidGraphError("RMAT needs at least two vertices")
    if abs(sum(partition) - 1.0) > 1e-9:
        raise InvalidGraphError("RMAT partition probabilities must sum to 1")
    if not 0.0 <= clustering < 1.0:
        raise InvalidGraphError("clustering must be in [0, 1)")

    rng = np.random.default_rng(seed)
    scale = max(1, int(np.ceil(np.log2(num_vertices))))
    side = 1 << scale
    target_edges = int(round(num_vertices * average_degree / 2.0))
    base_edges = int(round(target_edges * (1.0 - clustering)))

    permutation = rng.permutation(side)
    edges = set()
    attempts = 0
    max_attempts = 50 * base_edges + 1000
    while len(edges) < base_edges and attempts < max_attempts:
        attempts += 1
        raw_u, raw_v = _rmat_edge(rng, scale, partition)
        u = int(permutation[raw_u]) % num_vertices
        v = int(permutation[raw_v]) % num_vertices
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))

    if clustering > 0.0:
        _close_triangles(rng, num_vertices, edges, target_edges)

    if label_skew is None:
        labels = uniform_labels(num_vertices, num_labels, seed + 1)
    else:
        labels = zipf_labels(num_vertices, num_labels, seed + 1, exponent=label_skew)
    return Graph(labels=labels, edges=sorted(edges))


def _close_triangles(
    rng: np.random.Generator,
    num_vertices: int,
    edges: set,
    target_edges: int,
) -> None:
    """Grow ``edges`` toward ``target_edges`` by closing random wedges.

    Sampling favours wedge centers proportionally to degree (a wedge is a
    uniform pick among edge endpoints), so closures concentrate around
    hubs and create the dense communities real graphs exhibit.
    """
    adjacency: list = [[] for _ in range(num_vertices)]
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    endpoints = [u for edge in edges for u in edge]
    if not endpoints:
        return
    attempts = 0
    max_attempts = 50 * max(1, target_edges - len(edges)) + 1000
    while len(edges) < target_edges and attempts < max_attempts:
        attempts += 1
        center = endpoints[int(rng.integers(0, len(endpoints)))]
        neighbors = adjacency[center]
        if len(neighbors) < 2:
            continue
        i = int(rng.integers(0, len(neighbors)))
        j = int(rng.integers(0, len(neighbors)))
        u, v = neighbors[i], neighbors[j]
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in edges:
            continue
        edges.add(key)
        adjacency[u].append(v)
        adjacency[v].append(u)
        endpoints.append(u)
        endpoints.append(v)

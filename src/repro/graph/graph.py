"""The labeled undirected graph used throughout the study.

The paper stores data graphs as compressed sparse rows (CSR) with sorted
neighbor arrays and checks edge existence by binary search (Section 3.3.2).
We mirror that layout: ``offsets``/``neighbors`` numpy arrays hold the CSR,
and per-vertex ``frozenset`` views give the O(1) membership checks that the
pure-Python enumeration loop needs to stay competitive.

Vertices are dense integers ``0 .. n-1``; labels are non-negative integers.
Graphs are immutable once built, which lets candidate structures and indexes
cache derived data freely.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidGraphError

__all__ = ["Graph"]


def _normalize_edges(
    num_vertices: int, edges: Iterable[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Validate and deduplicate an undirected edge list.

    Returns each edge once, as ``(min, max)`` pairs. Self loops and
    out-of-range endpoints raise :class:`InvalidGraphError`.
    """
    seen = set()
    normalized = []
    for u, v in edges:
        u = int(u)
        v = int(v)
        if u == v:
            raise InvalidGraphError(f"self loop on vertex {u} is not allowed")
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise InvalidGraphError(
                f"edge ({u}, {v}) out of range for {num_vertices} vertices"
            )
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        normalized.append(key)
    return normalized


class Graph:
    """An immutable, undirected, vertex-labeled graph in CSR form.

    Parameters
    ----------
    labels:
        Sequence of non-negative integer labels; ``labels[v]`` is the label
        of vertex ``v``. Its length defines the number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs. Duplicates are collapsed; self loops
        are rejected.

    Examples
    --------
    >>> g = Graph(labels=[0, 1, 1], edges=[(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> g.degree(1)
    2
    >>> g.neighbors(1).tolist()
    [0, 2]
    """

    __slots__ = (
        "_labels",
        "_offsets",
        "_neighbors",
        "_degrees",
        "_neighbor_sets",
        "_label_index",
        "_nlf_cache",
        "_elf_cache",
        "_num_edges",
        "_store",
        "__weakref__",
    )

    def __init__(
        self,
        labels: Sequence[int],
        edges: Iterable[Tuple[int, int]],
    ) -> None:
        labels_arr = np.asarray(list(labels), dtype=np.int64)
        if labels_arr.ndim != 1:
            raise InvalidGraphError("labels must be a flat sequence")
        if labels_arr.size and labels_arr.min() < 0:
            raise InvalidGraphError("labels must be non-negative integers")

        n = int(labels_arr.size)
        edge_list = _normalize_edges(n, edges)

        # Vectorized CSR build: mirror every edge, lexsort by (source,
        # target) so each vertex's neighbor slice comes out sorted, and
        # read the degrees off a bincount. No per-edge Python loop.
        if edge_list:
            e = np.asarray(edge_list, dtype=np.int64)
            src = np.concatenate([e[:, 0], e[:, 1]])
            dst = np.concatenate([e[:, 1], e[:, 0]])
            order = np.lexsort((dst, src))
            degrees = np.bincount(src, minlength=n).astype(np.int64, copy=False)
            neighbors = dst[order]
        else:
            degrees = np.zeros(n, dtype=np.int64)
            neighbors = np.empty(0, dtype=np.int64)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])

        self._labels = labels_arr
        self._offsets = offsets
        self._neighbors = neighbors
        self._degrees = degrees
        self._num_edges = len(edge_list)
        # Per-vertex frozensets are a Python loop over |V|; built lazily
        # so consumers that stay on the CSR arrays (the frame machine,
        # shared-memory workers) never pay for them.
        self._neighbor_sets: Optional[Tuple[frozenset, ...]] = None
        self._label_index = self._build_label_index(labels_arr, None)
        self._nlf_cache: List[Dict[int, int]] | None = None
        self._elf_cache: Dict[Tuple[int, int], int] | None = None
        self._store = None

    @staticmethod
    def _build_label_index(
        labels_arr: np.ndarray, by_label: Optional[np.ndarray]
    ) -> Dict[int, np.ndarray]:
        """Label → sorted vertex array, loop-free.

        A stable argsort groups vertices by label while keeping ids
        ascending inside each group; callers that already hold the sorted
        permutation (a shared-memory attach) pass it in and skip the sort.
        """
        index: Dict[int, np.ndarray] = {}
        n = int(labels_arr.size)
        if n:
            if by_label is None:
                by_label = np.argsort(labels_arr, kind="stable")
            uniq, starts = np.unique(labels_arr[by_label], return_index=True)
            bounds = np.append(starts, n)
            for i, label in enumerate(uniq.tolist()):
                index[int(label)] = by_label[bounds[i]:bounds[i + 1]]
        return index

    @classmethod
    def from_csr(
        cls,
        labels: np.ndarray,
        offsets: np.ndarray,
        neighbors: np.ndarray,
        num_edges: int,
        by_label: Optional[np.ndarray] = None,
        store: Optional[object] = None,
    ) -> "Graph":
        """Adopt prebuilt CSR arrays without copying or re-sorting.

        The arrays must already satisfy the class invariants (sorted
        neighbor slices, mirrored undirected edges, int64 dtype); this is
        the zero-copy attach path for shared-memory and memory-mapped
        graphs, so the arrays may be read-only views into a buffer owned
        by someone else. ``by_label``, when given, is the stable
        label-sorted vertex permutation (what the label index is built
        from) and skips recomputing the argsort. ``store``, when given,
        is the :class:`~repro.graph.store.GraphStore` that owns the
        arrays; the graph keeps a reference so the backing buffer (a
        memmap or shared-memory segment) outlives any cached views.
        """
        graph = cls.__new__(cls)
        graph._labels = labels
        graph._offsets = offsets
        graph._neighbors = neighbors
        graph._degrees = np.diff(offsets)
        graph._num_edges = int(num_edges)
        graph._neighbor_sets = None
        graph._label_index = cls._build_label_index(labels, by_label)
        graph._nlf_cache = None
        graph._elf_cache = None
        graph._store = store
        return graph

    @classmethod
    def from_store(cls, store: object) -> "Graph":
        """The graph view over a :class:`~repro.graph.store.GraphStore`.

        Zero-copy: the returned graph's arrays are the store's arrays,
        and the label index derives from the store's precomputed
        ``by_label`` permutation without re-sorting.
        """
        return cls.from_csr(
            store.labels,
            store.offsets,
            store.neighbors,
            num_edges=store.num_edges,
            by_label=store.by_label,
            store=store,
        )

    @property
    def store(self) -> "object":
        """The :class:`~repro.graph.store.GraphStore` owning this graph's
        arrays, wrapping them in an in-memory store on first access for
        graphs built directly from labels/edges.
        """
        if self._store is None:
            from repro.graph.store import InMemoryStore

            self._store = InMemoryStore.from_graph(self)
        return self._store

    def _ensure_neighbor_sets(self) -> Tuple[frozenset, ...]:
        if self._neighbor_sets is None:
            offsets, neighbors = self._offsets, self._neighbors
            self._neighbor_sets = tuple(
                frozenset(neighbors[offsets[v]:offsets[v + 1]].tolist())
                for v in range(self.num_vertices)
            )
        return self._neighbor_sets

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return int(self._labels.size)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    @property
    def labels(self) -> np.ndarray:
        """Read-only label array; ``labels[v]`` is the label of ``v``."""
        return self._labels

    def label(self, v: int) -> int:
        """Label ``L(v)`` of vertex ``v``."""
        return int(self._labels[v])

    def degree(self, v: int) -> int:
        """Degree ``d(v)`` of vertex ``v``."""
        return int(self._degrees[v])

    @property
    def degrees(self) -> np.ndarray:
        """Read-only degree array; ``degrees[v]`` is ``d(v)``."""
        return self._degrees

    @property
    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The raw ``(offsets, neighbors)`` CSR arrays (do not mutate).

        ``neighbors[offsets[v]:offsets[v + 1]]`` is the sorted neighbor
        slice of ``v``; vectorized consumers (the kernel backends and the
        filtering refinement passes) gather directly from these arrays.
        """
        return self._offsets, self._neighbors

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array ``N(v)`` (a view into the CSR, do not mutate)."""
        return self._neighbors[self._offsets[v]:self._offsets[v + 1]]

    def neighbor_set(self, v: int) -> frozenset:
        """Neighbors of ``v`` as a frozenset for O(1) membership checks."""
        return self._ensure_neighbor_sets()[v]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``e(u, v)`` exists."""
        return v in self._ensure_neighbor_sets()[u]

    def vertices(self) -> range:
        """Iterate vertex ids ``0 .. n-1``."""
        return range(self.num_vertices)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each undirected edge once as ``(u, v)`` with ``u < v``."""
        for u in self.vertices():
            for v in self.neighbors(u):
                v = int(v)
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Label statistics
    # ------------------------------------------------------------------

    @property
    def label_set(self) -> frozenset:
        """The set of labels ``Σ`` that actually occur."""
        return frozenset(self._label_index)

    def vertices_with_label(self, label: int) -> np.ndarray:
        """Sorted vertices carrying ``label`` (empty array if absent)."""
        return self._label_index.get(label, np.empty(0, dtype=np.int64))

    def label_frequency(self, label: int) -> int:
        """Number of vertices carrying ``label``."""
        return int(self._label_index.get(label, np.empty(0)).size)

    def nlf(self, v: int) -> Dict[int, int]:
        """Neighbor label frequency of ``v``: ``{label: |N(v, label)|}``.

        This is the signature used by the NLF filter (Section 3.1.1);
        computed once per graph and cached.
        """
        if self._nlf_cache is None:
            labels = self._labels
            cache: List[Dict[int, int]] = []
            for u in self.vertices():
                counts: Dict[int, int] = {}
                for w in self.neighbors(u).tolist():
                    lbl = int(labels[w])
                    counts[lbl] = counts.get(lbl, 0) + 1
                cache.append(counts)
            self._nlf_cache = cache
        return self._nlf_cache[v]

    def edge_label_frequency(self, label_a: int, label_b: int) -> int:
        """Number of edges whose endpoint labels are ``{label_a, label_b}``.

        This is QuickSI's edge weight
        ``w(e(u, u')) = |{e(v, v') ∈ E(G) | L(v) = L(u) ∧ L(v') = L(u')}|``
        (Section 3.2); the full table is computed once per graph and cached.
        """
        if self._elf_cache is None:
            table: Dict[Tuple[int, int], int] = {}
            labels = self._labels
            for u, v in self.edges():
                la, lb = int(labels[u]), int(labels[v])
                key = (la, lb) if la <= lb else (lb, la)
                table[key] = table.get(key, 0) + 1
            self._elf_cache = table
        key = (
            (label_a, label_b) if label_a <= label_b else (label_b, label_a)
        )
        return self._elf_cache.get(key, 0)

    # ------------------------------------------------------------------
    # Aggregate properties
    # ------------------------------------------------------------------

    @property
    def average_degree(self) -> float:
        """Average degree ``2|E| / |V|`` (0 for the empty graph)."""
        if self.num_vertices == 0:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    @property
    def max_degree(self) -> int:
        """Largest vertex degree (0 for the empty graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self._degrees.max())

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def induced_subgraph(
        self, vertex_subset: Iterable[int]
    ) -> Tuple["Graph", Dict[int, int]]:
        """Vertex-induced subgraph ``g[V']`` on ``vertex_subset``.

        Returns the new graph (vertices renumbered ``0..k-1`` in ascending
        order of the originals) and the mapping from new ids to original ids.
        """
        chosen = sorted(set(int(v) for v in vertex_subset))
        for v in chosen:
            if not (0 <= v < self.num_vertices):
                raise InvalidGraphError(f"vertex {v} not in graph")
        old_to_new = {old: new for new, old in enumerate(chosen)}
        labels = [self.label(v) for v in chosen]
        edges = [
            (old_to_new[u], old_to_new[v])
            for u in chosen
            for v in self.neighbors(u).tolist()
            if v in old_to_new and u < v
        ]
        new_to_old = {new: old for old, new in old_to_new.items()}
        return Graph(labels=labels, edges=edges), new_to_old

    def relabeled(self, labels: Sequence[int]) -> "Graph":
        """A copy of this graph with a fresh label assignment."""
        if len(labels) != self.num_vertices:
            raise InvalidGraphError(
                f"expected {self.num_vertices} labels, got {len(labels)}"
            )
        return Graph(labels=labels, edges=list(self.edges()))

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        # Residency is process-local: a memmap or shared-memory store
        # must not ride a pickle (workers re-attach through handles), and
        # the backing arrays may be read-only buffer views — materialize
        # them so the unpickled graph stands alone.
        return {
            "_labels": np.array(self._labels, dtype=np.int64),
            "_offsets": np.array(self._offsets, dtype=np.int64),
            "_neighbors": np.array(self._neighbors, dtype=np.int64),
            "_num_edges": self._num_edges,
        }

    def __setstate__(self, state: dict) -> None:
        self._labels = state["_labels"]
        self._offsets = state["_offsets"]
        self._neighbors = state["_neighbors"]
        self._num_edges = state["_num_edges"]
        self._degrees = np.diff(self._offsets)
        self._neighbor_sets = None
        self._label_index = self._build_label_index(self._labels, None)
        self._nlf_cache = None
        self._elf_cache = None
        self._store = None

    def __repr__(self) -> str:
        return (
            f"Graph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"|Σ|={len(self._label_index)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            np.array_equal(self._labels, other._labels)
            and np.array_equal(self._offsets, other._offsets)
            and np.array_equal(self._neighbors, other._neighbors)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.num_vertices,
                self.num_edges,
                self._labels.tobytes(),
                self._neighbors.tobytes(),
            )
        )

"""Readers and writers for the ``.graph`` text and ``.rgf`` binary formats.

The paper's reference repository (RapidsAtHKUST/SubgraphMatching) stores
graphs as plain text::

    t <num_vertices> <num_edges>
    v <vertex_id> <label> <degree>
    ...
    e <vertex_id> <vertex_id>
    ...

Vertex ids must be ``0 .. n-1``. The per-vertex degree on the ``v`` line is
redundant; on load we verify it when present and recompute it on save.
Blank lines and ``#`` comments are ignored so hand-written fixtures stay
readable.

:func:`load_graph` and :func:`save_graph` also speak the ``.rgf`` binary
format (see :mod:`repro.graph.store`): a ``.rgf`` suffix — or the
``RGF1`` magic, whatever the suffix — opens memmap-backed in O(header)
instead of parsing text. Every malformed input, text or binary, raises
:class:`~repro.errors.GraphFormatError` carrying the file and line/offset
where parsing stopped; raw ``ValueError``/``IndexError`` never escape.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import GraphFormatError, InvalidGraphError
from repro.graph.graph import Graph

__all__ = ["load_graph", "loads_graph", "save_graph", "dumps_graph"]


def loads_graph(text: str, source: Optional[str] = None) -> Graph:
    """Parse a graph from ``.graph``-format text.

    ``source`` (usually a file name) prefixes every error message so a
    failure inside a batch load points at the offending file.

    >>> g = loads_graph('t 3 2\\nv 0 5 1\\nv 1 5 2\\nv 2 7 1\\ne 0 1\\ne 1 2\\n')
    >>> (g.num_vertices, g.num_edges, g.label(2))
    (3, 2, 7)
    """
    prefix = f"{source}: " if source else ""

    def fail(msg: str) -> GraphFormatError:
        return GraphFormatError(prefix + msg)

    def to_int(token: str, lineno: int, what: str) -> int:
        try:
            return int(token)
        except ValueError:
            raise fail(
                f"line {lineno}: {what} must be an integer, got {token!r}"
            ) from None

    header: Tuple[int, int] | None = None
    labels: List[int] = []
    declared_degrees: List[int | None] = []
    edges: List[Tuple[int, int]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "t":
            if header is not None:
                raise fail(f"line {lineno}: duplicate 't' header")
            if len(parts) != 3:
                raise fail(f"line {lineno}: 't' needs |V| and |E|")
            header = (
                to_int(parts[1], lineno, "vertex count"),
                to_int(parts[2], lineno, "edge count"),
            )
        elif kind == "v":
            if len(parts) not in (3, 4):
                raise fail(
                    f"line {lineno}: 'v' needs id and label (degree optional)"
                )
            vid = to_int(parts[1], lineno, "vertex id")
            if vid != len(labels):
                raise fail(
                    f"line {lineno}: vertex ids must be consecutive from 0, "
                    f"expected {len(labels)} got {vid}"
                )
            labels.append(to_int(parts[2], lineno, "vertex label"))
            declared_degrees.append(
                to_int(parts[3], lineno, "vertex degree")
                if len(parts) == 4
                else None
            )
        elif kind == "e":
            if len(parts) < 3:
                raise fail(f"line {lineno}: 'e' needs two endpoints")
            edges.append(
                (
                    to_int(parts[1], lineno, "edge endpoint"),
                    to_int(parts[2], lineno, "edge endpoint"),
                )
            )
        else:
            raise fail(f"line {lineno}: unknown record type {kind!r}")

    if header is None:
        raise fail("missing 't <|V|> <|E|>' header")
    if header[0] != len(labels):
        raise fail(
            f"header declares {header[0]} vertices but {len(labels)} 'v' lines found"
        )
    if header[1] != len(edges):
        raise fail(
            f"header declares {header[1]} edges but {len(edges)} 'e' lines found"
        )

    try:
        graph = Graph(labels=labels, edges=edges)
    except InvalidGraphError as exc:
        raise fail(str(exc)) from exc
    for v, declared in enumerate(declared_degrees):
        if declared is not None and declared != graph.degree(v):
            raise fail(
                f"vertex {v}: declared degree {declared} != actual {graph.degree(v)}"
            )
    return graph


def _looks_like_rgf(path: Path) -> bool:
    from repro.graph.store import RGF_MAGIC

    if path.suffix == ".rgf":
        return True
    try:
        with open(path, "rb") as fh:
            return fh.read(len(RGF_MAGIC)) == RGF_MAGIC
    except OSError:
        return False


def load_graph(path: Union[str, Path]) -> Graph:
    """Load a graph from a ``.graph`` text file or an ``.rgf`` binary file.

    ``.rgf`` files (by suffix or magic) open as a memmap-backed
    :class:`~repro.graph.store.MmapStore` view — O(header) regardless of
    graph size; the OS pages array data in as matching reads it.
    """
    path = Path(path)
    if _looks_like_rgf(path):
        from repro.graph.store import MmapStore

        return MmapStore(path).graph()
    try:
        text = path.read_text()
    except OSError as exc:
        raise GraphFormatError(f"{path}: cannot read: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise GraphFormatError(
            f"{path}: not text (byte offset {exc.start}) and not an rgf file"
        ) from exc
    return loads_graph(text, source=str(path))


def dumps_graph(graph: Graph) -> str:
    """Serialize ``graph`` to ``.graph``-format text."""
    lines = [f"t {graph.num_vertices} {graph.num_edges}"]
    for v in graph.vertices():
        lines.append(f"v {v} {graph.label(v)} {graph.degree(v)}")
    for u, v in graph.edges():
        lines.append(f"e {u} {v}")
    return "\n".join(lines) + "\n"


def save_graph(graph: Graph, path: Union[str, Path]) -> None:
    """Write ``graph`` to ``path`` — ``.rgf`` suffix selects the binary
    format, anything else the ``.graph`` text format."""
    path = Path(path)
    if path.suffix == ".rgf":
        from repro.graph.store import write_rgf

        write_rgf(graph, path)
        return
    path.write_text(dumps_graph(graph))

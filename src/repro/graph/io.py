"""Readers and writers for the ``.graph`` text format.

The paper's reference repository (RapidsAtHKUST/SubgraphMatching) stores
graphs as plain text::

    t <num_vertices> <num_edges>
    v <vertex_id> <label> <degree>
    ...
    e <vertex_id> <vertex_id>
    ...

Vertex ids must be ``0 .. n-1``. The per-vertex degree on the ``v`` line is
redundant; on load we verify it when present and recompute it on save.
Blank lines and ``#`` comments are ignored so hand-written fixtures stay
readable.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["load_graph", "loads_graph", "save_graph", "dumps_graph"]


def loads_graph(text: str) -> Graph:
    """Parse a graph from ``.graph``-format text.

    >>> g = loads_graph('t 3 2\\nv 0 5 1\\nv 1 5 2\\nv 2 7 1\\ne 0 1\\ne 1 2\\n')
    >>> (g.num_vertices, g.num_edges, g.label(2))
    (3, 2, 7)
    """
    header: Tuple[int, int] | None = None
    labels: List[int] = []
    declared_degrees: List[int | None] = []
    edges: List[Tuple[int, int]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "t":
            if header is not None:
                raise GraphFormatError(f"line {lineno}: duplicate 't' header")
            if len(parts) != 3:
                raise GraphFormatError(f"line {lineno}: 't' needs |V| and |E|")
            header = (int(parts[1]), int(parts[2]))
        elif kind == "v":
            if len(parts) not in (3, 4):
                raise GraphFormatError(
                    f"line {lineno}: 'v' needs id and label (degree optional)"
                )
            vid = int(parts[1])
            if vid != len(labels):
                raise GraphFormatError(
                    f"line {lineno}: vertex ids must be consecutive from 0, "
                    f"expected {len(labels)} got {vid}"
                )
            labels.append(int(parts[2]))
            declared_degrees.append(int(parts[3]) if len(parts) == 4 else None)
        elif kind == "e":
            if len(parts) < 3:
                raise GraphFormatError(f"line {lineno}: 'e' needs two endpoints")
            edges.append((int(parts[1]), int(parts[2])))
        else:
            raise GraphFormatError(f"line {lineno}: unknown record type {kind!r}")

    if header is None:
        raise GraphFormatError("missing 't <|V|> <|E|>' header")
    if header[0] != len(labels):
        raise GraphFormatError(
            f"header declares {header[0]} vertices but {len(labels)} 'v' lines found"
        )
    if header[1] != len(edges):
        raise GraphFormatError(
            f"header declares {header[1]} edges but {len(edges)} 'e' lines found"
        )

    graph = Graph(labels=labels, edges=edges)
    for v, declared in enumerate(declared_degrees):
        if declared is not None and declared != graph.degree(v):
            raise GraphFormatError(
                f"vertex {v}: declared degree {declared} != actual {graph.degree(v)}"
            )
    return graph


def load_graph(path: Union[str, Path]) -> Graph:
    """Load a graph from a ``.graph`` file."""
    return loads_graph(Path(path).read_text())


def dumps_graph(graph: Graph) -> str:
    """Serialize ``graph`` to ``.graph``-format text."""
    lines = [f"t {graph.num_vertices} {graph.num_edges}"]
    for v in graph.vertices():
        lines.append(f"v {v} {graph.label(v)} {graph.degree(v)}")
    for u, v in graph.edges():
        lines.append(f"e {u} {v}")
    return "\n".join(lines) + "\n"


def save_graph(graph: Graph, path: Union[str, Path]) -> None:
    """Write ``graph`` to ``path`` in ``.graph`` format."""
    Path(path).write_text(dumps_graph(graph))

"""Structural graph metrics used for dataset validation and analysis.

The stand-in generators are judged by the properties that drive the
study's behaviour: degree distribution (hubs), clustering (dense query
extractability), and density. These helpers quantify them.
"""

from __future__ import annotations

from typing import Dict

from repro.graph.graph import Graph

__all__ = [
    "triangle_count",
    "global_clustering_coefficient",
    "density",
    "degree_histogram",
]


def triangle_count(graph: Graph) -> int:
    """Number of triangles (each counted once)."""
    count = 0
    for u, v in graph.edges():
        smaller, larger = (
            (u, v)
            if graph.degree(u) <= graph.degree(v)
            else (v, u)
        )
        larger_nb = graph.neighbor_set(larger)
        for w in graph.neighbors(smaller).tolist():
            # Count each triangle at its lexicographically largest edge
            # endpoint pair to avoid triple counting.
            if w > max(u, v) and w in larger_nb:
                count += 1
    return count


def global_clustering_coefficient(graph: Graph) -> float:
    """``3 · #triangles / #wedges`` (transitivity); 0 for wedge-free graphs."""
    wedges = 0
    for v in graph.vertices():
        d = graph.degree(v)
        wedges += d * (d - 1) // 2
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def density(graph: Graph) -> float:
    """``2|E| / (|V|(|V|-1))``; 0 for graphs with < 2 vertices."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """``{degree: #vertices}`` over the whole graph."""
    histogram: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram

"""Structural graph helpers used by the ordering and filtering methods.

These are the small pieces the paper takes for granted: the 2-core used by
CFL's ordering, BFS trees (the ``q_t`` of Section 2.1) with tree / non-tree
edge classification, and connectivity checks for query validation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.graph.graph import Graph

__all__ = ["BFSTree", "bfs_tree", "connected", "core_vertices", "two_core"]


def connected(graph: Graph) -> bool:
    """Whether ``graph`` is connected (the empty graph counts as connected)."""
    n = graph.num_vertices
    if n <= 1:
        return True
    seen = [False] * n
    seen[0] = True
    queue = deque([0])
    count = 1
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u).tolist():
            if not seen[v]:
                seen[v] = True
                count += 1
                queue.append(v)
    return count == n


def two_core(graph: Graph) -> Set[int]:
    """Vertices of the 2-core: repeatedly peel vertices of degree < 2.

    Matches the paper's definition — the maximal subgraph in which every
    vertex has degree ≥ 2 (union over connected components).
    """
    degrees = [graph.degree(v) for v in graph.vertices()]
    removed = [False] * graph.num_vertices
    queue = deque(v for v in graph.vertices() if degrees[v] < 2)
    while queue:
        u = queue.popleft()
        if removed[u]:
            continue
        removed[u] = True
        for v in graph.neighbors(u).tolist():
            if not removed[v]:
                degrees[v] -= 1
                if degrees[v] < 2:
                    queue.append(v)
    return {v for v in graph.vertices() if not removed[v]}


def core_vertices(graph: Graph) -> Set[int]:
    """Alias matching the paper's terminology: vertices in the 2-core of q."""
    return two_core(graph)


@dataclass(frozen=True)
class BFSTree:
    """A BFS spanning tree ``q_t`` of a connected graph.

    Attributes
    ----------
    root:
        The BFS root.
    order:
        The BFS traversal order ``δ`` (a permutation of the vertices).
    parent:
        ``parent[v]`` is the tree parent of ``v`` (``-1`` for the root).
    children:
        ``children[v]`` lists tree children in traversal order.
    depth:
        ``depth[v]`` is the distance from the root.
    tree_edges:
        The edges of ``q_t``, as ``(parent, child)`` pairs.
    non_tree_edges:
        Edges of the graph absent from ``q_t``, as ``(u, v)`` with ``u``
        earlier in ``δ`` than ``v``.
    """

    root: int
    order: Tuple[int, ...]
    parent: Tuple[int, ...]
    children: Tuple[Tuple[int, ...], ...]
    depth: Tuple[int, ...]
    tree_edges: Tuple[Tuple[int, int], ...]
    non_tree_edges: Tuple[Tuple[int, int], ...]
    _position: Dict[int, int] = field(repr=False, default_factory=dict)

    def position(self, v: int) -> int:
        """Index of ``v`` in the traversal order ``δ``."""
        return self._position[v]

    def vertices_at_depth(self, d: int) -> List[int]:
        """Vertices at tree depth ``d`` in traversal order."""
        return [v for v in self.order if self.depth[v] == d]

    @property
    def max_depth(self) -> int:
        return max(self.depth) if self.depth else 0

    def backward_neighbors(self, graph: Graph, v: int) -> List[int]:
        """Neighbors of ``v`` positioned before it in ``δ`` (``N_+^δ(v)``)."""
        pos_v = self._position[v]
        return [
            u for u in graph.neighbors(v).tolist() if self._position[u] < pos_v
        ]

    def root_to_leaf_paths(self) -> List[Tuple[int, ...]]:
        """All root-to-leaf paths of ``q_t`` (used by CFL's ordering)."""
        paths: List[Tuple[int, ...]] = []

        def walk(v: int, prefix: List[int]) -> None:
            prefix = prefix + [v]
            if not self.children[v]:
                paths.append(tuple(prefix))
                return
            for c in self.children[v]:
                walk(c, prefix)

        walk(self.root, [])
        return paths


def bfs_tree(graph: Graph, root: int) -> BFSTree:
    """Build the BFS spanning tree of ``graph`` rooted at ``root``.

    Neighbors are visited in ascending vertex id, so the traversal order δ
    is deterministic. The graph is assumed connected; unreached vertices
    raise ``ValueError`` to catch disconnected queries early.
    """
    n = graph.num_vertices
    parent = [-1] * n
    depth = [-1] * n
    order: List[int] = []
    children: List[List[int]] = [[] for _ in range(n)]

    depth[root] = 0
    queue = deque([root])
    seen = [False] * n
    seen[root] = True
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.neighbors(u).tolist():
            if not seen[v]:
                seen[v] = True
                parent[v] = u
                depth[v] = depth[u] + 1
                children[u].append(v)
                queue.append(v)

    if len(order) != n:
        raise ValueError("bfs_tree requires a connected graph")

    position = {v: i for i, v in enumerate(order)}
    tree_edges = tuple((parent[v], v) for v in order if parent[v] != -1)
    tree_edge_set: FrozenSet[Tuple[int, int]] = frozenset(
        (min(u, v), max(u, v)) for u, v in tree_edges
    )
    non_tree_edges = tuple(
        (u, v) if position[u] < position[v] else (v, u)
        for u, v in graph.edges()
        if (u, v) not in tree_edge_set
    )

    return BFSTree(
        root=root,
        order=tuple(order),
        parent=tuple(parent),
        children=tuple(tuple(cs) for cs in children),
        depth=tuple(depth),
        tree_edges=tree_edges,
        non_tree_edges=non_tree_edges,
        _position=position,
    )

"""Query graph generation by random walks on the data graph.

Following the paper's Section 4: "To generate q with specified configuration
(e.g. |V(q)| = 8 and d(q) ≥ 3), we perform a random walk on G until getting
the specified number of vertices and extract the induced subgraph to check
whether the density satisfies the requirement. If so, we add it to the query
set. Otherwise, we conduct a new random walk."

Dense query sets require average degree ``d(q) ≥ 3``; sparse sets require
``d(q) < 3``. Queries are connected by construction (they are induced on the
vertices of one walk) and keep the data graph's labels.
"""

from __future__ import annotations

from typing import List, Literal, Optional

import numpy as np

from repro.errors import InvalidQueryError
from repro.graph.graph import Graph
from repro.graph.ops import connected

__all__ = ["extract_query", "generate_query_set", "DENSE_THRESHOLD"]

#: Average-degree threshold separating dense (≥) from sparse (<) query sets.
DENSE_THRESHOLD = 3.0

Density = Literal["dense", "sparse"]


def _random_walk_vertices(
    graph: Graph, num_vertices: int, rng: np.random.Generator, start: int
) -> Optional[set]:
    """Collect ``num_vertices`` distinct vertices via a random walk.

    The walk restarts from an already-collected vertex when it strands in a
    region it has exhausted; returns ``None`` if it cannot grow (isolated
    pocket smaller than the request).
    """
    collected = {start}
    current = start
    stalled = 0
    steps = 0
    # Hard step budget: a start inside a connected component smaller than
    # the request can never succeed, so the walk must be able to give up.
    max_steps = 128 * num_vertices
    while len(collected) < num_vertices:
        steps += 1
        if steps > max_steps:
            return None
        neighbors = graph.neighbors(current)
        if neighbors.size == 0:
            return None
        current = int(neighbors[rng.integers(0, neighbors.size)])
        if current in collected:
            stalled += 1
            if stalled > 16 * num_vertices:
                # Jump to a random collected vertex to escape dead ends.
                pool = list(collected)
                current = pool[int(rng.integers(0, len(pool)))]
                stalled = 0
        else:
            collected.add(current)
            stalled = 0
    return collected


def _density_ok(query: Graph, density: Optional[Density]) -> bool:
    if density is None:
        return True
    if density == "dense":
        return query.average_degree >= DENSE_THRESHOLD
    return query.average_degree < DENSE_THRESHOLD


def extract_query(
    data_graph: Graph,
    num_vertices: int,
    seed: int,
    density: Optional[Density] = None,
    max_attempts: int = 2000,
) -> Graph:
    """Extract one connected query graph of ``num_vertices`` vertices.

    Parameters
    ----------
    data_graph:
        The graph to walk on.
    num_vertices:
        Requested ``|V(q)|`` (must be ≥ 3 per the paper's problem setting).
    seed:
        Deterministic seed for the walk.
    density:
        ``"dense"`` requires ``d(q) ≥ 3``, ``"sparse"`` requires ``d(q) < 3``,
        ``None`` accepts anything.
    max_attempts:
        Number of fresh walks before giving up with
        :class:`~repro.errors.InvalidQueryError`.
    """
    if num_vertices < 3:
        raise InvalidQueryError("queries must have at least 3 vertices")
    if num_vertices > data_graph.num_vertices:
        raise InvalidQueryError(
            f"cannot extract {num_vertices} vertices from a graph with "
            f"{data_graph.num_vertices}"
        )
    if density == "dense" and num_vertices - 1 < DENSE_THRESHOLD:
        raise InvalidQueryError(
            f"a {num_vertices}-vertex graph caps at average degree "
            f"{num_vertices - 1} < {DENSE_THRESHOLD}; dense queries need "
            "at least 4 vertices"
        )
    rng = np.random.default_rng(seed)
    degrees = np.asarray([data_graph.degree(v) for v in data_graph.vertices()])
    eligible = np.flatnonzero(degrees > 0)
    if eligible.size == 0:
        raise InvalidQueryError("data graph has no edges to walk on")

    # Dense requests start from high-degree vertices (dense regions),
    # sparse requests from low-degree ones; this keeps the rejection
    # sampling loop short without changing the induced-subgraph semantics.
    if density == "dense":
        order = eligible[np.argsort(-degrees[eligible], kind="stable")]
        starts = order[: max(1, order.size // 4)]
    elif density == "sparse":
        order = eligible[np.argsort(degrees[eligible], kind="stable")]
        starts = order[: max(1, order.size // 2)]
    else:
        starts = eligible

    for _ in range(max_attempts):
        start = int(starts[rng.integers(0, starts.size)])
        vertex_set = _random_walk_vertices(data_graph, num_vertices, rng, start)
        if vertex_set is None:
            continue
        query, _ = data_graph.induced_subgraph(vertex_set)
        if not connected(query):
            continue
        if _density_ok(query, density):
            return query
    raise InvalidQueryError(
        f"could not extract a {density or 'any'} query with {num_vertices} "
        f"vertices after {max_attempts} attempts"
    )


def generate_query_set(
    data_graph: Graph,
    num_vertices: int,
    count: int,
    seed: int,
    density: Optional[Density] = None,
    max_attempts_per_query: int = 2000,
) -> List[Graph]:
    """Generate a query set of ``count`` connected queries.

    Mirrors the paper's query sets (``Q_iD`` / ``Q_iS``): all queries share
    ``|V(q)| = num_vertices`` and the requested density class. Each query
    gets an independent derived seed so sets are reproducible and extendable.
    """
    return [
        extract_query(
            data_graph,
            num_vertices,
            seed=seed * 1_000_003 + i,
            density=density,
            max_attempts=max_attempts_per_query,
        )
        for i in range(count)
    ]

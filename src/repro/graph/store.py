"""Pluggable graph storage: one CSR layout, three residency backends.

Every layer above this module consumes a :class:`~repro.graph.graph.Graph`
— an immutable view over four canonical int64 arrays (labels, CSR
offsets, CSR neighbors, and the stable label-sorted vertex permutation
the label index is derived from). This module owns where those arrays
physically live:

* :class:`InMemoryStore` — plain process-heap numpy arrays (the
  historical representation; what ``Graph(labels, edges)`` builds);
* :class:`MmapStore` — a versioned binary graph file (``.rgf``) opened
  with ``np.memmap``, so a cold graph larger than RAM opens in O(header)
  and matching touches only the pages the search actually reads (the
  working-set argument of the compact-neighborhood-index line of work);
* :class:`SharedMemoryStore` — one POSIX shared-memory segment published
  by a parent process and attached zero-copy by workers
  (:mod:`repro.parallel` rides this backend).

All three backends share **one** serialization/layout path:
:class:`CSRLayout` places the four arrays back to back in a flat int64
buffer, and :func:`pack_into`/:meth:`CSRLayout.split` are the only code
that knows the order. A graph round-tripped through any backend is
byte-identical to the source — the parity property suite and the QA
harness's storage axis enforce this — so any engine/preset/kernel runs
identically off any backend.

The ``.rgf`` format (**r**epro **g**raph **f**ile), version 1::

    offset  size  field
    0       4     magic b"RGF1"
    4       2     format version (little-endian u16, currently 1)
    6       2     flags (reserved, 0)
    8       8     num_vertices        (i64)
    16      8     num_edges           (i64, undirected edge count)
    24      8     directed_edges      (i64, length of the neighbors array)
    32      4     crc32 of the labels segment     (u32)
    36      4     crc32 of the offsets segment    (u32)
    40      4     crc32 of the neighbors segment  (u32)
    44      4     crc32 of the by_label segment   (u32)
    48      4     crc32 of header bytes [0, 48)   (u32)
    52      12    reserved padding (zeros)
    64      -     the four little-endian int64 array segments, in
                  CSRLayout order: labels | offsets | neighbors | by_label

Opening reads and verifies only the 64-byte header; segment checksums
are verified on demand (``validate=True``), because a full-file CRC pass
would defeat the O(header) open that out-of-core matching needs.
All malformed/truncated input raises :class:`~repro.errors.GraphFormatError`
with file and byte-offset context.
"""

from __future__ import annotations

import hashlib
import os
import struct
import weakref
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import GraphFormatError, InvalidGraphError
from repro.graph.graph import Graph

__all__ = [
    "CSRLayout",
    "GraphStore",
    "InMemoryStore",
    "MmapStore",
    "SharedMemoryStore",
    "SharedGraphHandle",
    "RGF_MAGIC",
    "RGF_VERSION",
    "RGF_HEADER_SIZE",
    "write_rgf",
    "read_rgf_header",
    "as_graph",
    "graph_arrays",
]

#: Canonical array dtype: little-endian 8-byte signed, on every backend.
DTYPE = np.dtype("<i8")
_ITEMSIZE = DTYPE.itemsize

RGF_MAGIC = b"RGF1"
RGF_VERSION = 1
RGF_HEADER_SIZE = 64

#: magic | version | flags | n | e | m | 4 segment CRCs | header CRC | pad
_HEADER = struct.Struct("<4sHHqqqIIIII12x")
#: The header CRC covers everything before its own field.
_HEADER_CRC_SPAN = 48

PathLike = Union[str, os.PathLike]


@dataclass(frozen=True)
class CSRLayout:
    """Placement of the four canonical arrays in one flat int64 buffer.

    The order — ``labels(n) | offsets(n+1) | neighbors(m) | by_label(n)``
    — is the single layout every backend serializes through; the
    shared-memory segment and the ``.rgf`` data section are byte-for-byte
    the same region.
    """

    num_vertices: int
    num_edges: int
    directed_edges: int

    @property
    def total_items(self) -> int:
        n = self.num_vertices
        return n + (n + 1) + self.directed_edges + n

    @property
    def total_bytes(self) -> int:
        return self.total_items * _ITEMSIZE

    def split(
        self, base: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Views of the four arrays inside ``base`` (no copies)."""
        n, m = self.num_vertices, self.directed_edges
        labels = base[0:n]
        offsets = base[n : 2 * n + 1]
        neighbors = base[2 * n + 1 : 2 * n + 1 + m]
        by_label = base[2 * n + 1 + m : 3 * n + 1 + m]
        return labels, offsets, neighbors, by_label

    def segment_spans(self) -> Tuple[Tuple[str, int, int], ...]:
        """``(name, start_item, item_count)`` for each array, in order."""
        n, m = self.num_vertices, self.directed_edges
        return (
            ("labels", 0, n),
            ("offsets", n, n + 1),
            ("neighbors", 2 * n + 1, m),
            ("by_label", 2 * n + 1 + m, n),
        )

    @classmethod
    def for_graph(cls, graph: Graph) -> "CSRLayout":
        offsets, neighbors = graph.csr
        return cls(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            directed_edges=int(neighbors.size),
        )


def graph_arrays(
    graph: Graph,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The four canonical arrays of ``graph``, by_label computed here.

    ``by_label`` is the stable label-argsort permutation the label index
    is built from; shipping it with the CSR lets every consumer of a
    serialized graph skip the O(n log n) sort on open/attach.
    """
    offsets, neighbors = graph.csr
    by_label = np.argsort(graph.labels, kind="stable")
    return graph.labels, offsets, neighbors, by_label


def pack_into(base: np.ndarray, graph: Graph) -> CSRLayout:
    """Copy a graph's arrays into ``base`` using the canonical layout."""
    layout = CSRLayout.for_graph(graph)
    labels, offsets, neighbors, by_label = graph_arrays(graph)
    dst_labels, dst_offsets, dst_neighbors, dst_by_label = layout.split(base)
    dst_labels[:] = labels
    dst_offsets[:] = offsets
    dst_neighbors[:] = neighbors
    dst_by_label[:] = by_label
    return layout


# ----------------------------------------------------------------------
# The store interface
# ----------------------------------------------------------------------


class GraphStore(ABC):
    """Owner of one graph's canonical CSR arrays.

    Concrete stores differ only in where the arrays live (heap, memmap,
    shared memory); everything above reads the same four views. The
    :meth:`graph` view is cached *weakly*: the graph holds a strong
    reference to its store, so a strong back-reference would form a
    refcount cycle keeping buffer exports (shared-memory views) alive
    until a gc pass — dropping the graph must release the segment
    promptly. Rebuilding a collected view is cheap anyway: ``Graph``
    derives its label index from ``by_label`` without re-sorting, so
    construction costs O(n) regardless of backend.
    """

    #: Registry-style backend name, recorded by benchmarks and the QA axis.
    backend: str = "?"

    labels: np.ndarray
    offsets: np.ndarray
    neighbors: np.ndarray
    by_label: np.ndarray

    _layout: CSRLayout
    _graph: Optional["weakref.ref[Graph]"] = None

    @property
    def layout(self) -> CSRLayout:
        return self._layout

    @property
    def num_vertices(self) -> int:
        return self._layout.num_vertices

    @property
    def num_edges(self) -> int:
        return self._layout.num_edges

    @property
    def directed_edges(self) -> int:
        return self._layout.directed_edges

    @property
    def nbytes(self) -> int:
        return self._layout.total_bytes

    def graph(self) -> Graph:
        """The :class:`Graph` view over this store (weakly cached)."""
        graph = self._graph() if self._graph is not None else None
        if graph is None:
            graph = Graph.from_store(self)
            self._graph = weakref.ref(graph)
        return graph

    def fingerprint(self) -> str:
        """SHA-256 over the layout and array bytes.

        Byte-identical arrays hash identically on every backend — the
        cross-backend parity currency of the QA storage axis.
        """
        digest = hashlib.sha256()
        digest.update(
            f"{self.num_vertices}/{self.num_edges}/{self.directed_edges}".encode()
        )
        digest.update(np.ascontiguousarray(self.labels, dtype=DTYPE).tobytes())
        digest.update(np.ascontiguousarray(self.offsets, dtype=DTYPE).tobytes())
        digest.update(
            np.ascontiguousarray(self.neighbors, dtype=DTYPE).tobytes()
        )
        return digest.hexdigest()

    @abstractmethod
    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self.num_vertices}, "
            f"|E|={self.num_edges}, {self.nbytes} bytes)"
        )


class InMemoryStore(GraphStore):
    """The historical representation: plain heap-resident numpy arrays."""

    backend = "memory"

    def __init__(
        self,
        labels: np.ndarray,
        offsets: np.ndarray,
        neighbors: np.ndarray,
        by_label: np.ndarray,
        num_edges: int,
    ) -> None:
        self._layout = CSRLayout(
            num_vertices=int(labels.size),
            num_edges=int(num_edges),
            directed_edges=int(neighbors.size),
        )
        self.labels = labels
        self.offsets = offsets
        self.neighbors = neighbors
        self.by_label = by_label
        self._graph = None

    @classmethod
    def from_graph(cls, graph: Graph) -> "InMemoryStore":
        """Wrap an existing graph's arrays (no copies).

        The store's :meth:`graph` returns ``graph`` itself, so
        ``Graph.store`` round-trips to the same object.
        """
        labels, offsets, neighbors, by_label = graph_arrays(graph)
        store = cls(labels, offsets, neighbors, by_label, graph.num_edges)
        store._graph = weakref.ref(graph)
        return store

    @classmethod
    def materialize(cls, source: GraphStore) -> "InMemoryStore":
        """Copy another store's arrays into process memory.

        This is the explicit "load it all into RAM" operation — the
        baseline the out-of-core benchmark compares :class:`MmapStore`
        against.
        """
        return cls(
            np.array(source.labels, dtype=np.int64),
            np.array(source.offsets, dtype=np.int64),
            np.array(source.neighbors, dtype=np.int64),
            np.array(source.by_label, dtype=np.int64),
            source.num_edges,
        )

    def close(self) -> None:
        """Nothing to release; the arrays die with their references."""


# ----------------------------------------------------------------------
# The .rgf binary format and its memmap-backed store
# ----------------------------------------------------------------------


def _pack_header(layout: CSRLayout, crcs: Tuple[int, int, int, int]) -> bytes:
    body = _HEADER.pack(
        RGF_MAGIC,
        RGF_VERSION,
        0,
        layout.num_vertices,
        layout.num_edges,
        layout.directed_edges,
        crcs[0],
        crcs[1],
        crcs[2],
        crcs[3],
        0,  # header CRC placeholder, patched below
    )
    header_crc = zlib.crc32(body[:_HEADER_CRC_SPAN])
    return (
        body[:_HEADER_CRC_SPAN]
        + struct.pack("<I", header_crc)
        + body[_HEADER_CRC_SPAN + 4 :]
    )


def write_rgf(source: Union[Graph, GraphStore], path: PathLike) -> CSRLayout:
    """Write a graph (or any store's contents) as a ``.rgf`` file.

    The write is atomic-ish: arrays stream to ``<path>.tmp`` and the file
    is renamed into place, so a crashed convert never leaves a
    truncated file under the target name.
    """
    if isinstance(source, GraphStore):
        layout = source.layout
        arrays = (source.labels, source.offsets, source.neighbors, source.by_label)
    else:
        layout = CSRLayout.for_graph(source)
        arrays = graph_arrays(source)
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    crcs = []
    contiguous = [np.ascontiguousarray(arr, dtype=DTYPE) for arr in arrays]
    for arr in contiguous:
        crcs.append(zlib.crc32(arr.view(np.uint8)))
    try:
        with open(tmp, "wb") as fh:
            fh.write(_pack_header(layout, tuple(crcs)))
            for arr in contiguous:
                fh.write(memoryview(arr).cast("B"))
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return layout


def read_rgf_header(path: PathLike) -> Tuple[CSRLayout, Tuple[int, int, int, int]]:
    """Parse and verify a ``.rgf`` header; returns (layout, segment CRCs).

    Raises :class:`GraphFormatError` (with file and offset context) on a
    bad magic, unsupported version, corrupt header checksum, or a file
    whose size disagrees with the layout the header declares.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            raw = fh.read(RGF_HEADER_SIZE)
    except OSError as exc:
        raise GraphFormatError(f"{path}: cannot read header: {exc}") from exc
    if len(raw) < RGF_HEADER_SIZE:
        raise GraphFormatError(
            f"{path}: truncated header — {len(raw)} bytes, "
            f"need {RGF_HEADER_SIZE} (offset 0)"
        )
    (
        magic,
        version,
        _flags,
        num_vertices,
        num_edges,
        directed_edges,
        crc_labels,
        crc_offsets,
        crc_neighbors,
        crc_by_label,
        header_crc,
    ) = _HEADER.unpack(raw)
    if magic != RGF_MAGIC:
        raise GraphFormatError(
            f"{path}: bad magic {magic!r} at offset 0 (expected {RGF_MAGIC!r})"
        )
    if version != RGF_VERSION:
        raise GraphFormatError(
            f"{path}: unsupported rgf version {version} at offset 4 "
            f"(this build reads version {RGF_VERSION})"
        )
    actual_crc = zlib.crc32(raw[:_HEADER_CRC_SPAN])
    if header_crc != actual_crc:
        raise GraphFormatError(
            f"{path}: header checksum mismatch at offset {_HEADER_CRC_SPAN} "
            f"(stored {header_crc:#010x}, computed {actual_crc:#010x})"
        )
    if num_vertices < 0 or num_edges < 0 or directed_edges < 0:
        raise GraphFormatError(
            f"{path}: negative counts in header "
            f"(|V|={num_vertices}, |E|={num_edges}, m={directed_edges})"
        )
    layout = CSRLayout(
        num_vertices=num_vertices,
        num_edges=num_edges,
        directed_edges=directed_edges,
    )
    expected = RGF_HEADER_SIZE + layout.total_bytes
    if size != expected:
        raise GraphFormatError(
            f"{path}: file is {size} bytes but the header declares "
            f"{expected} (|V|={num_vertices}, m={directed_edges}); "
            f"truncated at offset {min(size, expected)}"
        )
    return layout, (crc_labels, crc_offsets, crc_neighbors, crc_by_label)


class MmapStore(GraphStore):
    """A ``.rgf`` file mapped read-only with ``np.memmap``.

    Opening costs O(header): the 64-byte header is read and verified,
    the data section is mapped (no pages touched), and the four array
    views are sliced out. The OS pages data in as matching reads it and
    evicts cold pages under memory pressure — which is the entire
    out-of-core story.

    ``validate=True`` additionally verifies every segment checksum and
    the CSR structural invariants; that reads the whole file, so it is
    opt-in (the ``repro convert --validate`` path and the QA harness use
    it; hot-path opens do not).
    """

    backend = "mmap"

    def __init__(self, path: PathLike, validate: bool = False) -> None:
        self.path = Path(path)
        layout, crcs = read_rgf_header(self.path)
        self._layout = layout
        try:
            self._base = np.memmap(
                self.path,
                dtype=DTYPE,
                mode="r",
                offset=RGF_HEADER_SIZE,
                shape=(layout.total_items,),
            )
        except (OSError, ValueError) as exc:
            raise GraphFormatError(
                f"{self.path}: cannot map {layout.total_bytes} data bytes "
                f"at offset {RGF_HEADER_SIZE}: {exc}"
            ) from exc
        self.labels, self.offsets, self.neighbors, self.by_label = (
            layout.split(self._base)
        )
        self._graph = None
        self._closed = False
        if validate:
            self._validate(crcs)

    def _validate(self, crcs: Tuple[int, int, int, int]) -> None:
        for (name, start, count), expected in zip(
            self._layout.segment_spans(), crcs
        ):
            segment = self._base[start : start + count]
            actual = zlib.crc32(np.ascontiguousarray(segment).view(np.uint8))
            if actual != expected:
                offset = RGF_HEADER_SIZE + start * _ITEMSIZE
                raise GraphFormatError(
                    f"{self.path}: {name} segment checksum mismatch at "
                    f"offset {offset} (stored {expected:#010x}, "
                    f"computed {actual:#010x})"
                )
        offsets, neighbors = self.offsets, self.neighbors
        n = self.num_vertices
        if offsets.size != n + 1 or int(offsets[0]) != 0:
            raise GraphFormatError(
                f"{self.path}: offsets array malformed (size {offsets.size}, "
                f"first {int(offsets[0]) if offsets.size else '-'})"
            )
        if n and int(offsets[-1]) != self.directed_edges:
            raise GraphFormatError(
                f"{self.path}: offsets end at {int(offsets[-1])}, expected "
                f"directed_edges={self.directed_edges}"
            )
        if n and np.any(np.diff(offsets) < 0):
            raise GraphFormatError(f"{self.path}: offsets not monotonic")
        if neighbors.size and (
            int(neighbors.min()) < 0 or int(neighbors.max()) >= n
        ):
            raise GraphFormatError(
                f"{self.path}: neighbor ids out of range [0, {n})"
            )
        by_label = self.by_label
        if by_label.size and (
            int(by_label.min()) < 0 or int(by_label.max()) >= n
        ):
            raise GraphFormatError(
                f"{self.path}: by_label permutation out of range [0, {n})"
            )

    def close(self) -> None:
        """Drop the mapping (idempotent).

        Existing array views keep their pages alive until they die;
        close only releases this store's own references so the file
        handle goes away promptly on platforms that care.
        """
        if self._closed:
            return
        self._closed = True
        self._graph = None
        self.labels = self.offsets = self.neighbors = self.by_label = None  # type: ignore[assignment]
        self._base = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (
            f"MmapStore({str(self.path)!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, {self.nbytes} bytes)"
        )


# ----------------------------------------------------------------------
# Shared-memory backend
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable descriptor of a published graph: name plus array layout.

    ``directed_edges`` is the length of the neighbors array (``2|E|`` for
    an undirected CSR with mirrored edges).
    """

    name: str
    num_vertices: int
    num_edges: int
    directed_edges: int

    @property
    def layout(self) -> CSRLayout:
        return CSRLayout(
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            directed_edges=self.directed_edges,
        )

    @property
    def total_items(self) -> int:
        return self.layout.total_items


class SharedMemoryStore(GraphStore):
    """The canonical CSR layout inside one POSIX shared-memory segment.

    Create with :meth:`publish` (the owning side — copies the arrays in
    and is responsible for :meth:`close`, which unlinks the segment) or
    :meth:`attach` (the worker side — maps the existing segment by name,
    zero-copy; attachers just drop their references, because closing a
    mapping that still has exported array views would raise
    ``BufferError``).
    """

    backend = "shared"

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        handle: SharedGraphHandle,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.handle = handle
        self._owner = owner
        self._layout = handle.layout
        base = np.frombuffer(
            shm.buf, dtype=DTYPE, count=self._layout.total_items
        )
        self.labels, self.offsets, self.neighbors, self.by_label = (
            self._layout.split(base)
        )
        self._graph = None
        self._closed = False

    @classmethod
    def publish(cls, source: Union[Graph, GraphStore]) -> "SharedMemoryStore":
        """Copy a graph into a fresh segment; the caller owns the result."""
        graph = source.graph() if isinstance(source, GraphStore) else source
        layout = CSRLayout.for_graph(graph)
        # Zero-vertex graphs still need a nonzero-size segment.
        shm = shared_memory.SharedMemory(
            create=True, size=max(layout.total_bytes, _ITEMSIZE)
        )
        base = np.frombuffer(shm.buf, dtype=DTYPE, count=layout.total_items)
        pack_into(base, graph)
        del base
        handle = SharedGraphHandle(
            name=shm.name,
            num_vertices=layout.num_vertices,
            num_edges=layout.num_edges,
            directed_edges=layout.directed_edges,
        )
        return cls(shm, handle, owner=True)

    @classmethod
    def attach(cls, handle: SharedGraphHandle) -> "SharedMemoryStore":
        """Map a published segment by name (zero-copy, not the owner)."""
        shm = shared_memory.SharedMemory(name=handle.name)
        return cls(shm, handle, owner=False)

    @property
    def name(self) -> str:
        return self.handle.name

    @property
    def segment(self) -> shared_memory.SharedMemory:
        return self._shm

    def close(self) -> None:
        """Owner: close and unlink the segment. Attacher: close the mapping.

        Idempotent either way. A handed-out :meth:`graph` view still
        exporting the buffer keeps the mapping alive (the ``close`` on
        the raw segment is skipped, and the mapping dies with the
        views); the owner's ``unlink`` — the part the /dev/shm leak gate
        watches — happens regardless.
        """
        if self._closed:
            return
        self._closed = True
        self._graph = None
        self.labels = self.offsets = self.neighbors = self.by_label = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except BufferError:
            pass
        if self._owner:
            self._shm.unlink()

    def __repr__(self) -> str:
        role = "owner" if self._owner else "attached"
        return (
            f"SharedMemoryStore({self.handle.name}, {role}, "
            f"|V|={self.num_vertices}, {self.nbytes} bytes)"
        )


# ----------------------------------------------------------------------
# Residency resolution
# ----------------------------------------------------------------------

GraphSource = Union[Graph, GraphStore, str, os.PathLike]


def as_graph(data: GraphSource) -> Graph:
    """Resolve anything graph-shaped into a :class:`Graph` view.

    Accepts a :class:`Graph` (returned unchanged), a :class:`GraphStore`
    (its cached view), or a path — ``.rgf`` files open memmap-backed in
    O(header); anything else parses as the ``.graph`` text format. This
    is the single residency entry point used by
    :class:`~repro.core.session.MatchSession`,
    :class:`~repro.serve.service.MatchService` and the study runners.
    """
    if isinstance(data, Graph):
        return data
    if isinstance(data, GraphStore):
        return data.graph()
    if isinstance(data, (str, os.PathLike)):
        from repro.graph.io import load_graph

        return load_graph(data)
    raise InvalidGraphError(
        f"cannot resolve {type(data).__name__!r} into a graph "
        "(expected Graph, GraphStore, or a path)"
    )

"""Unified observability: span tracing + cross-layer metrics.

The paper's contribution is *measurement* — decomposing eight algorithms
into filtering / ordering / enumeration and attributing time and pruning
power to each component. This package makes that decomposition a
first-class output of every run:

* :mod:`repro.obs.tracer` — ambient span tracing
  (``with span("filter"): ...``), near-zero overhead when disabled,
  JSONL serialization;
* :mod:`repro.obs.metrics` — the :class:`Metrics` counter registry
  (filter stage sizes, refinement iterations, ordering cost evaluations,
  the enumeration counters) attached to every
  :class:`~repro.core.result.MatchResult` and
  :class:`~repro.study.runner.QueryRecord`, with an associative +
  commutative merge for study aggregation;
* :mod:`repro.obs.schema` — the documented trace/benchmark file formats
  and their validators.

See the "Observability" section of ``docs/architecture.md`` for the span
API, the trace schema and the counter glossary.
"""

from repro.obs.metrics import (
    FilterStage,
    Metrics,
    add_counter,
    collecting,
    get_metrics,
    record_stage,
    set_metrics,
    total_candidates,
)
from repro.obs.schema import (
    BENCH_DYNAMIC_SCHEMA_VERSION,
    BENCH_ENGINE_SCHEMA_VERSION,
    BENCH_KERNELS_SCHEMA_VERSION,
    BENCH_PARALLEL_SCHEMA_VERSION,
    BENCH_SERVER_SCHEMA_VERSION,
    BENCH_SESSION_SCHEMA_VERSION,
    BENCH_STORAGE_SCHEMA_VERSION,
    MAX_MMAP_WARM_OVERHEAD,
    MAX_OUT_OF_CORE_RSS_RATIO,
    MIN_DYNAMIC_SPEEDUP,
    MIN_PARALLEL_SPEEDUP,
    TRACE_SCHEMA,
    TraceSchemaError,
    validate_bench_dynamic,
    validate_bench_engine,
    validate_bench_kernels,
    validate_bench_parallel,
    validate_bench_server,
    validate_bench_session,
    validate_bench_storage,
    validate_trace_file,
    validate_trace_lines,
    validate_trace_record,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    tracing,
)

__all__ = [
    # tracer
    "Span",
    "Tracer",
    "span",
    "get_tracer",
    "set_tracer",
    "tracing",
    # metrics
    "FilterStage",
    "Metrics",
    "add_counter",
    "collecting",
    "get_metrics",
    "record_stage",
    "set_metrics",
    "total_candidates",
    # schema
    "TRACE_SCHEMA",
    "BENCH_DYNAMIC_SCHEMA_VERSION",
    "BENCH_ENGINE_SCHEMA_VERSION",
    "BENCH_KERNELS_SCHEMA_VERSION",
    "BENCH_PARALLEL_SCHEMA_VERSION",
    "BENCH_SERVER_SCHEMA_VERSION",
    "BENCH_SESSION_SCHEMA_VERSION",
    "BENCH_STORAGE_SCHEMA_VERSION",
    "MAX_MMAP_WARM_OVERHEAD",
    "MAX_OUT_OF_CORE_RSS_RATIO",
    "MIN_DYNAMIC_SPEEDUP",
    "MIN_PARALLEL_SPEEDUP",
    "TraceSchemaError",
    "validate_bench_dynamic",
    "validate_bench_engine",
    "validate_bench_kernels",
    "validate_bench_parallel",
    "validate_bench_server",
    "validate_bench_session",
    "validate_bench_storage",
    "validate_trace_file",
    "validate_trace_lines",
    "validate_trace_record",
]

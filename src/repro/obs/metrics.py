"""Cross-layer counter registry: filtering, ordering and enumeration.

The paper attributes pruning power and work to individual components
(Figures 8–11, 15); :class:`Metrics` is the container that carries those
attributions through the pipeline. It extends the enumeration-only
:class:`~repro.enumeration.stats.EnumerationStats` with

* **filter stages** — one ``(rule, candidates)`` record per pruning rule,
  where ``candidates`` is ``Σ_u |C(u)|`` after the rule ran. Within one
  filter run the totals are monotone non-increasing from the first
  recorded stage (every later rule only prunes), the invariant the
  property suite enforces;
* **counters** — a flat ``name -> int`` registry under dotted namespaces
  (``filter.*``, ``order.*``, ``enumerate.*``; see the glossary in
  ``docs/architecture.md``);
* **phase timings** — ``phase -> seconds`` for filter/order/enumerate,
  recorded even when a deadline kills the query.

Like tracing, collection is ambient: :func:`add_counter` and
:func:`record_stage` write to the thread's current :class:`Metrics` and
are no-ops when none is installed, so filters and orderings stay usable
(and unobserved) outside :func:`repro.core.api.match`.

Merging (for study aggregation across queries, including parallel
workers) sums counters and phase timings key-wise and drops the
per-query stage list; the operation is associative and commutative, so
worker merge order cannot change a
:class:`~repro.study.runner.RunSummary`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.enumeration.stats import EnumerationStats

__all__ = [
    "FilterStage",
    "Metrics",
    "get_metrics",
    "set_metrics",
    "collecting",
    "add_counter",
    "record_stage",
    "total_candidates",
]


class FilterStage:
    """Total candidate count after one named pruning rule ran."""

    __slots__ = ("rule", "candidates")

    def __init__(self, rule: str, candidates: int) -> None:
        self.rule = rule
        self.candidates = int(candidates)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FilterStage)
            and self.rule == other.rule
            and self.candidates == other.candidates
        )

    def __repr__(self) -> str:
        return f"FilterStage({self.rule!r}, {self.candidates})"


class Metrics:
    """The per-query (or merged per-set) counter registry."""

    __slots__ = ("counters", "phase_seconds", "filter_stages")

    def __init__(
        self,
        counters: Optional[Dict[str, int]] = None,
        phase_seconds: Optional[Dict[str, float]] = None,
        filter_stages: Tuple[FilterStage, ...] = (),
    ) -> None:
        self.counters: Dict[str, int] = dict(counters or {})
        self.phase_seconds: Dict[str, float] = dict(phase_seconds or {})
        self.filter_stages: Tuple[FilterStage, ...] = tuple(filter_stages)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def record_stage(self, rule: str, candidates: int) -> None:
        """Append one filter-stage record and refresh the derived counters.

        ``filter.candidates_initial`` is pinned by the first stage,
        ``filter.candidates_final`` tracks the latest, and
        ``filter.pruned`` accumulates the drop between consecutive stages.
        """
        candidates = int(candidates)
        if not self.filter_stages:
            self.counters["filter.candidates_initial"] = candidates
        else:
            removed = self.filter_stages[-1].candidates - candidates
            if removed > 0:
                self.add("filter.pruned", removed)
        self.counters["filter.candidates_final"] = candidates
        self.filter_stages = self.filter_stages + (FilterStage(rule, candidates),)

    def record_phase(self, phase: str, seconds: float) -> None:
        """Record wall-clock seconds spent in one pipeline phase."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + float(seconds)

    def record_enumeration(self, stats: EnumerationStats) -> None:
        """Fold the engine's counters in under the ``enumerate.`` namespace."""
        self.add("enumerate.recursion_calls", stats.recursion_calls)
        self.add("enumerate.candidates_scanned", stats.candidates_scanned)
        self.add("enumerate.conflicts", stats.conflicts)
        self.add("enumerate.failing_set_prunes", stats.failing_set_prunes)
        self.add("enumerate.adaptive_lc_reused", stats.adaptive_lc_reused)

    # ------------------------------------------------------------------
    # Aggregation / serialization
    # ------------------------------------------------------------------

    def merge(self, other: "Metrics") -> "Metrics":
        """Key-wise sum of counters and timings (associative, commutative).

        The per-query ``filter_stages`` list is a diagnostic of one run and
        has no meaningful cross-query sum, so merged metrics carry none.
        """
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        phases = dict(self.phase_seconds)
        for name, value in other.phase_seconds.items():
            phases[name] = phases.get(name, 0.0) + value
        return Metrics(counters=counters, phase_seconds=phases)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (worker serialization, ``--metrics-out``)."""
        return {
            "counters": dict(self.counters),
            "phase_seconds": dict(self.phase_seconds),
            "filter_stages": [
                {"rule": s.rule, "candidates": s.candidates}
                for s in self.filter_stages
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Metrics":
        """Inverse of :meth:`to_dict`."""
        return cls(
            counters={str(k): int(v) for k, v in payload.get("counters", {}).items()},
            phase_seconds={
                str(k): float(v)
                for k, v in payload.get("phase_seconds", {}).items()
            },
            filter_stages=tuple(
                FilterStage(s["rule"], s["candidates"])
                for s in payload.get("filter_stages", [])
            ),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Metrics)
            and self.counters == other.counters
            and self.phase_seconds == other.phase_seconds
            and self.filter_stages == other.filter_stages
        )

    def __repr__(self) -> str:
        return (
            f"Metrics(counters={len(self.counters)}, "
            f"stages={len(self.filter_stages)})"
        )


# ----------------------------------------------------------------------
# Ambient collection (thread-local)
# ----------------------------------------------------------------------

_STATE = threading.local()


def get_metrics() -> Optional[Metrics]:
    """The thread's current metrics sink, or ``None`` when not collecting."""
    return getattr(_STATE, "metrics", None)


def set_metrics(metrics: Optional[Metrics]) -> Optional[Metrics]:
    """Install ``metrics`` as the thread's sink; returns the previous one."""
    previous = getattr(_STATE, "metrics", None)
    _STATE.metrics = metrics
    return previous


@contextmanager
def collecting(metrics: Metrics) -> Iterator[Metrics]:
    """Install ``metrics`` for the duration of the block (re-entrant safe)."""
    previous = set_metrics(metrics)
    try:
        yield metrics
    finally:
        set_metrics(previous)


def add_counter(name: str, amount: int = 1) -> None:
    """Increment a counter on the current sink; no-op when not collecting."""
    metrics = getattr(_STATE, "metrics", None)
    if metrics is not None:
        metrics.add(name, amount)


def record_stage(rule: str, candidates: int) -> None:
    """Record a filter stage on the current sink; no-op when not collecting."""
    metrics = getattr(_STATE, "metrics", None)
    if metrics is not None:
        metrics.record_stage(rule, candidates)


def total_candidates(lists: List) -> int:
    """``Σ_u |C(u)|`` over a list of per-vertex candidate containers."""
    return sum(len(lst) for lst in lists)

"""Schemas for the observability artifacts, with hand-rolled validators.

Two file formats are stamped and validated here (no external jsonschema
dependency):

* **Trace JSONL** (``repro --trace out.jsonl`` /
  :meth:`repro.obs.tracer.Tracer.write_jsonl`). Line 1 is a header
  ``{"type": "meta", "schema": "repro.trace/v1", "spans": N}``; every
  further line is a span record::

      {"type": "span", "id": int, "parent": int | null, "name": str,
       "depth": int, "start": float, "end": float, "duration": float,
       "attrs": {...}}

  Invariants checked: ids unique, parents precede children and nest
  (``parent.start <= start`` and ``end <= parent.end`` up to clock
  jitter), ``depth`` is parent's depth + 1, ``end >= start``.

* **BENCH_kernels.json** (``benchmarks/bench_kernels.py``): the kernel
  shoot-out payload, stamped with ``schema_version`` and the resolved
  backend name per registry entry.

* **BENCH_session.json** (``benchmarks/bench_session.py``): the
  session-throughput payload — one-shot ``match()`` vs
  :class:`~repro.core.session.MatchSession` batch latency on a
  repeated-query workload, with the session's cache counters.

* **BENCH_engine.json** (``benchmarks/bench_engine.py``): the
  enumeration-engine comparison — recursive
  :class:`~repro.enumeration.engine.BacktrackingEngine` vs the iterative
  :class:`~repro.enumeration.frames.FrameMachine` per preset, with match
  totals and a byte-identical-embeddings attestation.

* **BENCH_server.json** (``benchmarks/bench_server.py``): the serving
  tier under a duplicate-heavy multi-tenant workload — sustained QPS and
  p50/p99 latency through :class:`~repro.serve.service.MatchService`
  with request coalescing on vs off, plus the ``serve.*`` counters and a
  results-agree attestation.

* **BENCH_parallel.json** (``benchmarks/bench_parallel.py``): the
  intra-query parallel enumeration payload — root-chunked fan-out via
  :mod:`repro.parallel` vs the sequential frame machine on a Fig-16
  style counting workload, with per-chunk enumeration seconds, the
  4-worker speedup (measured wall clock on hosts with >= 4 CPUs, a
  greedy-makespan model over the real chunk timings otherwise —
  ``speedup_source`` says which), a byte-identical-embeddings
  attestation, and a shared-memory leak count.

* **BENCH_storage.json** (``benchmarks/bench_storage.py``): the graph
  storage-backend payload — warm-run overhead of matching off an
  ``.rgf`` memmap vs the in-memory arrays on a resident workload, and
  peak RSS of an out-of-core workload whose CSR arrays exceed the
  declared memory budget, matched from
  :class:`~repro.graph.store.MmapStore` vs fully materialized. Both
  halves carry a results-identical attestation; the validator enforces
  the overhead and RSS ceilings plus tempfile/shared-memory leak
  counts.

* **BENCH_dynamic.json** (``benchmarks/bench_dynamic.py``): the
  mutate-then-match payload — per-batch incremental candidate
  maintenance (:class:`~repro.dynamic.IncrementalCandidates` over a
  :class:`~repro.dynamic.DynamicGraph`) vs a from-scratch graph rebuild
  plus a full candidate build, on a 1%-churn mutation script. The
  validator enforces the ``MIN_DYNAMIC_SPEEDUP`` floor, the
  states-identical and final-match-identical attestations, and zero
  shared-memory/tempfile leaks.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = [
    "TRACE_SCHEMA",
    "BENCH_KERNELS_SCHEMA_VERSION",
    "TraceSchemaError",
    "validate_trace_record",
    "validate_trace_lines",
    "validate_trace_file",
    "validate_bench_kernels",
    "BENCH_SESSION_SCHEMA_VERSION",
    "validate_bench_session",
    "BENCH_ENGINE_SCHEMA_VERSION",
    "validate_bench_engine",
    "BENCH_SERVER_SCHEMA_VERSION",
    "validate_bench_server",
    "BENCH_PARALLEL_SCHEMA_VERSION",
    "MIN_PARALLEL_SPEEDUP",
    "validate_bench_parallel",
    "BENCH_STORAGE_SCHEMA_VERSION",
    "MAX_MMAP_WARM_OVERHEAD",
    "MAX_OUT_OF_CORE_RSS_RATIO",
    "validate_bench_storage",
    "BENCH_DYNAMIC_SCHEMA_VERSION",
    "MIN_DYNAMIC_SPEEDUP",
    "validate_bench_dynamic",
]

#: Identifier stamped into every trace header line.
TRACE_SCHEMA = "repro.trace/v1"

#: Version stamped into BENCH_kernels.json payloads.
BENCH_KERNELS_SCHEMA_VERSION = 2

#: Version stamped into BENCH_session.json payloads.
BENCH_SESSION_SCHEMA_VERSION = 1

#: Version stamped into BENCH_engine.json payloads.
BENCH_ENGINE_SCHEMA_VERSION = 1

#: Version stamped into BENCH_server.json payloads.
BENCH_SERVER_SCHEMA_VERSION = 1

#: Version stamped into BENCH_parallel.json payloads.
BENCH_PARALLEL_SCHEMA_VERSION = 1

#: The 4-worker speedup floor BENCH_parallel.json must clear.
MIN_PARALLEL_SPEEDUP = 2.5

#: Version stamped into BENCH_storage.json payloads.
BENCH_STORAGE_SCHEMA_VERSION = 1

#: Warm memmap matching may cost at most this multiple of in-memory.
MAX_MMAP_WARM_OVERHEAD = 1.3

#: Out-of-core peak RSS must be at most this fraction of the
#: materialized run's peak RSS.
MAX_OUT_OF_CORE_RSS_RATIO = 0.5

#: Version stamped into BENCH_dynamic.json payloads.
BENCH_DYNAMIC_SCHEMA_VERSION = 1

#: Per-batch incremental candidate maintenance must beat a from-scratch
#: rebuild by at least this factor on the benchmark's 1%-churn workload.
MIN_DYNAMIC_SPEEDUP = 5.0

#: Span end may precede a parent's end by this much (float timer jitter).
_NEST_SLACK = 1e-9


class TraceSchemaError(ValueError):
    """A trace or benchmark payload violates its schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TraceSchemaError(message)


def validate_trace_record(record: Dict[str, Any]) -> None:
    """Validate one parsed JSONL record (header or span) in isolation."""
    _require(isinstance(record, dict), f"record is not an object: {record!r}")
    rtype = record.get("type")
    if rtype == "meta":
        _require(
            record.get("schema") == TRACE_SCHEMA,
            f"unknown trace schema {record.get('schema')!r} "
            f"(expected {TRACE_SCHEMA!r})",
        )
        _require(
            isinstance(record.get("spans"), int) and record["spans"] >= 0,
            "meta record needs a non-negative integer 'spans' count",
        )
        return
    _require(rtype == "span", f"unknown record type {rtype!r}")
    _require(
        isinstance(record.get("id"), int) and record["id"] >= 0,
        f"span id must be a non-negative int: {record.get('id')!r}",
    )
    parent = record.get("parent")
    _require(
        parent is None or (isinstance(parent, int) and parent >= 0),
        f"span parent must be null or a non-negative int: {parent!r}",
    )
    _require(
        isinstance(record.get("name"), str) and record["name"] != "",
        "span name must be a non-empty string",
    )
    _require(
        isinstance(record.get("depth"), int) and record["depth"] >= 0,
        "span depth must be a non-negative int",
    )
    for key in ("start", "end", "duration"):
        value = record.get(key)
        _require(
            isinstance(value, (int, float)) and value >= 0,
            f"span {key} must be a non-negative number: {value!r}",
        )
    _require(
        record["end"] >= record["start"],
        f"span {record['name']!r} ends before it starts",
    )
    _require(isinstance(record.get("attrs"), dict), "span attrs must be an object")


def validate_trace_lines(lines: List[str]) -> Dict[str, Any]:
    """Validate a full JSONL trace; returns a summary dict.

    Checks every record plus the cross-record invariants (header first,
    declared span count, unique ids, parent nesting and depth).
    """
    _require(len(lines) >= 1, "trace is empty (missing meta header)")
    records = []
    for i, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"line {i + 1} is not valid JSON: {exc}") from None
    for record in records:
        validate_trace_record(record)
    header, spans = records[0], records[1:]
    _require(header.get("type") == "meta", "first trace line must be the meta header")
    _require(
        all(r["type"] == "span" for r in spans),
        "only the first line may be a meta record",
    )
    _require(
        header["spans"] == len(spans),
        f"header declares {header['spans']} spans, trace has {len(spans)}",
    )
    by_id: Dict[int, Dict[str, Any]] = {}
    for record in spans:
        _require(record["id"] not in by_id, f"duplicate span id {record['id']}")
        by_id[record["id"]] = record
    for record in spans:
        parent = record["parent"]
        if parent is None:
            _require(record["depth"] == 0, "root spans must have depth 0")
            continue
        _require(parent in by_id, f"span {record['id']} has unknown parent {parent}")
        parent_record = by_id[parent]
        _require(
            record["depth"] == parent_record["depth"] + 1,
            f"span {record['id']} depth {record['depth']} is not "
            f"parent depth {parent_record['depth']} + 1",
        )
        _require(
            parent_record["start"] <= record["start"] + _NEST_SLACK
            and record["end"] <= parent_record["end"] + _NEST_SLACK,
            f"span {record['id']} is not nested inside parent {parent}",
        )
    names: Dict[str, int] = {}
    for record in spans:
        names[record["name"]] = names.get(record["name"], 0) + 1
    return {
        "spans": len(spans),
        "names": names,
        "roots": sum(1 for r in spans if r["parent"] is None),
    }


def validate_trace_file(path: str) -> Dict[str, Any]:
    """Validate a trace JSONL file on disk; returns the summary dict."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    return validate_trace_lines(lines)


def validate_bench_kernels(payload: Dict[str, Any]) -> None:
    """Validate a BENCH_kernels.json payload against the current schema."""
    _require(isinstance(payload, dict), "payload must be an object")
    _require(
        payload.get("schema_version") == BENCH_KERNELS_SCHEMA_VERSION,
        f"schema_version must be {BENCH_KERNELS_SCHEMA_VERSION}: "
        f"{payload.get('schema_version')!r}",
    )
    _require(
        payload.get("benchmark") == "kernel-backend-shootout",
        f"unexpected benchmark id {payload.get('benchmark')!r}",
    )
    for key in ("universe", "array_size"):
        _require(
            isinstance(payload.get(key), int) and payload[key] > 0,
            f"{key} must be a positive int",
        )
    timings = payload.get("seconds_per_call")
    _require(
        isinstance(timings, dict) and timings,
        "seconds_per_call must be a non-empty object",
    )
    for name, seconds in timings.items():
        _require(
            isinstance(seconds, (int, float)) and seconds > 0,
            f"seconds_per_call[{name!r}] must be a positive number",
        )
    kernels = payload.get("kernels")
    _require(
        isinstance(kernels, dict) and set(kernels) == set(timings),
        "kernels must map every timed backend to its resolved name",
    )
    for requested, resolved in kernels.items():
        _require(
            isinstance(resolved, str) and resolved != "",
            f"kernels[{requested!r}] must be a non-empty resolved name",
        )
    for key in ("speedup_numpy_vs_scalar", "speedup_bitset_vs_scalar"):
        value = payload.get(key)
        _require(
            isinstance(value, (int, float)) and value > 0,
            f"{key} must be a positive number",
        )


def validate_bench_session(payload: Dict[str, Any]) -> None:
    """Validate a BENCH_session.json payload against the current schema."""
    _require(isinstance(payload, dict), "payload must be an object")
    _require(
        payload.get("schema_version") == BENCH_SESSION_SCHEMA_VERSION,
        f"schema_version must be {BENCH_SESSION_SCHEMA_VERSION}: "
        f"{payload.get('schema_version')!r}",
    )
    _require(
        payload.get("benchmark") == "session-throughput",
        f"unexpected benchmark id {payload.get('benchmark')!r}",
    )
    _require(
        isinstance(payload.get("algorithm"), str) and payload["algorithm"],
        "algorithm must be a non-empty string",
    )
    workload = payload.get("workload")
    _require(isinstance(workload, dict), "workload must be an object")
    for key in ("data_vertices", "distinct_queries", "repeats", "total_queries"):
        _require(
            isinstance(workload.get(key), int) and workload[key] > 0,
            f"workload.{key} must be a positive int",
        )
    _require(
        workload["total_queries"]
        == workload["distinct_queries"] * workload["repeats"],
        "workload.total_queries must equal distinct_queries * repeats",
    )
    for mode in ("one_shot", "session"):
        stats = payload.get(mode)
        _require(isinstance(stats, dict), f"{mode} must be an object")
        for key in ("seconds_total", "seconds_per_query"):
            _require(
                isinstance(stats.get(key), (int, float)) and stats[key] > 0,
                f"{mode}.{key} must be a positive number",
            )
    _require(
        isinstance(payload.get("speedup_session_vs_one_shot"), (int, float))
        and payload["speedup_session_vs_one_shot"] > 0,
        "speedup_session_vs_one_shot must be a positive number",
    )
    cache = payload.get("cache")
    _require(isinstance(cache, dict), "cache must be an object")
    for which in ("plan", "prep"):
        info = cache.get(which)
        _require(isinstance(info, dict), f"cache.{which} must be an object")
        for key in ("hits", "misses", "size"):
            _require(
                isinstance(info.get(key), int) and info[key] >= 0,
                f"cache.{which}.{key} must be a non-negative int",
            )
        hits, misses = info["hits"], info["misses"]
        _require(
            hits + misses == workload["total_queries"],
            f"cache.{which} hits+misses ({hits}+{misses}) must equal the "
            f"{workload['total_queries']}-query workload",
        )
    _require(
        payload.get("matches_agree") is True,
        "matches_agree must be true (one-shot and session disagreed)",
    )


def validate_bench_engine(payload: Dict[str, Any]) -> None:
    """Validate a BENCH_engine.json payload against the current schema.

    The payload compares the recursive and iterative enumeration engines
    per algorithm preset on one repeated-enumeration workload. Besides
    shape, the validator enforces the correctness side of the benchmark:
    every engine must report the same match totals and the byte-identical
    embeddings flag must be true — a fast but wrong engine fails here.
    """
    _require(isinstance(payload, dict), "payload must be an object")
    _require(
        payload.get("schema_version") == BENCH_ENGINE_SCHEMA_VERSION,
        f"schema_version must be {BENCH_ENGINE_SCHEMA_VERSION}: "
        f"{payload.get('schema_version')!r}",
    )
    _require(
        payload.get("benchmark") == "engine-comparison",
        f"unexpected benchmark id {payload.get('benchmark')!r}",
    )
    workload = payload.get("workload")
    _require(isinstance(workload, dict), "workload must be an object")
    for key in ("data_vertices", "query_vertices", "num_queries", "repeats"):
        _require(
            isinstance(workload.get(key), int) and workload[key] > 0,
            f"workload.{key} must be a positive int",
        )
    _require(
        isinstance(workload.get("match_limit"), int)
        and workload["match_limit"] > 0,
        "workload.match_limit must be a positive int",
    )
    presets = payload.get("presets")
    _require(
        isinstance(presets, list) and presets,
        "presets must be a non-empty list",
    )
    for i, entry in enumerate(presets):
        where = f"presets[{i}]"
        _require(isinstance(entry, dict), f"{where} must be an object")
        _require(
            isinstance(entry.get("algorithm"), str) and entry["algorithm"],
            f"{where}.algorithm must be a non-empty string",
        )
        engines = entry.get("engines")
        _require(
            isinstance(engines, dict) and len(engines) >= 2,
            f"{where}.engines must map at least two engine names",
        )
        totals = set()
        for name, stats in engines.items():
            _require(
                isinstance(stats, dict),
                f"{where}.engines[{name!r}] must be an object",
            )
            _require(
                isinstance(stats.get("seconds_total"), (int, float))
                and stats["seconds_total"] > 0,
                f"{where}.engines[{name!r}].seconds_total must be positive",
            )
            _require(
                isinstance(stats.get("matches_total"), int)
                and stats["matches_total"] >= 0,
                f"{where}.engines[{name!r}].matches_total must be a "
                "non-negative int",
            )
            totals.add(stats["matches_total"])
        _require(
            len(totals) == 1,
            f"{where}: engines disagree on matches_total {sorted(totals)}",
        )
        _require(
            isinstance(entry.get("speedup_iterative_vs_recursive"), (int, float))
            and entry["speedup_iterative_vs_recursive"] > 0,
            f"{where}.speedup_iterative_vs_recursive must be positive",
        )
        _require(
            entry.get("embeddings_identical") is True,
            f"{where}.embeddings_identical must be true (the engines "
            "returned different embeddings)",
        )
    _require(
        isinstance(payload.get("overall_speedup"), (int, float))
        and payload["overall_speedup"] > 0,
        "overall_speedup must be a positive number",
    )


def validate_bench_server(payload: Dict[str, Any]) -> None:
    """Validate a BENCH_server.json payload against the current schema.

    The payload measures :class:`~repro.serve.service.MatchService`
    throughput on a duplicate-heavy multi-tenant workload, with request
    coalescing on vs off. Beyond shape, the validator enforces the
    benchmark's claims: the coalescing run must actually have coalesced
    requests, it must not execute more often than the uncoalesced run,
    and both modes must agree on every response's match count
    (``results_agree``) — a service that goes faster by answering
    differently fails here.
    """
    _require(isinstance(payload, dict), "payload must be an object")
    _require(
        payload.get("schema_version") == BENCH_SERVER_SCHEMA_VERSION,
        f"schema_version must be {BENCH_SERVER_SCHEMA_VERSION}: "
        f"{payload.get('schema_version')!r}",
    )
    _require(
        payload.get("benchmark") == "server-throughput",
        f"unexpected benchmark id {payload.get('benchmark')!r}",
    )
    workload = payload.get("workload")
    _require(isinstance(workload, dict), "workload must be an object")
    for key in (
        "data_vertices",
        "tenants",
        "clients",
        "workers",
        "distinct_queries",
        "requests_per_client",
        "total_requests",
    ):
        _require(
            isinstance(workload.get(key), int) and workload[key] > 0,
            f"workload.{key} must be a positive int",
        )
    _require(
        workload["total_requests"]
        == workload["clients"] * workload["requests_per_client"],
        "workload.total_requests must equal clients * requests_per_client",
    )
    modes = {}
    for mode in ("coalescing_on", "coalescing_off"):
        stats = payload.get(mode)
        _require(isinstance(stats, dict), f"{mode} must be an object")
        for key in ("seconds_total", "qps", "p50_ms", "p99_ms"):
            _require(
                isinstance(stats.get(key), (int, float)) and stats[key] > 0,
                f"{mode}.{key} must be a positive number",
            )
        _require(
            stats["p99_ms"] + 1e-9 >= stats["p50_ms"],
            f"{mode}: p99_ms must be >= p50_ms",
        )
        counters = stats.get("counters")
        _require(isinstance(counters, dict), f"{mode}.counters must be an object")
        for key in ("serve.admitted", "serve.executed", "serve.completed"):
            _require(
                isinstance(counters.get(key), int) and counters[key] >= 0,
                f"{mode}.counters[{key!r}] must be a non-negative int",
            )
        _require(
            counters["serve.completed"] == workload["total_requests"],
            f"{mode}: serve.completed ({counters.get('serve.completed')}) "
            f"must equal the {workload['total_requests']}-request workload",
        )
        modes[mode] = stats
    on, off = modes["coalescing_on"], modes["coalescing_off"]
    _require(
        on["counters"].get("serve.coalesced", 0) > 0,
        "coalescing_on must report serve.coalesced > 0 "
        "(the duplicate-heavy workload never coalesced)",
    )
    _require(
        on["counters"]["serve.executed"] <= off["counters"]["serve.executed"],
        "coalescing_on must not execute more often than coalescing_off",
    )
    speedup = payload.get("speedup_coalescing_effective_qps")
    _require(
        isinstance(speedup, (int, float)) and speedup > 0,
        "speedup_coalescing_effective_qps must be a positive number",
    )
    _require(
        payload.get("results_agree") is True,
        "results_agree must be true (modes returned different match counts)",
    )


def validate_bench_parallel(payload: Dict[str, Any]) -> None:
    """Validate a BENCH_parallel.json payload against the current schema.

    The payload compares sequential frame-machine enumeration against the
    root-chunked process-pool fan-out of :mod:`repro.parallel` on one
    counting workload. Beyond shape, the validator enforces the
    benchmark's claims: every query's parallel run must return the byte
    identical embedding sequence (``embeddings_identical``), the 4-worker
    speedup must clear :data:`MIN_PARALLEL_SPEEDUP`, the speedup
    provenance must be declared (``"measured"`` wall clock on hosts with
    at least 4 CPUs, ``"modeled"`` greedy makespan over real per-chunk
    timings otherwise), and the run must not have leaked shared-memory
    segments.
    """
    _require(isinstance(payload, dict), "payload must be an object")
    _require(
        payload.get("schema_version") == BENCH_PARALLEL_SCHEMA_VERSION,
        f"schema_version must be {BENCH_PARALLEL_SCHEMA_VERSION}: "
        f"{payload.get('schema_version')!r}",
    )
    _require(
        payload.get("benchmark") == "parallel-enumeration",
        f"unexpected benchmark id {payload.get('benchmark')!r}",
    )
    _require(
        isinstance(payload.get("host_cpus"), int) and payload["host_cpus"] > 0,
        "host_cpus must be a positive int",
    )
    source = payload.get("speedup_source")
    _require(
        source in ("measured", "modeled"),
        f"speedup_source must be 'measured' or 'modeled': {source!r}",
    )
    if source == "measured":
        _require(
            payload["host_cpus"] >= 4,
            "measured speedups require at least 4 host CPUs",
        )
    workload = payload.get("workload")
    _require(isinstance(workload, dict), "workload must be an object")
    for key in (
        "data_vertices",
        "query_vertices",
        "num_queries",
        "match_limit",
        "chunks",
    ):
        _require(
            isinstance(workload.get(key), int) and workload[key] > 0,
            f"workload.{key} must be a positive int",
        )
    queries = payload.get("queries")
    _require(
        isinstance(queries, list)
        and len(queries) == workload["num_queries"],
        "queries must be a list of workload.num_queries entries",
    )
    for i, entry in enumerate(queries):
        where = f"queries[{i}]"
        _require(isinstance(entry, dict), f"{where} must be an object")
        _require(
            isinstance(entry.get("num_matches"), int)
            and entry["num_matches"] > 0,
            f"{where}.num_matches must be a positive int",
        )
        _require(
            isinstance(entry.get("sequential_seconds"), (int, float))
            and entry["sequential_seconds"] > 0,
            f"{where}.sequential_seconds must be positive",
        )
        chunk_seconds = entry.get("chunk_seconds")
        _require(
            isinstance(chunk_seconds, list)
            and chunk_seconds
            and len(chunk_seconds) <= workload["chunks"]
            and all(
                isinstance(s, (int, float)) and s >= 0 for s in chunk_seconds
            ),
            f"{where}.chunk_seconds must be a non-empty list of at most "
            "workload.chunks non-negative numbers",
        )
        speedups = entry.get("speedups")
        _require(
            isinstance(speedups, dict) and "4" in speedups,
            f"{where}.speedups must map worker counts and include '4'",
        )
        for workers, value in speedups.items():
            _require(
                isinstance(value, (int, float)) and value > 0,
                f"{where}.speedups[{workers!r}] must be positive",
            )
        _require(
            entry.get("embeddings_identical") is True,
            f"{where}.embeddings_identical must be true (parallel run "
            "returned different embeddings)",
        )
    speedup = payload.get("overall_speedup_4_workers")
    _require(
        isinstance(speedup, (int, float)) and speedup > 0,
        "overall_speedup_4_workers must be a positive number",
    )
    _require(
        speedup >= MIN_PARALLEL_SPEEDUP,
        f"overall_speedup_4_workers ({speedup}) is below the "
        f"{MIN_PARALLEL_SPEEDUP}x floor",
    )
    _require(
        payload.get("embeddings_identical") is True,
        "embeddings_identical must be true (a parallel run returned "
        "different embeddings)",
    )
    _require(
        payload.get("shm_segments_leaked") == 0,
        f"shm_segments_leaked must be 0: {payload.get('shm_segments_leaked')!r}",
    )


def validate_bench_storage(payload: Dict[str, Any]) -> None:
    """Validate a BENCH_storage.json payload against the current schema.

    The payload compares matching off the three storage backends of
    :mod:`repro.graph.store`. Beyond shape, the validator enforces the
    benchmark's claims honestly:

    * both halves must attest identical results across backends,
    * the warm memmap run may cost at most
      :data:`MAX_MMAP_WARM_OVERHEAD` times the in-memory run,
    * the out-of-core workload's CSR arrays must genuinely exceed the
      declared memory budget, and its memmap peak RSS must be at most
      :data:`MAX_OUT_OF_CORE_RSS_RATIO` of the materialized run's,
    * the run must not have leaked tempfiles or ``/dev/shm`` segments.
    """
    _require(isinstance(payload, dict), "payload must be an object")
    _require(
        payload.get("schema_version") == BENCH_STORAGE_SCHEMA_VERSION,
        f"schema_version must be {BENCH_STORAGE_SCHEMA_VERSION}: "
        f"{payload.get('schema_version')!r}",
    )
    _require(
        payload.get("benchmark") == "storage-backends",
        f"unexpected benchmark id {payload.get('benchmark')!r}",
    )

    warm = payload.get("warm")
    _require(isinstance(warm, dict), "warm must be an object")
    workload = warm.get("workload")
    _require(isinstance(workload, dict), "warm.workload must be an object")
    for key in ("data_vertices", "num_queries", "match_limit", "repeats"):
        _require(
            isinstance(workload.get(key), int) and workload[key] > 0,
            f"warm.workload.{key} must be a positive int",
        )
    for key in ("in_memory_seconds", "mmap_seconds", "shm_seconds"):
        _require(
            isinstance(warm.get(key), (int, float)) and warm[key] > 0,
            f"warm.{key} must be a positive number",
        )
    overhead = warm.get("mmap_overhead")
    _require(
        isinstance(overhead, (int, float)) and overhead > 0,
        "warm.mmap_overhead must be a positive number",
    )
    _require(
        abs(overhead - warm["mmap_seconds"] / warm["in_memory_seconds"])
        < 1e-6,
        "warm.mmap_overhead must equal mmap_seconds / in_memory_seconds",
    )
    _require(
        overhead <= MAX_MMAP_WARM_OVERHEAD,
        f"warm.mmap_overhead ({overhead}) exceeds the "
        f"{MAX_MMAP_WARM_OVERHEAD}x ceiling",
    )
    _require(
        warm.get("results_identical") is True,
        "warm.results_identical must be true (backends returned "
        "different embeddings)",
    )

    ooc = payload.get("out_of_core")
    _require(isinstance(ooc, dict), "out_of_core must be an object")
    workload = ooc.get("workload")
    _require(
        isinstance(workload, dict), "out_of_core.workload must be an object"
    )
    for key in (
        "data_vertices",
        "data_edges",
        "array_bytes",
        "memory_budget_bytes",
        "num_queries",
        "match_limit",
    ):
        _require(
            isinstance(workload.get(key), int) and workload[key] > 0,
            f"out_of_core.workload.{key} must be a positive int",
        )
    _require(
        workload["array_bytes"] > workload["memory_budget_bytes"],
        "out_of_core workload does not exceed the memory budget "
        f"({workload['array_bytes']} <= {workload['memory_budget_bytes']} "
        "bytes) — the run was not out-of-core",
    )
    for key in ("in_memory_peak_rss_bytes", "mmap_peak_rss_bytes"):
        _require(
            isinstance(ooc.get(key), int) and ooc[key] > 0,
            f"out_of_core.{key} must be a positive int",
        )
    ratio = ooc.get("rss_ratio")
    _require(
        isinstance(ratio, (int, float)) and ratio > 0,
        "out_of_core.rss_ratio must be a positive number",
    )
    _require(
        abs(
            ratio
            - ooc["mmap_peak_rss_bytes"] / ooc["in_memory_peak_rss_bytes"]
        )
        < 1e-6,
        "out_of_core.rss_ratio must equal mmap_peak_rss_bytes / "
        "in_memory_peak_rss_bytes",
    )
    _require(
        ratio <= MAX_OUT_OF_CORE_RSS_RATIO,
        f"out_of_core.rss_ratio ({ratio}) exceeds the "
        f"{MAX_OUT_OF_CORE_RSS_RATIO} ceiling",
    )
    _require(
        ooc.get("results_identical") is True,
        "out_of_core.results_identical must be true (backends returned "
        "different results)",
    )

    _require(
        payload.get("shm_segments_leaked") == 0,
        f"shm_segments_leaked must be 0: {payload.get('shm_segments_leaked')!r}",
    )
    _require(
        payload.get("tempfiles_leaked") == 0,
        f"tempfiles_leaked must be 0: {payload.get('tempfiles_leaked')!r}",
    )


def validate_bench_dynamic(payload: Dict[str, Any]) -> None:
    """Validate a BENCH_dynamic.json payload against the current schema.

    Besides shape, the validator enforces the benchmark's substance: the
    incremental path must clear the ``MIN_DYNAMIC_SPEEDUP`` floor over
    the from-scratch rebuild, both correctness attestations (candidate
    state equality after every batch, byte-identical final match) must
    hold, and the run must not leak shared-memory segments or tempfiles.
    """
    _require(isinstance(payload, dict), "payload must be an object")
    _require(
        payload.get("schema_version") == BENCH_DYNAMIC_SCHEMA_VERSION,
        f"schema_version must be {BENCH_DYNAMIC_SCHEMA_VERSION}: "
        f"{payload.get('schema_version')!r}",
    )
    _require(
        payload.get("benchmark") == "dynamic-mutation",
        f"unexpected benchmark id {payload.get('benchmark')!r}",
    )

    workload = payload.get("workload")
    _require(isinstance(workload, dict), "workload must be an object")
    for key in (
        "data_vertices",
        "data_edges",
        "query_vertices",
        "num_batches",
        "ops_total",
    ):
        _require(
            isinstance(workload.get(key), int) and workload[key] > 0,
            f"workload.{key} must be a positive int",
        )
    churn = workload.get("churn_fraction")
    _require(
        isinstance(churn, (int, float)) and 0 < churn <= 1,
        "workload.churn_fraction must be in (0, 1]",
    )

    timings = payload.get("timings")
    _require(isinstance(timings, dict), "timings must be an object")
    for key in ("incremental_seconds", "scratch_seconds"):
        _require(
            isinstance(timings.get(key), (int, float)) and timings[key] > 0,
            f"timings.{key} must be a positive number",
        )

    speedup = payload.get("speedup_incremental_vs_scratch")
    _require(
        isinstance(speedup, (int, float)) and speedup > 0,
        "speedup_incremental_vs_scratch must be a positive number",
    )
    _require(
        abs(
            speedup
            - timings["scratch_seconds"] / timings["incremental_seconds"]
        )
        < 1e-6,
        "speedup_incremental_vs_scratch must equal "
        "scratch_seconds / incremental_seconds",
    )
    _require(
        speedup >= MIN_DYNAMIC_SPEEDUP,
        f"speedup_incremental_vs_scratch ({speedup}) is below the "
        f"{MIN_DYNAMIC_SPEEDUP}x floor",
    )

    _require(
        payload.get("states_identical") is True,
        "states_identical must be true (incremental candidate state "
        "diverged from the from-scratch rebuild)",
    )
    _require(
        payload.get("final_match_identical") is True,
        "final_match_identical must be true (post-script match results "
        "diverged)",
    )
    _require(
        payload.get("shm_segments_leaked") == 0,
        f"shm_segments_leaked must be 0: {payload.get('shm_segments_leaked')!r}",
    )
    _require(
        payload.get("tempfiles_leaked") == 0,
        f"tempfiles_leaked must be 0: {payload.get('tempfiles_leaked')!r}",
    )

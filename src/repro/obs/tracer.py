"""Span-based tracing for the match pipeline.

The paper's methodology decomposes every algorithm into filtering,
ordering and enumeration and attributes wall-clock to each component
(Figures 7–11). :class:`Tracer` produces that decomposition as data: the
pipeline wraps each phase in ``with span("filter"): ...`` blocks, nested
spans cover refinement sweeps and kernel resolution, and the finished
trace serializes to JSONL (see :mod:`repro.obs.schema` for the format).

Tracing is *ambient*: :func:`span` consults a thread-local current
tracer. When none is installed (the default) it returns a shared no-op
context manager — one thread-local attribute read plus a function call,
so instrumented code pays effectively nothing when tracing is off. The
enumeration inner loop is deliberately *not* traced per recursion step;
span granularity stops at phases and sweeps so the < 5 % overhead budget
holds even with a tracer installed.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.schema import TRACE_SCHEMA

__all__ = [
    "Span",
    "Tracer",
    "span",
    "get_tracer",
    "set_tracer",
    "tracing",
]


class Span:
    """One finished span: a named, nested interval of the trace clock.

    ``start``/``end`` are seconds on the tracer's monotonic clock (zero at
    tracer construction); ``parent`` is the enclosing span's id or ``None``
    for a root span.
    """

    __slots__ = ("span_id", "name", "parent", "depth", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        name: str,
        parent: Optional[int],
        depth: int,
        start: float,
        end: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.parent = parent
        self.depth = depth
        self.start = start
        self.end = end
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Seconds between enter and exit."""
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """The span as one JSONL trace record."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent,
            "name": self.name,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1000.0:.3f}ms, depth={self.depth})"


class _NullSpan:
    """Shared no-op context manager returned when no tracer is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        """Discard attributes (tracing is off)."""


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """An open span; records itself on the tracer when the block exits."""

    __slots__ = ("_tracer", "span_id", "name", "parent", "depth", "_start", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        name: str,
        parent: Optional[int],
        depth: int,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self.parent = parent
        self.depth = depth
        self.attrs = attrs
        self._start = 0.0

    def annotate(self, **attrs: Any) -> None:
        """Attach key/value attributes to the span while it is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._start = self._tracer._now()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._finish(self)
        return False


class Tracer:
    """Collects spans for one traced run.

    Spans nest: entering a span pushes it on the tracer's stack, so spans
    opened inside the block record it as their parent. Finished spans are
    kept in completion order; :meth:`write_jsonl` emits them start-ordered
    behind a schema header line.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._next_id = 0
        self._stack: List[_ActiveSpan] = []
        self.spans: List[Span] = []

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("filter"): ...``."""
        parent = self._stack[-1] if self._stack else None
        active = _ActiveSpan(
            tracer=self,
            span_id=self._next_id,
            name=name,
            parent=parent.span_id if parent is not None else None,
            depth=parent.depth + 1 if parent is not None else 0,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(active)
        return active

    def _finish(self, active: _ActiveSpan) -> None:
        # Unwind to the finishing span so an exception skipping inner
        # __exit__ calls cannot corrupt later parentage.
        while self._stack:
            top = self._stack.pop()
            if top is active:
                break
        self.spans.append(
            Span(
                span_id=active.span_id,
                name=active.name,
                parent=active.parent,
                depth=active.depth,
                start=active._start,
                end=self._now(),
                attrs=active.attrs,
            )
        )

    # ------------------------------------------------------------------

    def total_seconds(self, name: str) -> float:
        """Summed duration of every finished span called ``name``."""
        return sum(s.duration for s in self.spans if s.name == name)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Header record plus one record per span, start-ordered."""
        records: List[Dict[str, Any]] = [
            {
                "type": "meta",
                "schema": TRACE_SCHEMA,
                "spans": len(self.spans),
            }
        ]
        for s in sorted(self.spans, key=lambda s: (s.start, s.span_id)):
            records.append(s.to_dict())
        return records

    def write_jsonl(self, path: str) -> int:
        """Write the trace as JSONL; returns the number of span records."""
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.to_dicts():
                fh.write(json.dumps(record) + "\n")
        return len(self.spans)

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self.spans)}, open={len(self._stack)})"


# ----------------------------------------------------------------------
# Ambient tracer (thread-local)
# ----------------------------------------------------------------------

_STATE = threading.local()


def get_tracer() -> Optional[Tracer]:
    """The thread's current tracer, or ``None`` when tracing is off."""
    return getattr(_STATE, "tracer", None)


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the thread's current tracer; returns the old one."""
    previous = getattr(_STATE, "tracer", None)
    _STATE.tracer = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the block (re-entrant safe)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attrs: Any):
    """Open a span on the current tracer; a shared no-op when tracing is off.

    >>> with span("filter"):  # no tracer installed: near-zero overhead
    ...     pass
    """
    tracer = getattr(_STATE, "tracer", None)
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)

"""Ordering methods: matching-order generation (paper Section 3.2).

The study's second axis. Each class implements
:class:`~repro.ordering.base.Ordering` and returns a connected permutation
of the query vertices; DP-iso additionally supports adaptive selection at
enumeration time via :class:`~repro.ordering.dpiso.DPisoAdaptiveState`.
"""

from repro.ordering.base import Ordering, validate_order
from repro.ordering.ceci import CECIOrdering
from repro.ordering.cfl import CFLOrdering
from repro.ordering.dpiso import (
    DPisoAdaptiveState,
    DPisoOrdering,
    compute_path_weights,
)
from repro.ordering.graphql import GraphQLOrdering
from repro.ordering.quicksi import QuickSIOrdering
from repro.ordering.ri import RIOrdering
from repro.ordering.spectrum import (
    RandomOrdering,
    random_connected_order,
    sample_orders,
)
from repro.ordering.vf2pp import VF2ppOrdering

__all__ = [
    "Ordering",
    "validate_order",
    "QuickSIOrdering",
    "GraphQLOrdering",
    "CFLOrdering",
    "CECIOrdering",
    "DPisoOrdering",
    "DPisoAdaptiveState",
    "compute_path_weights",
    "RIOrdering",
    "VF2ppOrdering",
    "RandomOrdering",
    "random_connected_order",
    "sample_orders",
]

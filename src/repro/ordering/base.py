"""Ordering interface: how query vertices are arranged for enumeration.

Section 3.2's second study axis. An ordering produces a *matching order*
``φ`` — a permutation of ``V(q)`` (Definition 2.3). All orderings here keep
φ *connected*: every vertex after the first has at least one backward
neighbor, so the enumeration never takes a blind cartesian product unless a
spectrum experiment asks for it explicitly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph

__all__ = ["Ordering", "validate_order"]


class Ordering(ABC):
    """A matching-order generation method.

    ``candidates`` is the filtered candidate structure — orderings that are
    candidate-aware (GraphQL, CFL, CECI, DP-iso) consult it; purely
    structural methods (RI) and statistics-based methods (QuickSI, VF2++)
    ignore it and accept ``None``.
    """

    #: Short name used in reports (e.g. ``"RI"``).
    name: str = "?"

    #: Whether :meth:`order` requires candidate sets.
    needs_candidates: bool = False

    @abstractmethod
    def order(
        self,
        query: Graph,
        data: Graph,
        candidates: Optional[CandidateSets] = None,
    ) -> List[int]:
        """Produce the matching order φ (a permutation of ``V(q)``)."""

    def _require_candidates(
        self, candidates: Optional[CandidateSets]
    ) -> CandidateSets:
        if candidates is None:
            raise ValueError(f"{self.name} ordering requires candidate sets")
        return candidates

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def validate_order(query: Graph, order: List[int]) -> None:
    """Assert ``order`` is a connected permutation of ``V(q)``.

    Raises ``ValueError`` otherwise. Used by tests and by the engine in
    debug scenarios; orderings are expected to always satisfy this.
    """
    if sorted(order) != list(query.vertices()):
        raise ValueError(f"{order} is not a permutation of V(q)")
    placed = {order[0]}
    for u in order[1:]:
        if not any(w in placed for w in query.neighbors(u).tolist()):
            raise ValueError(
                f"vertex {u} has no backward neighbor in order {order}"
            )
        placed.add(u)

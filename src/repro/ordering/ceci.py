"""CECI's ordering: the BFS traversal order itself (Section 3.2).

CECI picks the root ``argmin_u |C(u)| / d(u)`` (with NLF candidates) and
uses the resulting BFS traversal order δ as the matching order — the same
order its index was built along.
"""

from __future__ import annotations

from typing import List, Optional

from repro.filtering.candidates import CandidateSets
from repro.filtering.ceci import CECIFilter
from repro.graph.graph import Graph
from repro.ordering.base import Ordering

__all__ = ["CECIOrdering"]


class CECIOrdering(Ordering):
    """BFS traversal order from CECI's root-selection rule."""

    name = "CECI"
    needs_candidates = False

    def order(
        self,
        query: Graph,
        data: Graph,
        candidates: Optional[CandidateSets] = None,
    ) -> List[int]:
        tree = CECIFilter.build_tree(query, data)
        return list(tree.order)

"""CFL's path-based ordering (Section 3.2).

CFL decomposes the BFS tree ``q_t`` into root-to-leaf paths and orders
whole paths at a time, starting from the path minimizing
``c(P) / |NT(P)|`` — estimated path-embedding count per adjacent non-tree
edge — then repeatedly appending the path minimizing ``c(P^u) / |C(u)|``,
where ``u`` is the vertex connecting the path to φ and ``P^u`` the suffix
below it. ``c(·)`` comes from a dynamic-programming weight array counting
path embeddings in the candidate space.

The paper's analysis (Section 5.3) attributes CFL's unsolved queries to
exactly this structure: scoring paths in isolation puts low priority on the
edges *between* paths, so non-tree edges land late in φ.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.filtering.candidates import CandidateSets
from repro.filtering.cfl import CFLFilter
from repro.graph.graph import Graph
from repro.graph.ops import BFSTree
from repro.ordering.base import Ordering

__all__ = ["CFLOrdering"]


def _path_suffix_counts(
    data: Graph, candidates: CandidateSets, path: Tuple[int, ...]
) -> Dict[int, float]:
    """``suffix_count[u] = Σ_{v ∈ C(u)} W[u][v]`` for every ``u`` on the path.

    ``W[u][v]`` counts embeddings of the path suffix starting at ``u`` that
    map ``u`` to ``v``, walking candidate adjacency bottom-up — the weight
    array of CFL's ordering.
    """
    weights: Dict[int, float] = {v: 1.0 for v in candidates[path[-1]]}
    suffix_count = {path[-1]: float(len(candidates[path[-1]]))}
    for i in range(len(path) - 2, -1, -1):
        u, u_next = path[i], path[i + 1]
        next_set = candidates.membership(u_next)
        new_weights: Dict[int, float] = {}
        for v in candidates[u]:
            total = 0.0
            for w in data.neighbors(v).tolist():
                if w in next_set:
                    total += weights.get(w, 0.0)
            new_weights[v] = total
        weights = new_weights
        suffix_count[u] = sum(weights.values())
    return suffix_count


class CFLOrdering(Ordering):
    """Core-rooted, path-at-a-time ordering driven by path-count estimates."""

    name = "CFL"
    needs_candidates = True

    def order(
        self,
        query: Graph,
        data: Graph,
        candidates: Optional[CandidateSets] = None,
    ) -> List[int]:
        cand = self._require_candidates(candidates)
        tree = CFLFilter.build_tree(query, data)
        paths = tree.root_to_leaf_paths()

        suffix_counts = [
            _path_suffix_counts(data, cand, path) for path in paths
        ]
        non_tree_counts = [
            self._adjacent_non_tree_edges(tree, path) for path in paths
        ]

        remaining = list(range(len(paths)))
        # First path: minimize c(P) / |NT(P)|.
        first = min(
            remaining,
            key=lambda i: (
                suffix_counts[i][paths[i][0]] / max(1, non_tree_counts[i]),
                i,
            ),
        )
        phi: List[int] = []
        placed = set()
        self._append_path(paths[first], phi, placed)
        remaining.remove(first)

        # Remaining paths: minimize c(P^u) / |C(u)| at the connection vertex.
        while remaining:
            def path_key(i: int) -> Tuple[float, int]:
                path = paths[i]
                connection = self._connection_vertex(path, placed)
                cost = suffix_counts[i][connection]
                return (cost / max(1, cand.size(connection)), i)

            best = min(remaining, key=path_key)
            self._append_path(paths[best], phi, placed)
            remaining.remove(best)
        return phi

    # ------------------------------------------------------------------

    @staticmethod
    def _adjacent_non_tree_edges(tree: BFSTree, path: Tuple[int, ...]) -> int:
        """``|NT(P)|``: non-tree edges with an endpoint on the path."""
        on_path = set(path)
        return sum(
            1
            for u, v in tree.non_tree_edges
            if u in on_path or v in on_path
        )

    @staticmethod
    def _connection_vertex(path: Tuple[int, ...], placed: set) -> int:
        """Deepest path vertex already in φ (paths share their root prefix)."""
        connection = path[0]
        for u in path:
            if u in placed:
                connection = u
            else:
                break
        return connection

    @staticmethod
    def _append_path(path: Tuple[int, ...], phi: List[int], placed: set) -> None:
        for u in path:
            if u not in placed:
                phi.append(u)
                placed.add(u)

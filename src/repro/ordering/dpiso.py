"""DP-iso's ordering: static BFS backbone + adaptive selection (Section 3.2).

DP-iso directs the query along a BFS order δ from
``argmin_u |C_LDF(u)| / d(u)``, deprioritizes degree-one vertices, and
builds a weight array estimating how many embeddings in the candidate space
extend each candidate through the maximal *tree-like* paths below it
(a path is tree-like when every vertex after the first has exactly one
backward neighbor w.r.t. δ).

At enumeration time the order is *adaptive*: a vertex is extendable once
all its δ-backward neighbors are mapped; DP-iso computes ``LC(u, M)`` for
every extendable vertex and picks the one with the least estimated work
(the sum of its local candidates' weights). :class:`DPisoOrdering` provides
the static backbone (used when adaptivity is disabled, e.g. the Figure 11
ordering comparison runs it as a static method); :class:`DPisoAdaptiveState`
packages what the engine needs for the adaptive mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.filtering.candidates import CandidateSets
from repro.filtering.dpiso import DPisoFilter
from repro.graph.graph import Graph
from repro.ordering.base import Ordering

__all__ = ["DPisoOrdering", "DPisoAdaptiveState", "compute_path_weights"]


def _delta_positions(query: Graph, data: Graph) -> Tuple[List[int], Dict[int, int]]:
    tree = DPisoFilter.build_tree(query, data)
    order = list(tree.order)
    return order, {u: i for i, u in enumerate(order)}


def compute_path_weights(
    query: Graph,
    data: Graph,
    candidates: CandidateSets,
    position: Dict[int, int],
) -> List[Dict[int, float]]:
    """Weight array ``W[u][v]``: embeddings of the maximal tree-like paths
    below ``u`` that map ``u`` to ``v``.

    A δ-later neighbor ``u'`` of ``u`` contributes when ``u`` is its *only*
    δ-backward neighbor (that is what makes the path below it tree-like).
    Contributions multiply across children and sum across each child's
    candidates, the usual path-count dynamic program.
    """
    n = query.num_vertices
    weights: List[Dict[int, float]] = [dict() for _ in range(n)]
    backward_degree = [
        sum(1 for w in query.neighbors(u).tolist() if position[w] < position[u])
        for u in range(n)
    ]
    by_position = sorted(range(n), key=lambda u: position[u], reverse=True)
    for u in by_position:
        tree_children = [
            w
            for w in query.neighbors(u).tolist()
            if position[w] > position[u] and backward_degree[w] == 1
        ]
        table: Dict[int, float] = {}
        for v in candidates[u]:
            weight = 1.0
            for child in tree_children:
                child_set = candidates.membership(child)
                child_weights = weights[child]
                total = sum(
                    child_weights.get(w, 0.0)
                    for w in data.neighbors(v).tolist()
                    if w in child_set
                )
                weight *= total
                if weight == 0.0:
                    break
            table[v] = weight
        weights[u] = table
    return weights


@dataclass(frozen=True)
class DPisoAdaptiveState:
    """Everything the engine needs to run DP-iso's adaptive selection."""

    #: δ-position of each query vertex (extendability is defined against δ).
    position: Dict[int, int]
    #: The static backbone order (used as the final tie-break).
    static_order: List[int]
    #: ``W[u][v]`` weight array for work estimation.
    weights: List[Dict[int, float]]
    #: Degree-one query vertices, selected only when nothing else is extendable.
    degree_one: frozenset

    def estimated_work(self, u: int, local_candidates: List[int]) -> float:
        table = self.weights[u]
        return sum(table.get(v, 0.0) for v in local_candidates)


class DPisoOrdering(Ordering):
    """DP-iso's static backbone order (δ restricted to V', degree-one last)."""

    name = "DP"
    needs_candidates = True

    def order(
        self,
        query: Graph,
        data: Graph,
        candidates: Optional[CandidateSets] = None,
    ) -> List[int]:
        self._require_candidates(candidates)
        delta, _ = _delta_positions(query, data)
        degree_one = {u for u in query.vertices() if query.degree(u) == 1}
        prioritized = [u for u in delta if u not in degree_one]

        # Re-thread the prioritized vertices so φ stays connected even when
        # δ reaches them through degree-one vertices.
        phi: List[int] = []
        placed = set()
        remaining = list(prioritized)
        while remaining:
            pick = None
            if not phi:
                pick = remaining[0]
            else:
                for u in remaining:
                    if any(w in placed for w in query.neighbors(u).tolist()):
                        pick = u
                        break
            assert pick is not None, "query core must be connected"
            phi.append(pick)
            placed.add(pick)
            remaining.remove(pick)

        phi.extend(u for u in delta if u in degree_one)
        return phi

    def adaptive_state(
        self,
        query: Graph,
        data: Graph,
        candidates: CandidateSets,
    ) -> DPisoAdaptiveState:
        """Build the adaptive-selection state for the engine."""
        delta, position = _delta_positions(query, data)
        weights = compute_path_weights(query, data, candidates, position)
        return DPisoAdaptiveState(
            position=position,
            static_order=self.order(query, data, candidates),
            weights=weights,
            degree_one=frozenset(
                u for u in query.vertices() if query.degree(u) == 1
            ),
        )

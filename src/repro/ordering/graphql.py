"""GraphQL's left-deep-join ordering (Section 3.2).

The query is modelled as a left-deep join tree whose leaves are candidate
vertex sets: start from ``argmin_u |C(u)|`` and repeatedly append the
neighbor of φ with the smallest candidate set. The paper finds this simple
candidate-size greedy to be one of the two most effective orderings
(with RI), and — unlike RI — it keeps working on dense data graphs because
it consults data statistics through ``|C(u)|``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.obs import add_counter
from repro.ordering.base import Ordering

__all__ = ["GraphQLOrdering"]


class GraphQLOrdering(Ordering):
    """Smallest-candidate-set-first greedy ordering."""

    name = "GQL"
    needs_candidates = True

    def order(
        self,
        query: Graph,
        data: Graph,
        candidates: Optional[CandidateSets] = None,
    ) -> List[int]:
        cand = self._require_candidates(candidates)

        # One |C(u)| cost estimate is evaluated per vertex considered by
        # each greedy min() step (the paper's left-deep-join cost model).
        add_counter("order.cost_evaluations", query.num_vertices)
        start = min(query.vertices(), key=lambda u: (cand.size(u), u))
        phi = [start]
        placed = {start}
        frontier = set(query.neighbors(start).tolist())

        while len(phi) < query.num_vertices:
            add_counter("order.cost_evaluations", len(frontier))
            u = min(frontier, key=lambda w: (cand.size(w), w))
            phi.append(u)
            placed.add(u)
            frontier.discard(u)
            frontier.update(
                w for w in query.neighbors(u).tolist() if w not in placed
            )
        return phi

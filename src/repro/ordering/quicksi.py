"""QuickSI's infrequent-edge-first ordering (Section 3.2).

The query is viewed as a weighted graph: vertex weight
``w(u) = |{v ∈ V(G) | L(v) = L(u)}|`` and edge weight
``w(e(u, u')) = |{e(v, v') ∈ E(G) | {L(v), L(v')} = {L(u), L(u')}}|``.
QuickSI starts from the globally lightest edge (its endpoints entering in
ascending vertex weight) and repeatedly extends φ with the lightest edge
crossing from φ to the outside — so rare label pairs are matched early.
"""

from __future__ import annotations

from typing import List, Optional

from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.ordering.base import Ordering

__all__ = ["QuickSIOrdering"]


class QuickSIOrdering(Ordering):
    """Infrequent-edge-first greedy ordering."""

    name = "QSI"
    needs_candidates = False

    def order(
        self,
        query: Graph,
        data: Graph,
        candidates: Optional[CandidateSets] = None,
    ) -> List[int]:
        def vertex_weight(u: int) -> int:
            return data.label_frequency(query.label(u))

        def edge_weight(u: int, u2: int) -> int:
            return data.edge_label_frequency(query.label(u), query.label(u2))

        # Seed: the globally lightest edge; endpoints by ascending w(u).
        first_edge = min(
            query.edges(),
            key=lambda e: (edge_weight(*e), e),
        )
        a, b = first_edge
        if (vertex_weight(a), a) <= (vertex_weight(b), b):
            phi = [a, b]
        else:
            phi = [b, a]
        placed = set(phi)

        # Grow: lightest edge from φ to the outside, deterministic ties.
        while len(phi) < query.num_vertices:
            best = None
            best_key = None
            for u in phi:
                for u2 in query.neighbors(u).tolist():
                    if u2 in placed:
                        continue
                    key = (edge_weight(u, u2), vertex_weight(u2), u2)
                    if best_key is None or key < best_key:
                        best, best_key = u2, key
            assert best is not None, "query must be connected"
            phi.append(best)
            placed.add(best)
        return phi

"""RI's purely structural ordering (Section 3.2).

RI starts from the largest-degree query vertex and greedily appends the
frontier vertex with the most backward neighbors (most neighbors already in
φ), breaking ties by, in order:

1. the number of vertices in φ adjacent to ``u`` that also have a neighbor
   outside φ,
2. the number of neighbors of ``u`` outside φ that are not adjacent to any
   vertex of φ,
3. vertex id (ours, for determinism).

RI never looks at the data graph — which is why the paper finds it
excellent on sparse data graphs (backward edges terminate invalid paths
early) but poor on dense ones, where data statistics matter.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.obs import add_counter
from repro.ordering.base import Ordering

__all__ = ["RIOrdering"]


class RIOrdering(Ordering):
    """Max-backward-neighbors greedy with RI's two tie-break rules."""

    name = "RI"
    needs_candidates = False

    def order(
        self,
        query: Graph,
        data: Graph,
        candidates: Optional[CandidateSets] = None,
    ) -> List[int]:
        start = max(query.vertices(), key=lambda u: (query.degree(u), -u))
        phi = [start]
        placed: Set[int] = {start}

        while len(phi) < query.num_vertices:
            frontier = {
                w
                for u in placed
                for w in query.neighbors(u).tolist()
                if w not in placed
            }
            # Each frontier vertex gets one (score, tiebreak, tiebreak)
            # cost evaluation per greedy step.
            add_counter("order.cost_evaluations", len(frontier))
            best = max(
                frontier,
                key=lambda u: (
                    self._backward_count(query, u, placed),
                    self._tiebreak_frontier_support(query, u, placed),
                    self._tiebreak_unexplored_reach(query, u, placed),
                    -u,
                ),
            )
            phi.append(best)
            placed.add(best)
        return phi

    @staticmethod
    def _backward_count(query: Graph, u: int, placed: Set[int]) -> int:
        """``|N(u) ∩ φ|`` — the primary RI score."""
        return sum(1 for w in query.neighbors(u).tolist() if w in placed)

    @staticmethod
    def _tiebreak_frontier_support(
        query: Graph, u: int, placed: Set[int]
    ) -> int:
        """Vertices of φ adjacent to ``u`` that keep a neighbor outside φ."""
        count = 0
        for u_prime in query.neighbors(u).tolist():
            if u_prime not in placed:
                continue
            if any(
                w not in placed for w in query.neighbors(u_prime).tolist()
            ):
                count += 1
        return count

    @staticmethod
    def _tiebreak_unexplored_reach(
        query: Graph, u: int, placed: Set[int]
    ) -> int:
        """Neighbors of ``u`` outside φ with no edge into φ at all."""
        count = 0
        for u_prime in query.neighbors(u).tolist():
            if u_prime in placed:
                continue
            if all(
                w not in placed for w in query.neighbors(u_prime).tolist()
            ):
                count += 1
        return count

"""Random matching orders for the spectrum analysis (Figure 14 / Table 6).

The paper permutates ``V(q)`` to sample 1000 matching orders per query and
compares their enumeration times against the orders the algorithms picked.
We sample uniformly among *connected* orders (every vertex after the first
has a backward neighbor) — disconnected prefixes force cartesian products
and are never produced by any ordering method under study.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.ordering.base import Ordering

__all__ = ["RandomOrdering", "random_connected_order", "sample_orders"]


def random_connected_order(
    query: Graph, rng: np.random.Generator
) -> List[int]:
    """One uniformly-chosen connected permutation of ``V(q)``.

    Grown one vertex at a time: the first vertex is uniform over ``V(q)``,
    every later one uniform over the current frontier.
    """
    start = int(rng.integers(0, query.num_vertices))
    phi = [start]
    placed = {start}
    frontier = sorted(set(query.neighbors(start).tolist()))
    while len(phi) < query.num_vertices:
        u = frontier[int(rng.integers(0, len(frontier)))]
        phi.append(u)
        placed.add(u)
        frontier = sorted(
            {
                w
                for v in placed
                for w in query.neighbors(v).tolist()
                if w not in placed
            }
        )
    return phi


def sample_orders(
    query: Graph, count: int, seed: int, deduplicate: bool = True
) -> Iterator[List[int]]:
    """Yield up to ``count`` sampled connected orders (distinct by default).

    Small queries have fewer distinct connected orders than requested; the
    iterator simply stops early in that case rather than looping forever.
    """
    rng = np.random.default_rng(seed)
    seen = set()
    produced = 0
    attempts = 0
    max_attempts = 50 * count
    while produced < count and attempts < max_attempts:
        attempts += 1
        order = random_connected_order(query, rng)
        if deduplicate:
            key = tuple(order)
            if key in seen:
                continue
            seen.add(key)
        produced += 1
        yield order


class RandomOrdering(Ordering):
    """A seeded random connected ordering (one sample per call)."""

    name = "RAND"
    needs_candidates = False

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def order(
        self,
        query: Graph,
        data: Graph,
        candidates: Optional[CandidateSets] = None,
    ) -> List[int]:
        return random_connected_order(query, self._rng)

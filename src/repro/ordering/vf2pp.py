"""VF2++'s BFS-level ordering (Section 3.2).

The root is the query vertex whose label is rarest in the data graph,
breaking ties toward larger degree. VF2++ then fills φ level by level down
the BFS tree; inside a level it repeatedly takes the vertex with the most
neighbors already in φ, tie-broken by (1) larger degree, then (2) rarer
label in G, then vertex id.
"""

from __future__ import annotations

from typing import List, Optional

from repro.filtering.candidates import CandidateSets
from repro.graph.graph import Graph
from repro.graph.ops import bfs_tree
from repro.ordering.base import Ordering

__all__ = ["VF2ppOrdering"]


class VF2ppOrdering(Ordering):
    """Rarest-label root + level-by-level most-connected-first ordering."""

    name = "2PP"
    needs_candidates = False

    def order(
        self,
        query: Graph,
        data: Graph,
        candidates: Optional[CandidateSets] = None,
    ) -> List[int]:
        root = min(
            query.vertices(),
            key=lambda u: (
                data.label_frequency(query.label(u)),
                -query.degree(u),
                u,
            ),
        )
        tree = bfs_tree(query, root)

        phi: List[int] = []
        placed = set()
        for depth in range(tree.max_depth + 1):
            level = set(tree.vertices_at_depth(depth))
            while level:
                best = max(
                    level,
                    key=lambda u: (
                        sum(
                            1
                            for w in query.neighbors(u).tolist()
                            if w in placed
                        ),
                        query.degree(u),
                        -data.label_frequency(query.label(u)),
                        -u,
                    ),
                )
                phi.append(best)
                placed.add(best)
                level.discard(best)
        return phi

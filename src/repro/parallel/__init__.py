"""Intra-query parallel enumeration over a shared-memory process pool.

Python's GIL caps one process at one core of enumeration; this package
buys real CPU parallelism for a *single* query by partitioning the root
frame of a compiled plan into contiguous candidate windows, running each
window in a persistent worker process, and merging the per-chunk results
into an outcome byte-identical to the sequential engine's.

Layers:

* :mod:`~repro.parallel.shared_graph` — publish the data graph's CSR
  arrays once in a shared-memory segment; workers attach zero-copy.
* :mod:`~repro.parallel.pool` — process-wide persistent pools (one per
  worker count) plus the shared cancel flags that carry preemption
  across the process boundary.
* :mod:`~repro.parallel.worker` — the worker-side task: attach, prepare
  (cached), enumerate one root window, return a slim result.
* :mod:`~repro.parallel.executor` — eligibility gate, chunking, dispatch
  + cancel polling, and the order-preserving merge.

Entry points: ``match(n_workers=...)``, ``MatchSession(n_workers=...)``,
the ``REPRO_WORKERS`` environment variable and the ``--workers`` CLI
flag; the serving tier forwards its per-tenant setting the same way.
"""

from repro.parallel.executor import (
    DEFAULT_CHUNKS,
    MIN_PARALLEL_ROOTS,
    ParallelContext,
    chunk_bounds,
    merge_chunks,
)
from repro.parallel.pool import (
    MAX_CANCEL_SLOTS,
    ParallelUnavailable,
    WorkerPool,
    get_pool,
    resolve_workers,
    shutdown_pools,
)
from repro.parallel.shared_graph import SharedGraph, SharedGraphHandle, attach
from repro.parallel.worker import ChunkResult

__all__ = [
    "DEFAULT_CHUNKS",
    "MAX_CANCEL_SLOTS",
    "MIN_PARALLEL_ROOTS",
    "ChunkResult",
    "ParallelContext",
    "ParallelUnavailable",
    "SharedGraph",
    "SharedGraphHandle",
    "WorkerPool",
    "attach",
    "chunk_bounds",
    "get_pool",
    "merge_chunks",
    "resolve_workers",
    "shutdown_pools",
]

"""Intra-query fan-out: chunk the root candidates, dispatch, merge.

The partition axis is the root frame's local-candidate list (for every
eligible plan that is ``candidates[order[0]]``): the sequential search is
the concatenation of the subtrees under each root candidate, so cutting
the list into contiguous windows and running each window as an
independent :func:`~repro.parallel.worker._run_chunk` task reproduces the
sequential result exactly — embeddings concatenate in sequential order,
and every depth-local counter sums to the sequential total (the only
correction is the one root ``recursion_calls`` each extra chunk pays).

The chunk count is **fixed** (:data:`DEFAULT_CHUNKS`, not the worker
count) so results and merged counters are invariant across
``n_workers`` — the determinism contract the test suite pins. More
chunks than workers also gives the pool slack to balance skewed subtree
sizes, the classic work-stealing argument.

Merge semantics under limits mirror a sequential early exit: chunks are
consumed in order, ``match_limit`` truncates inside the first chunk that
crosses it and discards the rest, and a chunk that died on
budget/cancellation (``solved=False``) ends the merge the way the
sequential engine would have stopped there. With failing-set presets a
root-level prune in the sequential run can skip work that later chunks
still perform, so merged counters may exceed (never undercount) the
sequential ones — embeddings are unaffected.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from typing import Callable, ContextManager, List, Optional, Sequence, Tuple

from repro.core.plan import MatchPlan, PreparedQuery
from repro.enumeration.stats import EnumerationOutcome, EnumerationStats
from repro.graph.graph import Graph
from repro.obs import Metrics, add_counter, span
from repro.parallel.pool import ParallelUnavailable, WorkerPool, get_pool
from repro.parallel.shared_graph import SharedGraphHandle
from repro.parallel.worker import ChunkResult, _run_chunk
from repro.utils.timer import Timer

__all__ = [
    "DEFAULT_CHUNKS",
    "MIN_PARALLEL_ROOTS",
    "ParallelContext",
    "chunk_bounds",
    "merge_chunks",
]

#: Root windows per query — fixed so results/counters do not depend on
#: the worker count (chunks are balanced across whatever pool runs them).
DEFAULT_CHUNKS = 16

#: Below this many root candidates the fan-out cannot pay for itself.
MIN_PARALLEL_ROOTS = 2

#: Parent poll period while chunks run: how often the user/serving-tier
#: ``cancel`` callable is sampled and forwarded to the shared flag.
POLL_SECONDS = 0.02


def chunk_bounds(roots: int, chunks: int) -> List[Tuple[int, int]]:
    """Contiguous, non-empty windows covering ``[0, roots)`` in order."""
    k = min(chunks, roots)
    edges = [i * roots // k for i in range(k + 1)]
    return [(edges[i], edges[i + 1]) for i in range(k)]


def _add_stats(total: EnumerationStats, part: EnumerationStats) -> None:
    total.recursion_calls += part.recursion_calls
    total.candidates_scanned += part.candidates_scanned
    total.conflicts += part.conflicts
    total.failing_set_prunes += part.failing_set_prunes
    total.adaptive_lc_reused += part.adaptive_lc_reused


def merge_chunks(
    chunks: Sequence[ChunkResult],
    match_limit: Optional[int],
    store_limit: int,
) -> EnumerationOutcome:
    """Fold ordered chunk results into one sequential-order outcome."""
    ordered = sorted(chunks, key=lambda c: c.index)
    stats = EnumerationStats()
    embeddings: List[Tuple[int, ...]] = []
    num_matches = 0
    solved = True
    merged = 0
    for chunk in ordered:
        merged += 1
        _add_stats(stats, chunk.stats)
        take = chunk.num_matches
        if match_limit is not None and num_matches + take > match_limit:
            take = match_limit - num_matches
        num_matches += take
        room = store_limit - len(embeddings)
        if room > 0 and take > 0:
            embeddings.extend(chunk.embeddings[: min(take, room)])
        if match_limit is not None and num_matches >= match_limit:
            # Limit satisfied: the sequential run would have stopped here,
            # so later chunks (and even this chunk's own budget death) are
            # moot. solved stays True.
            break
        if not chunk.solved:
            # Budget/cancel killed this chunk; the sequential run would
            # have died at the same point of the search.
            solved = False
            break
    # Every chunk paid one root _push; the sequential run pays exactly one.
    stats.recursion_calls -= merged - 1
    return EnumerationOutcome(
        num_matches=num_matches,
        solved=solved,
        embeddings=embeddings,
        stats=stats,
        elapsed=0.0,
    )


class ParallelContext:
    """Per-match handle that ``run_plan`` fans enumeration out through.

    Built by :class:`~repro.core.session.MatchSession` (or the one-shot
    API) when an effective worker count is set; holds the worker count
    and a zero-argument provider returning the published graph's
    :class:`~repro.parallel.shared_graph.SharedGraphHandle` (lazily, so
    ineligible matches never publish anything).
    """

    def __init__(
        self,
        n_workers: int,
        handle_provider: Callable[[], SharedGraphHandle],
        chunks: int = DEFAULT_CHUNKS,
        guard: Optional[Callable[[], ContextManager[None]]] = None,
    ) -> None:
        self.n_workers = n_workers
        self._handle_provider = handle_provider
        self.chunks = chunks
        #: Optional context-manager factory held for the whole dispatch —
        #: the session uses it to defer a concurrent close() until no
        #: worker can still be attaching to the shared segment.
        self._guard = guard
        #: Chunk timings from the last execute() — consumed by
        #: bench_parallel's makespan model.
        self.last_chunk_seconds: List[float] = []

    # -- gate -----------------------------------------------------------

    def eligible(
        self, plan: MatchPlan, prepared: PreparedQuery, engine_name: str
    ) -> bool:
        """Can this plan's enumeration be partitioned at the root?

        Requires the iterative engine (root windows are a frame-machine
        contract), a static order, and materialized candidate sets — the
        adaptive DP-iso selector has no fixed root list, and
        direct-enumeration presets resolve their root pool lazily.
        """
        if self.n_workers <= 0:
            return False
        if engine_name != "iterative":
            return False
        if prepared.adaptive_state is not None:
            return False
        if prepared.order is None or prepared.candidates is None:
            return False
        if prepared.candidates.has_empty_set:
            return False
        roots = prepared.candidates.size(prepared.order[0])
        return roots >= MIN_PARALLEL_ROOTS

    # -- dispatch -------------------------------------------------------

    def execute(
        self,
        plan: MatchPlan,
        query: Graph,
        data: Graph,
        prepared: PreparedQuery,
        match_limit: Optional[int],
        time_limit: Optional[float],
        store_limit: int,
        cancel: Optional[Callable[[], bool]],
        metrics: Optional[Metrics] = None,
    ) -> EnumerationOutcome:
        """Fan one query's enumeration across the pool; merged outcome.

        Raises :class:`ParallelUnavailable` when the pool cannot take the
        match (broken workers, cancel slots exhausted, publish failure) —
        ``run_plan`` then falls through to the sequential engine.
        """
        roots = prepared.candidates.size(prepared.order[0])
        bounds = chunk_bounds(roots, self.chunks)
        with ExitStack() as stack:
            if self._guard is not None:
                stack.enter_context(self._guard())
            try:
                handle = self._handle_provider()
                pool = get_pool(self.n_workers)
            except (OSError, ValueError) as exc:
                raise ParallelUnavailable(str(exc)) from exc
            slot = pool.acquire_slot()
            if slot is None:
                add_counter("parallel.slot_exhausted", 1)
                raise ParallelUnavailable("all cancel slots in use")
            deadline_at = (
                time.monotonic() + time_limit
                if time_limit is not None
                else None
            )
            with Timer() as timer:
                try:
                    results = self._dispatch(
                        pool,
                        handle,
                        plan,
                        query,
                        bounds,
                        match_limit,
                        deadline_at,
                        store_limit,
                        slot,
                        cancel,
                    )
                finally:
                    pool.release_slot(slot)
        self.last_chunk_seconds = [c.elapsed for c in results]
        outcome = merge_chunks(results, match_limit, store_limit)
        outcome.elapsed = timer.elapsed
        add_counter("parallel.matches", 1)
        add_counter("parallel.chunks", len(bounds))
        add_counter(
            "parallel.prep_cache_misses",
            sum(1 for c in results if c.prep_seconds > 0),
        )
        return outcome

    def _dispatch(
        self,
        pool: WorkerPool,
        handle: SharedGraphHandle,
        plan: MatchPlan,
        query: Graph,
        bounds: Sequence[Tuple[int, int]],
        match_limit: Optional[int],
        deadline_at: Optional[float],
        store_limit: int,
        slot: int,
        cancel: Optional[Callable[[], bool]],
    ) -> List[ChunkResult]:
        with span(
            "parallel.fanout", chunks=len(bounds), workers=self.n_workers
        ):
            try:
                futures = [
                    pool.submit(
                        _run_chunk,
                        handle,
                        plan,
                        query,
                        index,
                        window,
                        match_limit,
                        deadline_at,
                        store_limit,
                        slot,
                    )
                    for index, window in enumerate(bounds)
                ]
            except (BrokenProcessPool, RuntimeError) as exc:
                pool.broken = True
                raise ParallelUnavailable(str(exc)) from exc
            pending = set(futures)
            flagged = False
            while pending:
                done, pending = wait(
                    pending, timeout=POLL_SECONDS, return_when=FIRST_COMPLETED
                )
                if not flagged and cancel is not None and cancel():
                    # One store preempts every chunk of this match; the
                    # workers notice at the next deadline stride.
                    pool.set_flag(slot)
                    flagged = True
            results: List[ChunkResult] = []
            try:
                for future in futures:
                    results.append(future.result())
            except BrokenProcessPool as exc:
                pool.broken = True
                raise ParallelUnavailable(str(exc)) from exc
            except FileNotFoundError as exc:
                # The shared segment vanished under a worker's attach —
                # some other process unlinked it (the session-side guard
                # prevents our own close() doing this). The workers are
                # healthy; fall back to sequential enumeration.
                raise ParallelUnavailable(str(exc)) from exc
        return results

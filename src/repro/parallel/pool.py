"""Persistent worker pools and the shared cancellation flags.

One :class:`WorkerPool` per worker count lives for the life of the
process (:func:`get_pool`), so the fork/spawn cost and the workers' warm
caches (attached graphs, prepared queries) amortize across every query
the process runs — the same reuse posture as ``MatchSession``'s plan
cache. Each pool also owns one small shared-memory segment of int64
**cancel flags**: a parallel match leases a slot, workers poll it at the
engine's deadline stride, and the parent flips it to preempt every
in-flight chunk at once. This is how the serving tier's ``cancel``
closure reaches across the process boundary without pipes or signals.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Dict, Optional

import numpy as np

__all__ = [
    "MAX_CANCEL_SLOTS",
    "ParallelUnavailable",
    "WorkerPool",
    "get_pool",
    "resolve_workers",
    "shutdown_pools",
]

#: Cancel-flag slots per pool — the cap on concurrent parallel matches
#: sharing one pool. Exhaustion degrades to sequential execution, never
#: to an error (see ParallelContext).
MAX_CANCEL_SLOTS = 64

_WORKERS_ENV = "REPRO_WORKERS"


class ParallelUnavailable(RuntimeError):
    """The pool cannot take this match (broken workers / no free slot).

    Raised by the parallel layer to tell ``run_plan`` to fall through to
    the in-process sequential engine; never surfaces to callers.
    """


def resolve_workers(n_workers: Optional[int] = None) -> int:
    """Resolve a worker-count request to an effective count.

    Explicit argument wins; ``None`` falls back to the ``REPRO_WORKERS``
    environment variable; absent both, 0 (sequential in-process
    execution). ``n_workers`` counts pool processes — 1 is a real
    one-worker pool (useful for measuring dispatch overhead), 0 disables
    the parallel path.
    """
    if n_workers is None:
        raw = os.environ.get(_WORKERS_ENV, "").strip()
        if not raw:
            return 0
        n_workers = int(raw)
    n = int(n_workers)
    if n < 0:
        raise ValueError(f"n_workers must be >= 0, got {n}")
    return n


class WorkerPool:
    """A persistent process pool plus its cancel-flag segment."""

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        self.n_workers = n_workers
        self.broken = False
        self._lock = threading.Lock()
        self._flags_shm = shared_memory.SharedMemory(
            create=True, size=MAX_CANCEL_SLOTS * 8
        )
        flags = np.frombuffer(self._flags_shm.buf, dtype=np.int64)
        flags[:] = 0
        self._flags = flags
        self._free_slots = set(range(MAX_CANCEL_SLOTS))
        from repro.parallel.worker import _worker_init

        self._executor = ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_worker_init,
            initargs=(self._flags_shm.name,),
        )
        self._shut_down = False

    # -- cancel slots ---------------------------------------------------

    def acquire_slot(self) -> Optional[int]:
        """Lease a cancel slot (cleared); None when all are in use."""
        with self._lock:
            if not self._free_slots:
                return None
            slot = self._free_slots.pop()
        self._flags[slot] = 0
        return slot

    def release_slot(self, slot: int) -> None:
        self._flags[slot] = 0
        with self._lock:
            self._free_slots.add(slot)

    def set_flag(self, slot: int) -> None:
        """Preempt every worker polling this slot (one store, no IPC)."""
        self._flags[slot] = 1

    # -- dispatch -------------------------------------------------------

    def submit(self, fn, *args) -> Future:
        return self._executor.submit(fn, *args)

    def shutdown(self) -> None:
        if self._shut_down:
            return
        self._shut_down = True
        self._executor.shutdown(wait=True, cancel_futures=True)
        self._flags = None
        self._flags_shm.close()
        self._flags_shm.unlink()


_POOLS: Dict[int, WorkerPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(n_workers: int) -> WorkerPool:
    """The process-wide pool for this worker count (created on demand).

    A pool marked broken (a worker died mid-task) is replaced on the next
    request, so one crash doesn't poison the process.
    """
    with _POOLS_LOCK:
        pool = _POOLS.get(n_workers)
        if pool is None or pool.broken:
            if pool is not None:
                pool.shutdown()
            pool = WorkerPool(n_workers)
            _POOLS[n_workers] = pool
        return pool


def shutdown_pools() -> None:
    """Tear down every pool and its shared segments (atexit + tests)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_pools)

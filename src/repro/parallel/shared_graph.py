"""Zero-copy graph publishing over POSIX shared memory.

This module is the :mod:`repro.parallel` façade over
:class:`repro.graph.store.SharedMemoryStore` — the layout, packing, and
segment lifecycle all live in the store layer, so shared memory and the
``.rgf``/memmap backend serialize through one code path. What remains
here is the worker-facing API shape the pool machinery uses:

* :class:`SharedGraph` — publish a graph, exposing the picklable
  :class:`~repro.graph.store.SharedGraphHandle` and an idempotent
  :meth:`~SharedGraph.unlink`;
* :func:`attach` — map a published segment by name, returning
  ``(segment, graph)`` where the graph's arrays are zero-copy views into
  the segment's buffer.

Lifecycle: the publishing process owns the segment and must call
:meth:`SharedGraph.unlink` exactly once when no process needs it anymore
(sessions do this through ``weakref.finalize``; the one-shot API does it
in a ``finally``). Attachers just drop their references — the numpy views
keep the mapping alive until they die, and closing an attached segment
while views exist would raise ``BufferError`` anyway, so no explicit
close is attempted on the worker side.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Tuple

from repro.graph.graph import Graph
from repro.graph.store import SharedGraphHandle, SharedMemoryStore

__all__ = ["SharedGraph", "SharedGraphHandle", "attach"]


class SharedGraph:
    """Publish one :class:`~repro.graph.graph.Graph` for worker attach.

    >>> g = Graph(labels=[0, 1, 1], edges=[(0, 1), (1, 2)])
    >>> shared = SharedGraph(g)
    >>> _, attached = attach(shared.handle)
    >>> attached == g
    True
    >>> shared.unlink()
    """

    def __init__(self, graph: Graph) -> None:
        self._store = SharedMemoryStore.publish(graph)
        self.handle = self._store.handle

    @property
    def store(self) -> SharedMemoryStore:
        return self._store

    @property
    def name(self) -> str:
        return self.handle.name

    @property
    def nbytes(self) -> int:
        return self._store.nbytes

    def unlink(self) -> None:
        """Close and remove the segment (idempotent, owner side only)."""
        self._store.close()

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()

    def __repr__(self) -> str:
        return (
            f"SharedGraph({self.handle.name}, |V|={self.handle.num_vertices}, "
            f"{self.nbytes} bytes)"
        )


def attach(
    handle: SharedGraphHandle,
) -> Tuple[shared_memory.SharedMemory, Graph]:
    """Map a published graph; returns ``(segment, graph)``.

    The caller must keep the segment object alive alongside the graph —
    the graph's arrays are views into the segment's buffer. Dropping both
    together is the whole cleanup; the owner's :meth:`SharedGraph.unlink`
    removes the name.
    """
    store = SharedMemoryStore.attach(handle)
    return store.segment, store.graph()

"""Zero-copy graph publishing over POSIX shared memory.

A :class:`SharedGraph` packs a data graph's four int64 arrays — labels,
CSR offsets, CSR neighbors, and the label-sorted vertex permutation the
label index is derived from — into **one** ``multiprocessing.shared_memory``
segment. Worker processes receive only the tiny picklable
:class:`SharedGraphHandle` (segment name + layout) and :func:`attach` maps
the segment read-only-by-convention via ``np.frombuffer`` +
:meth:`~repro.graph.graph.Graph.from_csr` — no copy, no unpickling, and
the attach cost is independent of graph size.

Lifecycle: the publishing process owns the segment and must call
:meth:`SharedGraph.unlink` exactly once when no process needs it anymore
(sessions do this through ``weakref.finalize``; the one-shot API does it
in a ``finally``). Attachers just drop their references — the numpy views
keep the mapping alive until they die, and closing an attached segment
while views exist would raise ``BufferError`` anyway, so no explicit
close is attempted on the worker side.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Tuple

import numpy as np

from repro.graph.graph import Graph

__all__ = ["SharedGraph", "SharedGraphHandle", "attach"]

_ITEMSIZE = np.dtype(np.int64).itemsize


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable descriptor of a published graph: name plus array layout.

    ``directed_edges`` is the length of the neighbors array (``2|E|`` for
    an undirected CSR with mirrored edges).
    """

    name: str
    num_vertices: int
    num_edges: int
    directed_edges: int

    @property
    def total_items(self) -> int:
        n = self.num_vertices
        # labels(n) | offsets(n+1) | neighbors(2E) | by_label(n)
        return n + (n + 1) + self.directed_edges + n


def _layout(handle: SharedGraphHandle, base: np.ndarray) -> Tuple[
    np.ndarray, np.ndarray, np.ndarray, np.ndarray
]:
    n, m = handle.num_vertices, handle.directed_edges
    labels = base[0:n]
    offsets = base[n : 2 * n + 1]
    neighbors = base[2 * n + 1 : 2 * n + 1 + m]
    by_label = base[2 * n + 1 + m : 3 * n + 1 + m]
    return labels, offsets, neighbors, by_label


class SharedGraph:
    """Publish one :class:`~repro.graph.graph.Graph` for worker attach.

    >>> g = Graph(labels=[0, 1, 1], edges=[(0, 1), (1, 2)])
    >>> shared = SharedGraph(g)
    >>> _, attached = attach(shared.handle)
    >>> attached == g
    True
    >>> shared.unlink()
    """

    def __init__(self, graph: Graph) -> None:
        n = graph.num_vertices
        offsets, neighbors = graph.csr
        m = int(neighbors.size)
        handle_size = (3 * n + 1 + m) * _ITEMSIZE
        # Zero-vertex graphs still need a nonzero-size segment.
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(handle_size, _ITEMSIZE)
        )
        self.handle = SharedGraphHandle(
            name=self._shm.name,
            num_vertices=n,
            num_edges=graph.num_edges,
            directed_edges=m,
        )
        base = np.frombuffer(
            self._shm.buf, dtype=np.int64, count=self.handle.total_items
        )
        dst_labels, dst_offsets, dst_neighbors, dst_by_label = _layout(
            self.handle, base
        )
        dst_labels[:] = graph.labels
        dst_offsets[:] = offsets
        dst_neighbors[:] = neighbors
        # The stable label argsort is what Graph's label index is built
        # from; shipping it lets every attacher skip the O(n log n) sort.
        dst_by_label[:] = np.argsort(graph.labels, kind="stable")
        # Release our own view so unlink() can close the mapping cleanly.
        del base, dst_labels, dst_offsets, dst_neighbors, dst_by_label
        self._unlinked = False

    @property
    def name(self) -> str:
        return self.handle.name

    @property
    def nbytes(self) -> int:
        return self.handle.total_items * _ITEMSIZE

    def unlink(self) -> None:
        """Close and remove the segment (idempotent, owner side only)."""
        if self._unlinked:
            return
        self._unlinked = True
        self._shm.close()
        self._shm.unlink()

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()

    def __repr__(self) -> str:
        return (
            f"SharedGraph({self.handle.name}, |V|={self.handle.num_vertices}, "
            f"{self.nbytes} bytes)"
        )


def attach(
    handle: SharedGraphHandle,
) -> Tuple[shared_memory.SharedMemory, Graph]:
    """Map a published graph; returns ``(segment, graph)``.

    The caller must keep the segment object alive alongside the graph —
    the graph's arrays are views into the segment's buffer. Dropping both
    together is the whole cleanup; the owner's :meth:`SharedGraph.unlink`
    removes the name.
    """
    shm = shared_memory.SharedMemory(name=handle.name)
    base = np.frombuffer(shm.buf, dtype=np.int64, count=handle.total_items)
    labels, offsets, neighbors, by_label = _layout(handle, base)
    graph = Graph.from_csr(
        labels,
        offsets,
        neighbors,
        num_edges=handle.num_edges,
        by_label=by_label,
    )
    return shm, graph

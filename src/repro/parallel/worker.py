"""Worker-process side of intra-query parallelism.

Each pool process attaches the cancel-flag segment once at init, then
serves :func:`_run_chunk` tasks: attach the shared data graph (cached by
segment name), rebuild/reuse the per-query preprocessing artifacts
(cached by a structural plan token + exact query), and run the iterative
engine over one window of the root-candidate list. Only the slim
:class:`ChunkResult` travels back — counts, stats, stored embeddings and
the chunk's wall-clock — never graphs or candidate structures.

Cache keying: unpickled ``AlgorithmSpec`` instances never compare equal
(their components are fresh objects), so the prepared-query cache keys on
:func:`_plan_token` — the spec/plan's structural identity (names, classes
and flags) — plus the exact query graph (hash/eq over CSR bytes) and the
data segment name. Two plans with identical tokens prepare identical
artifacts by construction: every registry component is parameterless and
ad-hoc components are distinguished by class (and kernels additionally by
registry name).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

from repro.core.plan import MatchPlan, PreparedQuery, run_plan
from repro.enumeration.stats import EnumerationStats
from repro.graph.graph import Graph
from repro.obs import Metrics
from repro.parallel.shared_graph import SharedGraphHandle, attach

__all__ = ["ChunkResult", "_run_chunk", "_worker_init"]

#: Attached data graphs kept warm per worker (LRU by segment name).
GRAPH_CACHE_SIZE = 4
#: Prepared queries kept warm per worker (LRU).
PREP_CACHE_SIZE = 32

_FLAGS: Optional[np.ndarray] = None
_FLAGS_SHM: Optional[shared_memory.SharedMemory] = None
_GRAPHS: "OrderedDict[str, Tuple[shared_memory.SharedMemory, Graph]]" = (
    OrderedDict()
)
_PREPARED: "OrderedDict[tuple, PreparedQuery]" = OrderedDict()


@dataclass
class ChunkResult:
    """One root window's enumeration outcome (picklable, graph-free)."""

    index: int
    num_matches: int
    solved: bool
    embeddings: List[Tuple[int, ...]]
    stats: EnumerationStats
    #: Enumeration wall-clock inside the worker — the per-chunk cost the
    #: makespan model in bench_parallel is built from.
    elapsed: float = 0.0
    #: Preprocessing seconds this task paid (0 on a prep-cache hit).
    prep_seconds: float = 0.0


def _worker_init(flags_name: str) -> None:
    """Pool initializer: map the cancel-flag segment once per process."""
    global _FLAGS, _FLAGS_SHM
    _FLAGS_SHM = shared_memory.SharedMemory(name=flags_name)
    _FLAGS = np.frombuffer(_FLAGS_SHM.buf, dtype=np.int64)


def _attach_graph(handle: SharedGraphHandle) -> Graph:
    entry = _GRAPHS.get(handle.name)
    if entry is not None:
        _GRAPHS.move_to_end(handle.name)
        return entry[1]
    shm, graph = attach(handle)
    _GRAPHS[handle.name] = (shm, graph)
    while len(_GRAPHS) > GRAPH_CACHE_SIZE:
        # Drop the reference only; the mapping lives until the arrays die
        # (an eager close would raise BufferError on the exported views).
        _GRAPHS.popitem(last=False)
    return graph


def _component_token(component: object) -> Optional[str]:
    if component is None:
        return None
    token = type(component).__name__
    kernel = getattr(component, "kernel", None)
    if kernel is not None:
        token += f"[{type(kernel).__name__}:{getattr(kernel, 'name', '?')}]"
    return token


def _plan_token(plan: MatchPlan) -> tuple:
    """Structural identity of a plan, stable across pickling."""
    spec = plan.algorithm
    kernel = plan.kernel_policy
    if kernel is not None and not isinstance(kernel, str):
        kernel = f"{type(kernel).__name__}:{getattr(kernel, 'name', '?')}"
    tree = spec.tree_source
    tree_token = getattr(tree, "__qualname__", None) if tree else None
    return (
        spec.name,
        _component_token(spec.filter),
        _component_token(spec.ordering),
        _component_token(spec.lc),
        tree_token,
        spec.aux_scope,
        spec.adaptive,
        spec.failing_sets,
        kernel,
        plan.aux_scope,
        plan.engine_policy,
    )


def _prepared_for(
    plan: MatchPlan, query: Graph, graph_name: str
) -> Optional[PreparedQuery]:
    key = (graph_name, _plan_token(plan), query)
    prepared = _PREPARED.get(key)
    if prepared is not None:
        _PREPARED.move_to_end(key)
    return prepared


def _remember_prepared(
    plan: MatchPlan, query: Graph, graph_name: str, prepared: PreparedQuery
) -> None:
    key = (graph_name, _plan_token(plan), query)
    _PREPARED[key] = prepared
    while len(_PREPARED) > PREP_CACHE_SIZE:
        _PREPARED.popitem(last=False)


def _run_chunk(
    handle: SharedGraphHandle,
    plan: MatchPlan,
    query: Graph,
    index: int,
    window: Tuple[int, int],
    match_limit: Optional[int],
    deadline_at: Optional[float],
    store_limit: int,
    cancel_slot: Optional[int],
) -> ChunkResult:
    """Enumerate one root window; the pool's task function.

    ``deadline_at`` is an absolute ``time.monotonic()`` instant (clocks
    are shared across fork/spawn on the same host), converted to the
    engine's relative ``time_limit`` here so queue wait counts against
    the budget exactly like the serving tier's admission does.
    """
    data = _attach_graph(handle)
    prepared = _prepared_for(plan, query, handle.name)
    had_prepared = prepared is not None

    time_limit = None
    if deadline_at is not None:
        # An already-expired deadline still runs the engine (which
        # notices on its first stride) so the chunk reports solved=False
        # instead of crashing on a non-positive Deadline.
        time_limit = max(deadline_at - time.monotonic(), 1e-9)

    cancel = None
    if cancel_slot is not None:
        flags = _FLAGS
        assert flags is not None, "worker used before _worker_init"

        def cancel() -> bool:
            return bool(flags[cancel_slot])

    result, prepared = run_plan(
        plan,
        query,
        data,
        prepared=prepared,
        match_limit=match_limit,
        time_limit=time_limit,
        store_limit=store_limit,
        metrics=Metrics(),
        cancel=cancel,
        root_window=window,
    )
    if not had_prepared:
        _remember_prepared(plan, query, handle.name, prepared)
    return ChunkResult(
        index=index,
        num_matches=result.num_matches,
        solved=result.solved,
        embeddings=list(result.embeddings),
        stats=result.stats,
        elapsed=result.enumeration_seconds,
        prep_seconds=result.preprocessing_seconds,
    )

"""Differential QA harness: planted-ground-truth fuzzing.

The paper's central claim is that eight algorithms decomposed into one
framework produce *identical* match sets; Zeng et al.'s "Deep Analysis on
Subgraph Isomorphism" shows independent implementations routinely disagree
on counts. This package is the standing oracle that hunts for such
disagreements before users do:

* :mod:`~repro.qa.generator` — planted-embedding workloads: a known query
  is embedded into a random RMAT/ER background, so at least one match is
  ground truth by construction, plus metamorphic transforms (label
  permutation, vertex renumbering, edge-order shuffling) whose results
  must be invariant;
* :mod:`~repro.qa.differential` — runs each case across every registry
  preset, every kernel backend, :class:`~repro.core.session.MatchSession`
  vs one-shot ``match()`` and the :mod:`repro.baselines` oracles,
  normalizes embeddings and reports any count/set divergence;
* :mod:`~repro.qa.shrink` — minimizes a failing (data, query) pair by
  vertex/edge deletion while the divergence reproduces;
* :mod:`~repro.qa.corpus` — replayable JSON repro files (save / load /
  replay, schema ``repro.qa/v1``);
* :mod:`~repro.qa.fuzz` — the seeded, time-boxed fuzz loop behind the
  ``repro fuzz`` CLI subcommand.
"""

from repro.qa.corpus import (
    CORPUS_SCHEMA,
    graph_from_json,
    graph_to_json,
    iter_corpus,
    load_repro,
    replay_repro,
    save_repro,
)
from repro.qa.differential import (
    DIVERGENCE_KINDS,
    MUTATION_KINDS,
    Config,
    Divergence,
    divergence_reproduces,
    normalize_embeddings,
    run_case,
    run_config,
    run_mutation_config,
)
from repro.qa.fuzz import FuzzReport, replay_corpus, run_fuzz
from repro.qa.generator import (
    PlantedCase,
    TRANSFORMS,
    apply_transform,
    permute_label_alphabet,
    plant_case,
    plant_mutation_script,
    renumber_vertices,
    shuffle_edges,
)
from repro.qa.shrink import shrink_case

__all__ = [
    "PlantedCase",
    "plant_case",
    "plant_mutation_script",
    "TRANSFORMS",
    "apply_transform",
    "renumber_vertices",
    "permute_label_alphabet",
    "shuffle_edges",
    "Config",
    "Divergence",
    "DIVERGENCE_KINDS",
    "MUTATION_KINDS",
    "run_case",
    "run_config",
    "run_mutation_config",
    "normalize_embeddings",
    "divergence_reproduces",
    "shrink_case",
    "CORPUS_SCHEMA",
    "graph_to_json",
    "graph_from_json",
    "save_repro",
    "load_repro",
    "iter_corpus",
    "replay_repro",
    "run_fuzz",
    "replay_corpus",
    "FuzzReport",
]

"""Replayable JSON repro files: the fuzzer's persistent corpus.

Every divergence the fuzzer finds (after shrinking) is written as one
self-contained JSON file — the graphs, the failing comparison and the
divergence class — so a bug found nightly can be replayed in a unit test,
attached to an issue, or pinned forever as a regression fixture
(``tests/corpus/``). Schema::

    {
      "schema": "repro.qa/v1",
      "kind": "<one of DIVERGENCE_KINDS>",
      "seed": 123,                     # generator seed, null if hand-made
      "detail": "human-readable note",
      "config_a": {"algorithm": "CECI", "kernel": "numpy", "mode": "oneshot"},
      "config_b": {...} | null,        # second side of the comparison
      "transform": {"name": "renumber", "seed": 5} | null,
      "query": {"labels": [...], "edges": [[u, v], ...]},
      "data":  {"labels": [...], "edges": [[u, v], ...]},
      "planted": [v0, v1, ...] | null
    }

:func:`replay_repro` re-executes exactly the recorded comparison via
:func:`repro.qa.differential.divergence_reproduces`; a healthy tree
returns ``False`` (the historical divergence no longer reproduces).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.graph.graph import Graph

__all__ = [
    "CORPUS_SCHEMA",
    "graph_to_json",
    "graph_from_json",
    "make_record",
    "save_repro",
    "load_repro",
    "iter_corpus",
    "replay_repro",
]

CORPUS_SCHEMA = "repro.qa/v1"


def graph_to_json(graph: Graph) -> Dict:
    """Portable dict form of a graph (labels + undirected edge list)."""
    return {
        "labels": graph.labels.tolist(),
        "edges": [[int(u), int(v)] for u, v in graph.edges()],
    }


def graph_from_json(payload: Dict) -> Graph:
    """Rebuild a graph from :func:`graph_to_json` output."""
    return Graph(
        labels=list(payload["labels"]),
        edges=[(int(u), int(v)) for u, v in payload["edges"]],
    )


def make_record(
    kind: str,
    query: Graph,
    data: Graph,
    config_a: Dict,
    config_b: Optional[Dict] = None,
    transform: Optional[Dict] = None,
    seed: Optional[int] = None,
    detail: str = "",
    planted: Optional[Tuple[int, ...]] = None,
) -> Dict:
    """Assemble one corpus record (validated minimally)."""
    from repro.qa.differential import DIVERGENCE_KINDS

    if kind not in DIVERGENCE_KINDS:
        raise ValueError(
            f"unknown divergence kind {kind!r}; known: {DIVERGENCE_KINDS}"
        )
    return {
        "schema": CORPUS_SCHEMA,
        "kind": kind,
        "seed": seed,
        "detail": detail,
        "config_a": config_a,
        "config_b": config_b,
        "transform": transform,
        "query": graph_to_json(query),
        "data": graph_to_json(data),
        "planted": list(planted) if planted is not None else None,
    }


def save_repro(path: str, record: Dict) -> str:
    """Write one repro record as pretty-printed JSON; returns ``path``."""
    if record.get("schema") != CORPUS_SCHEMA:
        raise ValueError(
            f"refusing to save record with schema {record.get('schema')!r}"
        )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_repro(path: str) -> Dict:
    """Load and schema-check one repro record."""
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    if record.get("schema") != CORPUS_SCHEMA:
        raise ValueError(
            f"{path}: unsupported schema {record.get('schema')!r} "
            f"(expected {CORPUS_SCHEMA})"
        )
    for key in ("kind", "config_a", "query", "data"):
        if key not in record:
            raise ValueError(f"{path}: repro record missing {key!r}")
    return record


def iter_corpus(directory: str) -> Iterator[Tuple[str, Dict]]:
    """Yield ``(path, record)`` for every ``*.json`` repro in a directory."""
    if not os.path.isdir(directory):
        return
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            path = os.path.join(directory, name)
            yield path, load_repro(path)


def replay_repro(record: Dict) -> bool:
    """Re-execute a recorded divergence; True = it still reproduces.

    A fixed bug replays ``False``; corpus fixtures in the test suite
    assert exactly that, turning every past fuzz finding into a standing
    regression test.
    """
    from repro.qa.differential import divergence_reproduces

    query = graph_from_json(record["query"])
    data = graph_from_json(record["data"])
    return divergence_reproduces(record, query, data)


def corpus_summary(directory: str) -> List[Dict]:
    """One summary row per corpus file (for the CLI replay listing)."""
    rows = []
    for path, record in iter_corpus(directory):
        rows.append(
            {
                "path": path,
                "kind": record["kind"],
                "seed": record.get("seed"),
                "query_vertices": len(record["query"]["labels"]),
                "data_vertices": len(record["data"]["labels"]),
            }
        )
    return rows

"""The differential runner: one case, every configuration, zero tolerance.

For a planted case this module executes the query across

* every built-in registry preset (plus ``"recommended"``),
* every kernel backend on an Algorithm 5 preset,
* both enumeration engines (recursive vs iterative frame machine) on
  static-failing-sets and adaptive presets, compared byte-for-byte,
* :class:`~repro.core.session.MatchSession` (cache miss *and* cache hit)
  vs the one-shot :func:`~repro.core.api.match`,
* the independent :mod:`repro.baselines` oracles — VF2 always (cases are
  small by construction), brute force when the assignment space is tiny,
* the metamorphic transforms of :mod:`repro.qa.generator`,
* the mutate-then-match differential (:func:`run_mutation_config`): a
  seeded mutation script applied batch by batch to a
  :class:`~repro.dynamic.DynamicGraph`, with the incremental match, the
  incrementally maintained candidate sets and the standing subscription
  each cross-checked against a from-scratch rebuild after every batch,

normalizes embeddings to order-free sets and reports every disagreement
as a :class:`Divergence`. Each divergence carries a serializable
``record`` (configs + transform + kind) so that :mod:`repro.qa.shrink`
and :mod:`repro.qa.corpus` can re-execute *exactly* the failing
comparison on a mutated or reloaded (query, data) pair via
:func:`divergence_reproduces`.
"""

from __future__ import annotations

import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.baselines import brute_force_matches, vf2_matches
from repro.core.algorithms import PRESETS
from repro.core.api import match
from repro.core.session import MatchSession
from repro.core.verify import verify_embedding
from repro.dynamic import (
    DynamicGraph,
    IncrementalCandidates,
    MutationScript,
    sanitize_batch,
    script_from_json,
    script_to_json,
)
from repro.graph.fingerprint import query_fingerprint
from repro.graph.graph import Graph
from repro.graph.store import MmapStore, SharedMemoryStore, write_rgf
from repro.qa.generator import PlantedCase, apply_transform
from repro.utils.kernels import available_kernels

__all__ = [
    "DIVERGENCE_KINDS",
    "MUTATION_KINDS",
    "Config",
    "Divergence",
    "Outcome",
    "run_config",
    "run_mutation_config",
    "run_case",
    "normalize_embeddings",
    "divergence_reproduces",
]

#: Every divergence class the fuzzer can emit. Corpus fixtures pin one
#: regression per class (tests/corpus), and the property suite replays
#: them — keep this tuple and those fixtures in sync.
DIVERGENCE_KINDS: Tuple[str, ...] = (
    "count_mismatch",      # two framework presets disagree on the count
    "set_mismatch",        # counts agree, normalized embedding sets do not
    "missing_planted",     # the ground-truth planted embedding is absent
    "oracle_mismatch",     # framework vs brute-force/VF2 oracle
    "session_mismatch",    # MatchSession vs one-shot, or cache hit vs miss
    "metamorphic_mismatch",  # result changed under an invariant transform
    "invalid_embedding",   # a returned embedding fails verify_embedding
    "crash",               # a configuration raised an exception
    "mutation_mismatch",   # incremental mutate-then-match vs from-scratch rebuild
    "candidate_drift",     # incremental candidate maintenance vs full rebuild
    "subscription_mismatch",  # subscription delta vs the full-match difference
)

#: The divergence classes the mutation axis can emit; their replay path
#: is :func:`run_mutation_config` rather than a pair of ordinary runs.
MUTATION_KINDS: Tuple[str, ...] = (
    "mutation_mismatch",
    "candidate_drift",
    "subscription_mismatch",
)

#: Embeddings are compared as sets of per-query-vertex tuples; both the
#: cap and the store limit default high enough that tiny fuzz cases are
#: never truncated (capped runs are excluded from set comparisons).
DEFAULT_MATCH_LIMIT = 20_000


@dataclass(frozen=True)
class Config:
    """One executable configuration of a case.

    ``mode`` is ``"oneshot"`` (plain :func:`match`), ``"session"``
    (:class:`MatchSession`, run twice to cover cache miss and hit),
    ``"vf2"`` or ``"bruteforce"`` (the oracles; ``algorithm``/``kernel``/
    ``engine`` are ignored there). ``engine`` ``None`` defers to the
    registry default, so historical corpus records replay unchanged —
    and so do ``n_workers`` ``None`` (sequential), the intra-query
    parallelism axis (:mod:`repro.parallel`), and ``storage`` ``None``
    (the in-memory arrays), the residency axis: ``"rgf"`` round-trips
    the data graph through the binary format and runs off the memmap
    view, ``"shm"`` runs off a shared-memory segment
    (:mod:`repro.graph.store`). ``mutations`` ``None`` (the static
    default; legacy corpus records replay unchanged) versus a mutation
    *script* — a tuple of batches of :class:`~repro.dynamic.Mutation`
    ops — the dynamic axis: :func:`run_mutation_config` applies the
    script batch by batch to a :class:`~repro.dynamic.DynamicGraph` and
    cross-checks incremental state against a from-scratch rebuild after
    every batch.
    """

    algorithm: str = "GQL"
    kernel: Optional[str] = None
    mode: str = "oneshot"
    engine: Optional[str] = None
    n_workers: Optional[int] = None
    storage: Optional[str] = None
    mutations: Optional[MutationScript] = None

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {
            "algorithm": self.algorithm,
            "kernel": self.kernel,
            "mode": self.mode,
            "engine": self.engine,
            "n_workers": self.n_workers,
            "storage": self.storage,
            "mutations": (
                script_to_json(self.mutations)
                if self.mutations is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Optional[str]]) -> "Config":
        n_workers = payload.get("n_workers")
        script = payload.get("mutations")
        return cls(
            algorithm=payload.get("algorithm") or "GQL",
            kernel=payload.get("kernel"),
            mode=payload.get("mode") or "oneshot",
            engine=payload.get("engine"),
            n_workers=int(n_workers) if n_workers is not None else None,
            storage=payload.get("storage"),
            mutations=script_from_json(script) if script else None,
        )

    def label(self) -> str:
        if self.mode in ("vf2", "bruteforce"):
            return self.mode
        kernel = f"/{self.kernel}" if self.kernel else ""
        engine = f"@{self.engine}" if self.engine else ""
        workers = f"|w{self.n_workers}" if self.n_workers else ""
        storage = f"~{self.storage}" if self.storage else ""
        session = "+session" if self.mode == "session" else ""
        mutate = (
            f"+mut{sum(len(b) for b in self.mutations)}"
            if self.mutations
            else ""
        )
        return (
            f"{self.algorithm}{kernel}{engine}{workers}{storage}"
            f"{session}{mutate}"
        )


@dataclass
class Outcome:
    """Normalized result of one configuration run."""

    count: int
    emb_set: FrozenSet[Tuple[int, ...]]
    emb_list: List[Tuple[int, ...]]
    solved: bool = True
    capped: bool = False
    #: Session mode only: the embeddings of the second (cache-hit) run.
    repeat_list: Optional[List[Tuple[int, ...]]] = None


def normalize_embeddings(
    embeddings: Sequence[Tuple[int, ...]],
) -> FrozenSet[Tuple[int, ...]]:
    """Order-free, duplicate-free view of an embedding list."""
    return frozenset(tuple(int(v) for v in emb) for emb in embeddings)


@contextmanager
def _stored_data(data: Graph, storage: Optional[str]) -> Iterator[Graph]:
    """Resolve ``data`` through the requested storage backend.

    ``None`` yields the graph untouched; ``"rgf"`` writes it to a
    temporary ``.rgf`` file and yields the memmap-backed view (with
    checksum validation on open); ``"shm"`` publishes it to a
    shared-memory segment and yields the view over that segment. Either
    way the backing store is closed (and the segment unlinked / the
    tempfile removed) when the block exits.
    """
    if storage is None:
        yield data
        return
    if storage == "rgf":
        with tempfile.TemporaryDirectory(prefix="repro-qa-") as tmp:
            path = Path(tmp) / "data.rgf"
            write_rgf(data, path)
            store = MmapStore(path, validate=True)
            try:
                yield store.graph()
            finally:
                store.close()
        return
    if storage == "shm":
        store = SharedMemoryStore.publish(data)
        try:
            yield store.graph()
        finally:
            store.close()
        return
    raise ValueError(f"unknown storage backend: {storage!r}")


def run_config(
    query: Graph,
    data: Graph,
    config: Config,
    match_limit: int = DEFAULT_MATCH_LIMIT,
) -> Outcome:
    """Execute one configuration and normalize its result."""
    with _stored_data(data, config.storage) as resident:
        return _run_resident(query, resident, config, match_limit)


def _run_resident(
    query: Graph,
    data: Graph,
    config: Config,
    match_limit: int,
) -> Outcome:
    if config.mode == "vf2":
        found = vf2_matches(query, data, limit=match_limit)
        return Outcome(
            count=len(found),
            emb_set=frozenset(found),
            emb_list=sorted(found),
            capped=len(found) >= match_limit,
        )
    if config.mode == "bruteforce":
        found = brute_force_matches(query, data)
        return Outcome(
            count=len(found), emb_set=frozenset(found), emb_list=sorted(found)
        )
    if config.mode == "session":
        session = MatchSession(
            data,
            algorithm=config.algorithm,
            kernel=config.kernel,
            engine=config.engine,
            n_workers=config.n_workers,
        )
        try:
            first = session.match(
                query, match_limit=match_limit, store_limit=match_limit
            )
            second = session.match(
                query, match_limit=match_limit, store_limit=match_limit
            )
        finally:
            session.close()
        return Outcome(
            count=first.num_matches,
            emb_set=normalize_embeddings(first.embeddings),
            emb_list=list(first.embeddings),
            solved=first.solved and second.solved,
            capped=first.num_matches >= match_limit,
            repeat_list=list(second.embeddings),
        )
    result = match(
        query,
        data,
        algorithm=config.algorithm,
        kernel=config.kernel,
        engine=config.engine,
        n_workers=config.n_workers,
        match_limit=match_limit,
        store_limit=match_limit,
    )
    return Outcome(
        count=result.num_matches,
        emb_set=normalize_embeddings(result.embeddings),
        emb_list=list(result.embeddings),
        solved=result.solved,
        capped=result.num_matches >= match_limit,
    )


def run_mutation_config(
    query: Graph,
    data: Graph,
    config: Config,
    match_limit: int = DEFAULT_MATCH_LIMIT,
) -> Optional[Tuple[str, str]]:
    """The mutate-then-match differential: first finding or ``None``.

    ``config.mutations`` is applied batch by batch (after sanitizing ops
    against the current vertex count — the shrinker deletes vertices
    underneath recorded scripts) to a :class:`DynamicGraph` resident in
    a :class:`MatchSession`, with a standing subscription riding along.
    After **every** batch, three cross-checks against a from-scratch
    rebuild of the post-batch graph:

    * ``mutation_mismatch`` — the session's incremental match (epoch-
      keyed caches, maintained snapshot) must be byte-identical to a
      one-shot :func:`match` on a freshly constructed :class:`Graph`,
      and the overlay snapshot itself must compare equal to that
      rebuild (CSR is canonical, so equality is byte-parity);
    * ``candidate_drift`` — :class:`IncrementalCandidates` state after
      ``apply_delta`` must equal a ground-up rebuild on the same graph;
    * ``subscription_mismatch`` — the subscription's standing embedding
      set (initial set plus every reported delta) must equal the
      from-scratch match set.
    """
    script = config.mutations or ()
    with _stored_data(data, config.storage) as resident:
        # Materialize the resident view into plain arrays: the dynamic
        # overlay outlives the storage context (mmap/shm close on exit).
        base = Graph(
            labels=resident.labels.tolist(), edges=list(resident.edges())
        )
    dyn = DynamicGraph(base)
    incremental = IncrementalCandidates(query, dyn)
    session = MatchSession(
        dyn,
        algorithm=config.algorithm,
        kernel=config.kernel,
        engine=config.engine,
    )
    try:
        subscription = session.subscribe(query, match_limit=match_limit)
        n = dyn.num_vertices
        for index, batch in enumerate(script):
            kept, n = sanitize_batch(batch, n)
            outcome = session.mutate(kept)
            incremental.apply_delta(outcome.delta)

            rebuilt = Graph(
                labels=dyn.labels_list(), edges=list(dyn.edges())
            )
            if dyn.snapshot() != rebuilt:
                return (
                    "mutation_mismatch",
                    f"batch {index}: overlay snapshot differs from the "
                    "from-scratch rebuild",
                )
            inc_result = session.match(
                query, match_limit=match_limit, store_limit=match_limit
            )
            scratch = match(
                query,
                rebuilt,
                algorithm=config.algorithm,
                kernel=config.kernel,
                engine=config.engine,
                match_limit=match_limit,
                store_limit=match_limit,
            )
            capped = (
                inc_result.num_matches >= match_limit
                or scratch.num_matches >= match_limit
            )
            if inc_result.num_matches != scratch.num_matches or (
                not capped
                and list(inc_result.embeddings) != list(scratch.embeddings)
            ):
                return (
                    "mutation_mismatch",
                    f"batch {index}: incremental match "
                    f"({inc_result.num_matches}) differs from from-scratch "
                    f"({scratch.num_matches})",
                )
            if not incremental.equal_state(incremental.rebuild()):
                return (
                    "candidate_drift",
                    f"batch {index}: incremental candidate state differs "
                    "from a ground-up rebuild",
                )
            if not capped and set(subscription.matches()) != set(
                normalize_embeddings(scratch.embeddings)
            ):
                return (
                    "subscription_mismatch",
                    f"batch {index}: subscription holds "
                    f"{subscription.num_matches} embeddings, from-scratch "
                    f"found {scratch.num_matches}",
                )
        return None
    finally:
        session.close()


@dataclass
class Divergence:
    """One detected disagreement, with everything needed to replay it.

    ``record`` is the JSON-serializable description (kind, configs,
    transform) that :func:`divergence_reproduces` re-executes; ``query``
    and ``data`` are the graphs it happened on (pre-shrink).
    """

    kind: str
    detail: str
    record: Dict
    query: Graph
    data: Graph
    seed: Optional[int] = None
    planted: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        assert self.kind in DIVERGENCE_KINDS, self.kind

    def __repr__(self) -> str:
        return f"Divergence({self.kind}: {self.detail})"


def _record(
    kind: str,
    config_a: Config,
    config_b: Optional[Config] = None,
    transform: Optional[Dict] = None,
) -> Dict:
    return {
        "kind": kind,
        "config_a": config_a.to_dict(),
        "config_b": config_b.to_dict() if config_b is not None else None,
        "transform": transform,
    }


def _pair_divergence(
    kind: str,
    config_a: Config,
    config_b: Config,
    a: Outcome,
    b: Outcome,
    case: "PlantedCase",
    detail: str,
) -> Divergence:
    return Divergence(
        kind=kind,
        detail=(
            f"{config_a.label()} vs {config_b.label()}: {detail} "
            f"({a.count} vs {b.count} matches)"
        ),
        record=_record(kind, config_a, config_b),
        query=case.query,
        data=case.data,
        seed=case.seed,
        planted=case.planted,
    )


def _outcomes_differ(a: Outcome, b: Outcome) -> Optional[str]:
    """Why two outcomes disagree (``None`` when they agree).

    Capped runs (the match cap truncated enumeration) compare counts
    only — different algorithms legally reach different cap subsets.
    """
    if a.capped or b.capped:
        return None
    if a.count != b.count:
        return "count"
    if a.emb_set != b.emb_set:
        return "set"
    return None


def default_presets() -> List[str]:
    """All built-in preset names plus ``"recommended"``."""
    return sorted(PRESETS) + ["recommended"]


def default_kernels() -> List[str]:
    """All registered kernel backends (the concrete ones, not ``auto``)."""
    return [name for name in available_kernels() if name != "auto"]


def default_engines() -> List[str]:
    """Engines swept by default: the iterative engine only.

    The recursive engine is the retired reference implementation — it
    is no longer in the default registry at all. To sweep it, call
    :func:`repro.enumeration.engines.enable_recursive_baseline` (or set
    ``REPRO_ENGINE=recursive``) and pass ``engines=available_engines()``;
    the default fuzz run no longer spends its budget re-validating it.
    """
    return ["iterative"]


def run_case(
    case: PlantedCase,
    presets: Optional[Sequence[str]] = None,
    kernels: Optional[Sequence[str]] = None,
    kernel_algorithm: str = "CECI",
    session_algorithm: str = "GQL-opt",
    engines: Optional[Sequence[str]] = None,
    engine_algorithms: Sequence[str] = ("GQLfs", "DPfs"),
    worker_counts: Sequence[int] = (2,),
    storages: Sequence[str] = ("rgf", "shm"),
    oracle: bool = True,
    bruteforce_budget: int = 200_000,
    metamorphic: bool = True,
    mutations: Optional[MutationScript] = None,
    match_limit: int = DEFAULT_MATCH_LIMIT,
) -> List[Divergence]:
    """Run one planted case through the full configuration matrix.

    Returns every divergence found (empty list = the case is clean). The
    first preset is the baseline all others are compared against; the
    oracles are compared against the baseline too, so a systematic
    framework bug still surfaces as an ``oracle_mismatch``. When
    ``mutations`` is given, the mutate-then-match differential
    (:func:`run_mutation_config`) additionally sweeps the script over
    the baseline preset, the session preset, one kernel config, every
    requested engine, and every storage backend.
    """
    presets = list(presets) if presets is not None else default_presets()
    kernels = list(kernels) if kernels is not None else default_kernels()
    engines = list(engines) if engines is not None else default_engines()
    divergences: List[Divergence] = []

    def run_checked(config: Config) -> Optional[Outcome]:
        try:
            return run_config(case.query, case.data, config, match_limit)
        except Exception as exc:  # noqa: BLE001 — any crash is a finding
            divergences.append(
                Divergence(
                    kind="crash",
                    detail=f"{config.label()} raised {type(exc).__name__}: {exc}",
                    record=_record("crash", config),
                    query=case.query,
                    data=case.data,
                    seed=case.seed,
                    planted=case.planted,
                )
            )
            return None

    base_config = Config(algorithm=presets[0])
    base = run_checked(base_config)
    if base is None:
        return divergences

    def compare(kind: str, config: Config, outcome: Outcome) -> None:
        why = _outcomes_differ(base, outcome)
        if why is None:
            return
        if kind == "count_mismatch" and why == "set":
            kind = "set_mismatch"
        divergences.append(
            _pair_divergence(
                kind, base_config, config, base, outcome, case,
                f"{why} differs",
            )
        )

    def check_planted_and_valid(config: Config, outcome: Outcome) -> None:
        if outcome.capped:
            return
        for emb in outcome.emb_list:
            if not verify_embedding(case.query, case.data, emb):
                divergences.append(
                    Divergence(
                        kind="invalid_embedding",
                        detail=f"{config.label()} returned non-match {emb}",
                        record=_record("invalid_embedding", config),
                        query=case.query,
                        data=case.data,
                        seed=case.seed,
                        planted=case.planted,
                    )
                )
                break
        if case.planted is not None and case.planted not in outcome.emb_set:
            divergences.append(
                Divergence(
                    kind="missing_planted",
                    detail=(
                        f"{config.label()} missed the planted embedding "
                        f"{case.planted}"
                    ),
                    record=_record("missing_planted", config),
                    query=case.query,
                    data=case.data,
                    seed=case.seed,
                    planted=case.planted,
                )
            )

    check_planted_and_valid(base_config, base)

    # Every registry preset against the baseline.
    for name in presets[1:]:
        config = Config(algorithm=name)
        outcome = run_checked(config)
        if outcome is None:
            continue
        compare("count_mismatch", config, outcome)
        check_planted_and_valid(config, outcome)

    # Every kernel backend on one Algorithm 5 preset.
    for kernel in kernels:
        config = Config(algorithm=kernel_algorithm, kernel=kernel)
        outcome = run_checked(config)
        if outcome is None:
            continue
        why = _outcomes_differ(base, outcome)
        if why is not None:
            divergences.append(
                _pair_divergence(
                    "count_mismatch" if why == "count" else "set_mismatch",
                    base_config, config, base, outcome, case,
                    f"{why} differs",
                )
            )

    # Both enumeration engines, pairwise: the engines promise *byte
    # identical* results (embedding order included), a stronger contract
    # than the set equality presets are held to. Order-only differences
    # are reported as ``session_mismatch``, whose replay path compares
    # embedding lists.
    for algo in engine_algorithms:
        first_config = Config(algorithm=algo, engine=engines[0])
        first = run_checked(first_config)
        if first is None:
            continue
        for engine in engines[1:]:
            config = Config(algorithm=algo, engine=engine)
            outcome = run_checked(config)
            if outcome is None:
                continue
            why = _outcomes_differ(first, outcome)
            if why is not None:
                divergences.append(
                    _pair_divergence(
                        "count_mismatch" if why == "count" else "set_mismatch",
                        first_config, config, first, outcome, case,
                        f"{why} differs between engines",
                    )
                )
            elif not (first.capped or outcome.capped) and (
                first.emb_list != outcome.emb_list
            ):
                divergences.append(
                    _pair_divergence(
                        "session_mismatch", first_config, config,
                        first, outcome, case,
                        "engines returned differently ordered embeddings",
                    )
                )

        # Parallel enumeration against the same sequential run, held to
        # the engines' byte-identical contract: chunked fan-out must
        # reassemble the exact sequential embedding order. Small cases
        # fall below the parallel eligibility floor and silently run
        # sequentially — that degenerate comparison passing is fine; the
        # axis earns its keep on the cases with enough root candidates.
        for n_workers in worker_counts:
            config = Config(
                algorithm=algo, engine=engines[0], n_workers=n_workers
            )
            outcome = run_checked(config)
            if outcome is None or first is None:
                continue
            why = _outcomes_differ(first, outcome)
            if why is not None:
                divergences.append(
                    _pair_divergence(
                        "count_mismatch" if why == "count" else "set_mismatch",
                        first_config, config, first, outcome, case,
                        f"{why} differs between sequential and parallel runs",
                    )
                )
            elif not (first.capped or outcome.capped) and (
                first.emb_list != outcome.emb_list
            ):
                divergences.append(
                    _pair_divergence(
                        "session_mismatch", first_config, config,
                        first, outcome, case,
                        "parallel run reordered embeddings",
                    )
                )

    # Storage-backend axis: the baseline preset rerun with the data
    # graph resident in each alternate backend (``.rgf`` memmap,
    # shared memory). The CSR arrays are byte-identical by construction
    # (store fingerprints are compared first), so the match itself is
    # held to the byte-identical contract: order-only differences are
    # ``session_mismatch``, like the engine and parallel sweeps.
    base_fingerprint = case.data.store.fingerprint()
    for storage in storages:
        config = Config(algorithm=presets[0], storage=storage)
        try:
            with _stored_data(case.data, storage) as resident:
                fingerprint = resident.store.fingerprint()
        except Exception as exc:  # noqa: BLE001 — any crash is a finding
            divergences.append(
                Divergence(
                    kind="crash",
                    detail=(
                        f"{config.label()} backend raised "
                        f"{type(exc).__name__}: {exc}"
                    ),
                    record=_record("crash", config),
                    query=case.query,
                    data=case.data,
                    seed=case.seed,
                    planted=case.planted,
                )
            )
            continue
        if fingerprint != base_fingerprint:
            divergences.append(
                _pair_divergence(
                    "session_mismatch", base_config, config,
                    base, base, case,
                    f"{storage} store fingerprint differs from in-memory",
                )
            )
            continue
        outcome = run_checked(config)
        if outcome is None:
            continue
        why = _outcomes_differ(base, outcome)
        if why is not None:
            divergences.append(
                _pair_divergence(
                    "count_mismatch" if why == "count" else "set_mismatch",
                    base_config, config, base, outcome, case,
                    f"{why} differs across storage backends",
                )
            )
        elif not (base.capped or outcome.capped) and (
            base.emb_list != outcome.emb_list
        ):
            divergences.append(
                _pair_divergence(
                    "session_mismatch", base_config, config,
                    base, outcome, case,
                    f"{storage} backend reordered embeddings",
                )
            )

    # MatchSession (miss then hit) vs the one-shot baseline result.
    session_config = Config(algorithm=session_algorithm, mode="session")
    oneshot_config = Config(algorithm=session_algorithm)
    session_outcome = run_checked(session_config)
    oneshot_outcome = run_checked(oneshot_config)
    if session_outcome is not None and oneshot_outcome is not None:
        if session_outcome.repeat_list is not None and (
            session_outcome.emb_list != session_outcome.repeat_list
        ):
            divergences.append(
                Divergence(
                    kind="session_mismatch",
                    detail=(
                        f"{session_config.label()}: cache hit returned "
                        "different embeddings than cache miss"
                    ),
                    record=_record("session_mismatch", session_config,
                                   oneshot_config),
                    query=case.query,
                    data=case.data,
                    seed=case.seed,
                    planted=case.planted,
                )
            )
        elif session_outcome.emb_list != oneshot_outcome.emb_list:
            divergences.append(
                _pair_divergence(
                    "session_mismatch", session_config, oneshot_config,
                    session_outcome, oneshot_outcome, case,
                    "session and one-shot results differ",
                )
            )

    # Independent oracles. VF2 always (cases are small); brute force only
    # when the label-restricted assignment space is tiny.
    if oracle:
        vf2_config = Config(mode="vf2")
        vf2_outcome = run_checked(vf2_config)
        if vf2_outcome is not None:
            why = _outcomes_differ(base, vf2_outcome)
            if why is not None:
                divergences.append(
                    _pair_divergence(
                        "oracle_mismatch", base_config, vf2_config,
                        base, vf2_outcome, case, f"{why} differs",
                    )
                )
        if _bruteforce_feasible(case.query, case.data, bruteforce_budget):
            bf_config = Config(mode="bruteforce")
            bf_outcome = run_checked(bf_config)
            if bf_outcome is not None:
                why = _outcomes_differ(base, bf_outcome)
                if why is not None:
                    divergences.append(
                        _pair_divergence(
                            "oracle_mismatch", base_config, bf_config,
                            base, bf_outcome, case, f"{why} differs",
                        )
                    )

    # Metamorphic invariants on the baseline preset.
    if metamorphic and not base.capped:
        for transform in ("relabel", "renumber", "edge_shuffle"):
            t_seed = case.seed * 31 + len(transform)
            violation = _metamorphic_violation(
                case.query, case.data, base_config, transform, t_seed,
                match_limit, base,
            )
            if violation:
                divergences.append(
                    Divergence(
                        kind="metamorphic_mismatch",
                        detail=(
                            f"{base_config.label()} under {transform}: "
                            f"{violation}"
                        ),
                        record=_record(
                            "metamorphic_mismatch", base_config,
                            transform={"name": transform, "seed": t_seed},
                        ),
                        query=case.query,
                        data=case.data,
                        seed=case.seed,
                        planted=case.planted,
                    )
                )

    # Mutation axis: the mutate-then-match differential, swept across a
    # representative slice of the matrix. Every config replays through
    # run_mutation_config, so the records need no second side.
    if mutations:
        mutation_configs: List[Config] = [
            Config(algorithm=presets[0], mode="session", mutations=mutations),
            Config(
                algorithm=session_algorithm, mode="session",
                mutations=mutations,
            ),
        ]
        if kernels:
            mutation_configs.append(
                Config(
                    algorithm=kernel_algorithm, kernel=kernels[0],
                    mode="session", mutations=mutations,
                )
            )
        for engine in engines:
            mutation_configs.append(
                Config(
                    algorithm=engine_algorithms[0], engine=engine,
                    mode="session", mutations=mutations,
                )
            )
        for storage in storages:
            mutation_configs.append(
                Config(
                    algorithm=presets[0], storage=storage,
                    mode="session", mutations=mutations,
                )
            )
        for config in dict.fromkeys(mutation_configs):
            try:
                finding = run_mutation_config(
                    case.query, case.data, config, match_limit
                )
            except Exception as exc:  # noqa: BLE001 — any crash is a finding
                divergences.append(
                    Divergence(
                        kind="crash",
                        detail=(
                            f"{config.label()} raised "
                            f"{type(exc).__name__}: {exc}"
                        ),
                        record=_record("crash", config),
                        query=case.query,
                        data=case.data,
                        seed=case.seed,
                        planted=case.planted,
                    )
                )
                continue
            if finding is not None:
                kind, detail = finding
                divergences.append(
                    Divergence(
                        kind=kind,
                        detail=f"{config.label()}: {detail}",
                        record=_record(kind, config),
                        query=case.query,
                        data=case.data,
                        seed=case.seed,
                        planted=case.planted,
                    )
                )

    return divergences


def _bruteforce_feasible(query: Graph, data: Graph, budget: int) -> bool:
    """Whether the label-restricted assignment space fits the budget."""
    total = 1
    for u in query.vertices():
        total *= max(1, data.label_frequency(query.label(u)))
        if total > budget:
            return False
    return True


def _metamorphic_violation(
    query: Graph,
    data: Graph,
    config: Config,
    transform: str,
    seed: int,
    match_limit: int,
    base: Optional[Outcome] = None,
) -> Optional[str]:
    """Check one transform invariant; returns the violation (or None).

    * ``relabel``: counts and embedding sets identical;
    * ``renumber``: counts identical, embedding set maps through the
      permutation, and the *query* fingerprint is renumbering-invariant;
    * ``edge_shuffle``: the rebuilt graphs compare equal and the
      embedding lists are byte-identical.
    """
    if base is None:
        base = run_config(query, data, config, match_limit)
    q2, d2, perm = apply_transform(transform, query, data, seed)
    after = run_config(q2, d2, config, match_limit)
    if base.capped or after.capped:
        return None
    if transform == "relabel":
        if base.count != after.count:
            return f"count changed {base.count} -> {after.count}"
        if base.emb_set != after.emb_set:
            return "embedding set changed under label permutation"
    elif transform == "renumber":
        assert perm is not None
        if query_fingerprint(query) != query_fingerprint(
            renumbered_query(query, seed)
        ):
            return "query fingerprint not renumbering-invariant"
        if base.count != after.count:
            return f"count changed {base.count} -> {after.count}"
        mapped = frozenset(
            tuple(perm[v] for v in emb) for emb in base.emb_set
        )
        if mapped != after.emb_set:
            return "embedding set does not map through the permutation"
    elif transform == "edge_shuffle":
        if q2 != query or d2 != data:
            return "edge-shuffled graph does not compare equal"
        if base.emb_list != after.emb_list:
            return "embedding order changed under edge shuffle"
    return None


def renumbered_query(query: Graph, seed: int) -> Graph:
    """The query under a seeded vertex renumbering (fingerprint probe)."""
    from repro.qa.generator import renumber_vertices

    return renumber_vertices(query, seed)[0]


# ----------------------------------------------------------------------
# Replaying a recorded divergence on (possibly mutated) graphs
# ----------------------------------------------------------------------


def divergence_reproduces(record: Dict, query: Graph, data: Graph) -> bool:
    """Re-execute the comparison described by ``record`` on fresh graphs.

    This is the single predicate behind both the shrinker (does the
    divergence survive this deletion?) and corpus replay (is this
    historical bug still fixed?). Any configuration that *crashes* counts
    as reproducing for ``kind="crash"`` and as reproducing for every
    other kind too — a shrink step must never turn a miscount into a
    crash and be declared "fixed".
    """
    kind = record["kind"]
    config_a = Config.from_dict(record["config_a"])
    match_limit = int(record.get("match_limit") or DEFAULT_MATCH_LIMIT)

    if kind == "crash":
        try:
            if config_a.mutations:
                run_mutation_config(query, data, config_a, match_limit)
            else:
                run_config(query, data, config_a, match_limit)
        except Exception:  # noqa: BLE001
            return True
        return False

    try:
        if kind in MUTATION_KINDS:
            # The mutation differential is self-contained: any of its
            # three cross-checks firing (on any batch) counts as
            # reproducing, so a shrink step that morphs e.g. a
            # mutation_mismatch into candidate_drift is never declared
            # "fixed".
            return run_mutation_config(query, data, config_a, match_limit) \
                is not None

        if kind == "invalid_embedding":
            outcome = run_config(query, data, config_a, match_limit)
            return any(
                not verify_embedding(query, data, emb)
                for emb in outcome.emb_list
            )

        if kind == "metamorphic_mismatch":
            transform = record["transform"]
            return (
                _metamorphic_violation(
                    query, data, config_a,
                    transform["name"], int(transform["seed"]), match_limit,
                )
                is not None
            )

        if kind == "missing_planted":
            # The planted tuple does not survive shrinking (vertex ids
            # shift), so replay against an independent reference: the
            # algorithm must produce exactly the oracle's match set.
            reference = Config(
                mode="bruteforce"
                if config_a.mode == "vf2"
                or _bruteforce_feasible(query, data, 200_000)
                else "vf2"
            )
            a = run_config(query, data, config_a, match_limit)
            b = run_config(query, data, reference, match_limit)
            return _outcomes_differ(a, b) is not None

        # count/set/oracle/session mismatches: rerun both sides.
        config_b = Config.from_dict(record["config_b"])
        a = run_config(query, data, config_a, match_limit)
        b = run_config(query, data, config_b, match_limit)
        if kind == "session_mismatch":
            if a.repeat_list is not None and a.emb_list != a.repeat_list:
                return True
            return a.emb_list != b.emb_list
        return _outcomes_differ(a, b) is not None
    except Exception:  # noqa: BLE001 — shrink must not mask a crash
        return True

"""The seeded, time-boxed fuzz loop behind ``repro fuzz``.

Each iteration derives an independent case seed, generates a planted
workload (:func:`repro.qa.generator.plant_case`), runs the differential
matrix (:func:`repro.qa.differential.run_case`), and — on any divergence
— shrinks the case (:func:`repro.qa.shrink.shrink_case`) and writes a
replayable JSON repro into the corpus directory. Wholly deterministic
given ``(cases, seed)``; the time box only decides how far the loop gets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.qa.corpus import iter_corpus, make_record, replay_repro, save_repro
from repro.qa.differential import Divergence, run_case
from repro.qa.generator import plant_case, plant_mutation_script
from repro.qa.shrink import shrink_case

__all__ = ["FuzzReport", "run_fuzz", "replay_corpus"]

#: Case seeds are spread with the same multiplier the query-set generator
#: uses, so independent fuzz runs with nearby base seeds do not overlap.
SEED_STRIDE = 1_000_003


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    cases_requested: int
    cases_run: int = 0
    elapsed_seconds: float = 0.0
    #: True when the ``max_seconds`` box stopped the loop early.
    time_boxed: bool = False
    divergences: List[Divergence] = field(default_factory=list)
    #: Repro files written (shrunk), in discovery order.
    repro_files: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether the run finished without a single divergence."""
        return not self.divergences

    def summary(self) -> str:
        status = "clean" if self.clean else f"{len(self.divergences)} divergence(s)"
        boxed = " (time-boxed)" if self.time_boxed else ""
        return (
            f"fuzz seed={self.seed}: {self.cases_run}/{self.cases_requested} "
            f"cases in {self.elapsed_seconds:.1f}s{boxed} — {status}"
        )


def run_fuzz(
    cases: int = 200,
    seed: int = 0,
    max_seconds: Optional[float] = None,
    corpus_dir: Optional[str] = None,
    shrink: bool = True,
    shrink_seconds: float = 30.0,
    max_failures: int = 10,
    case_options: Optional[Dict] = None,
    run_options: Optional[Dict] = None,
    mutate: bool = False,
) -> FuzzReport:
    """Fuzz ``cases`` planted workloads; returns the full report.

    Parameters
    ----------
    cases:
        Number of planted cases to generate and differentially run.
    seed:
        Base seed; case ``i`` uses ``seed * SEED_STRIDE + i``.
    max_seconds:
        Wall-clock box for the whole loop (``None`` = unbounded). The
        case in flight finishes; no new case starts past the box.
    corpus_dir:
        Where shrunk repro files are written (``None`` = don't write).
    shrink, shrink_seconds:
        Minimize failing cases (each within its own time budget).
    max_failures:
        Stop after this many divergent *cases* — a systematic bug fails
        every case, and thousands of copies of it help nobody.
    case_options / run_options:
        Extra keyword arguments forwarded to
        :func:`~repro.qa.generator.plant_case` and
        :func:`~repro.qa.differential.run_case`.
    mutate:
        Also exercise the mutation axis: each case gets a seeded
        mutation script (:func:`~repro.qa.generator.plant_mutation_script`)
        and the mutate-then-match differential runs after every batch.
        An explicit ``run_options["mutations"]`` wins over the generated
        script.
    """
    start = time.perf_counter()
    report = FuzzReport(seed=seed, cases_requested=cases)
    case_options = dict(case_options or {})
    run_options = dict(run_options or {})
    failing_cases = 0

    for i in range(cases):
        if max_seconds is not None and time.perf_counter() - start > max_seconds:
            report.time_boxed = True
            break
        case_seed = seed * SEED_STRIDE + i
        case = plant_case(case_seed, **case_options)
        options = run_options
        if mutate and "mutations" not in options:
            options = dict(options, mutations=plant_mutation_script(case))
        divergences = run_case(case, **options)
        report.cases_run += 1
        if not divergences:
            continue

        failing_cases += 1
        report.divergences.extend(divergences)
        if corpus_dir is not None:
            for j, divergence in enumerate(divergences):
                path = _write_repro(
                    corpus_dir, divergence, j,
                    shrink=shrink, shrink_seconds=shrink_seconds,
                )
                report.repro_files.append(path)
        if failing_cases >= max_failures:
            break

    report.elapsed_seconds = time.perf_counter() - start
    return report


def _write_repro(
    corpus_dir: str,
    divergence: Divergence,
    index: int,
    shrink: bool,
    shrink_seconds: float,
) -> str:
    """Shrink one divergence and persist it as a corpus JSON file."""
    query, data = divergence.query, divergence.data
    if shrink:
        query, data, _ = shrink_case(
            divergence.record, query, data, max_seconds=shrink_seconds
        )
    record = make_record(
        kind=divergence.kind,
        query=query,
        data=data,
        config_a=divergence.record["config_a"],
        config_b=divergence.record.get("config_b"),
        transform=divergence.record.get("transform"),
        seed=divergence.seed,
        detail=divergence.detail,
        # The planted tuple refers to pre-shrink vertex ids; only keep it
        # when the data graph was not reduced.
        planted=(
            divergence.planted
            if data.num_vertices == divergence.data.num_vertices
            else None
        ),
    )
    suffix = f"-{index}" if index else ""
    name = f"repro-{divergence.kind}-{divergence.seed}{suffix}.json"
    return save_repro(f"{corpus_dir.rstrip('/')}/{name}", record)


def replay_corpus(directory: str) -> List[Tuple[str, bool]]:
    """Replay every repro in ``directory``; returns (path, reproduces).

    ``reproduces=True`` means the historical divergence is back (a
    regression); a healthy tree replays every file ``False``.
    """
    return [
        (path, replay_repro(record)) for path, record in iter_corpus(directory)
    ]

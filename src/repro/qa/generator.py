"""Planted-embedding workload generation and metamorphic transforms.

A fuzz case needs ground truth. Random (query, data) pairs mostly have
*zero* matches, which exercises nothing and verifies nothing. Instead we
**plant** a known query inside a random RMAT/Erdős–Rényi background: pick
host vertices, overwrite their labels with the query's, and add the
query's edges between them. The planted assignment is then a genuine
embedding by construction (Definition 2.1 holds edge by edge), so every
algorithm must report at least one match and the planted tuple must be in
its match set — an expected-*minimum* oracle that needs no reference run.

The metamorphic transforms encode invariants every correct matcher obeys:

* ``relabel`` — a bijective permutation of the label alphabet applied to
  query and data together preserves counts and embeddings exactly;
* ``renumber`` — a permutation of data vertex ids preserves counts and
  maps embeddings through the permutation (and the query fingerprint of a
  renumbered *query* is unchanged, per :mod:`repro.graph.fingerprint`);
* ``edge_shuffle`` — re-presenting a graph's edge list in a different
  order builds an equal :class:`~repro.graph.graph.Graph` (CSR is
  canonical), so results must be byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.dynamic.mutations import (
    ADD_EDGE,
    ADD_VERTEX,
    REMOVE_EDGE,
    Mutation,
    MutationScript,
)
from repro.graph.generators import erdos_renyi_graph, rmat_graph
from repro.graph.graph import Graph
from repro.graph.ops import connected

__all__ = [
    "PlantedCase",
    "plant_case",
    "plant_mutation_script",
    "random_query",
    "TRANSFORMS",
    "apply_transform",
    "renumber_vertices",
    "permute_label_alphabet",
    "shuffle_edges",
]

#: Names of the metamorphic transforms :func:`apply_transform` accepts.
TRANSFORMS: Tuple[str, ...] = ("relabel", "renumber", "edge_shuffle")


@dataclass(frozen=True)
class PlantedCase:
    """One fuzz case: a query known to occur in the data graph.

    ``planted[u]`` is the data vertex hosting query vertex ``u``; it is a
    valid embedding by construction, so ``num_matches >= 1`` and
    ``planted`` must appear in every algorithm's match set.
    """

    seed: int
    query: Graph
    data: Graph
    planted: Tuple[int, ...]
    num_labels: int

    def __repr__(self) -> str:
        return (
            f"PlantedCase(seed={self.seed}, q={self.query.num_vertices}v/"
            f"{self.query.num_edges}e, g={self.data.num_vertices}v/"
            f"{self.data.num_edges}e)"
        )


def random_query(
    rng: np.random.Generator, num_vertices: int, num_labels: int
) -> Graph:
    """A random connected labeled query: spanning tree plus extra edges."""
    labels = rng.integers(0, num_labels, size=num_vertices).tolist()
    edges = set()
    for v in range(1, num_vertices):
        parent = int(rng.integers(0, v))
        edges.add((parent, v))
    for _ in range(int(rng.integers(0, num_vertices + 1))):
        u = int(rng.integers(0, num_vertices))
        v = int(rng.integers(0, num_vertices))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    query = Graph(labels=labels, edges=sorted(edges))
    assert connected(query)
    return query


def plant_case(
    seed: int,
    min_query: int = 3,
    max_query: int = 6,
    min_data: int = 12,
    max_data: int = 40,
    num_labels: Optional[int] = None,
) -> PlantedCase:
    """Build one fully deterministic planted-embedding case from ``seed``.

    The background is RMAT or Erdős–Rényi (chosen by the seed); the hosts
    are distinct background vertices whose labels are overwritten with the
    query's, and the query's edges are added between them (duplicates with
    background edges collapse in the Graph constructor).
    """
    rng = np.random.default_rng(seed)
    nq = int(rng.integers(min_query, max_query + 1))
    labels = (
        int(rng.integers(3, 6)) if num_labels is None else int(num_labels)
    )
    query = random_query(rng, nq, labels)

    nd = int(rng.integers(max(min_data, nq), max_data + 1))
    degree = float(rng.uniform(2.0, 5.0))
    background_seed = int(rng.integers(0, 2**31))
    if rng.random() < 0.5:
        background = erdos_renyi_graph(nd, degree, labels, seed=background_seed)
    else:
        background = rmat_graph(nd, degree, labels, seed=background_seed)

    hosts = rng.choice(nd, size=nq, replace=False)
    data_labels = background.labels.tolist()
    for u in query.vertices():
        data_labels[int(hosts[u])] = query.label(u)
    data_edges = list(background.edges())
    for u, v in query.edges():
        data_edges.append((int(hosts[u]), int(hosts[v])))
    data = Graph(labels=data_labels, edges=data_edges)

    return PlantedCase(
        seed=seed,
        query=query,
        data=data,
        planted=tuple(int(h) for h in hosts),
        num_labels=labels,
    )


def plant_mutation_script(
    case: PlantedCase,
    num_batches: int = 3,
    seed: Optional[int] = None,
) -> MutationScript:
    """A seeded mutation script with a planted post-mutation embedding.

    The leading batches churn the background — random edge inserts,
    removals of existing edges (the planted embedding's edges included,
    so deletion cascades are exercised), and attached fresh vertices.
    The **final batch plants a brand-new copy of the query** on freshly
    added vertices, so after the whole script runs the graph is
    guaranteed to contain at least one embedding that exists *only*
    because of the mutations — the addition cascade the incremental
    candidate maintenance must propagate from nothing.

    Ground truth for the script is differential (incremental vs
    from-scratch rebuild after every batch), so the churn batches are
    unconstrained; the planted final batch just guarantees the
    interesting direction is never vacuously empty.
    """
    rng = np.random.default_rng(
        case.seed * 7919 + 11 if seed is None else seed
    )
    n = case.data.num_vertices
    edges = set(case.data.edges())
    script: List[Tuple[Mutation, ...]] = []

    for _ in range(max(0, num_batches - 1)):
        batch: List[Mutation] = []
        for _ in range(int(rng.integers(2, 6))):
            roll = rng.random()
            if roll < 0.45:
                u = int(rng.integers(0, n))
                v = int(rng.integers(0, n))
                if u != v:
                    edge = (min(u, v), max(u, v))
                    batch.append(Mutation(ADD_EDGE, *edge))
                    edges.add(edge)
            elif roll < 0.80 and edges:
                edge = sorted(edges)[int(rng.integers(0, len(edges)))]
                batch.append(Mutation(REMOVE_EDGE, *edge))
                edges.discard(edge)
            else:
                label = int(rng.integers(0, case.num_labels))
                anchor = int(rng.integers(0, n))
                batch.append(Mutation(ADD_VERTEX, label))
                batch.append(Mutation(ADD_EDGE, anchor, n))
                edges.add((anchor, n))
                n += 1
        script.append(tuple(batch))

    final: List[Mutation] = []
    hosts: List[int] = []
    for u in case.query.vertices():
        final.append(Mutation(ADD_VERTEX, case.query.label(u)))
        hosts.append(n)
        n += 1
    for u, v in case.query.edges():
        final.append(Mutation(ADD_EDGE, hosts[u], hosts[v]))
    script.append(tuple(final))
    return tuple(script)


# ----------------------------------------------------------------------
# Metamorphic transforms
# ----------------------------------------------------------------------


def renumber_vertices(graph: Graph, seed: int) -> Tuple[Graph, List[int]]:
    """Permute vertex ids; returns the new graph and ``perm`` (old → new).

    The renumbered graph is isomorphic to the input, so match *counts*
    are invariant and embeddings into it are the originals mapped through
    ``perm``.
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(graph.num_vertices).tolist()
    labels = [0] * graph.num_vertices
    for v in graph.vertices():
        labels[perm[v]] = graph.label(v)
    edges = [(perm[u], perm[v]) for u, v in graph.edges()]
    return Graph(labels=labels, edges=edges), perm


def permute_label_alphabet(
    seed: int, query: Graph, data: Graph
) -> Tuple[Graph, Graph]:
    """Apply one bijective label permutation to query and data together.

    Matching only compares labels for equality, so counts and embeddings
    are exactly preserved.
    """
    alphabet = sorted(
        set(query.labels.tolist()) | set(data.labels.tolist())
    )
    rng = np.random.default_rng(seed)
    shuffled = list(alphabet)
    rng.shuffle(shuffled)
    mapping = dict(zip(alphabet, shuffled))
    return (
        query.relabeled([mapping[l] for l in query.labels.tolist()]),
        data.relabeled([mapping[l] for l in data.labels.tolist()]),
    )


def shuffle_edges(graph: Graph, seed: int) -> Graph:
    """Rebuild ``graph`` from a shuffled edge list (an equal graph).

    The CSR construction canonicalizes edge order, so the result compares
    equal to the input and every downstream result must be byte-identical.
    """
    rng = np.random.default_rng(seed)
    edges = list(graph.edges())
    rng.shuffle(edges)
    edges = [(v, u) if rng.random() < 0.5 else (u, v) for u, v in edges]
    return Graph(labels=graph.labels.tolist(), edges=edges)


def apply_transform(
    name: str, query: Graph, data: Graph, seed: int
) -> Tuple[Graph, Graph, Optional[List[int]]]:
    """Apply the named transform; returns (query', data', data_perm).

    ``data_perm`` is the old → new data-vertex permutation for
    ``"renumber"`` (used to map expected embeddings) and ``None`` for the
    transforms that leave vertex ids alone.
    """
    if name == "relabel":
        q2, d2 = permute_label_alphabet(seed, query, data)
        return q2, d2, None
    if name == "renumber":
        d2, perm = renumber_vertices(data, seed)
        return query, d2, perm
    if name == "edge_shuffle":
        return shuffle_edges(query, seed), shuffle_edges(data, seed + 1), None
    raise ValueError(f"unknown transform {name!r}; known: {TRANSFORMS}")

"""Case minimization: shrink a failing pair while the divergence holds.

A fuzz finding on a 40-vertex background is a chore to debug; the same
divergence on 8 vertices is usually obvious. The shrinker is a greedy
delta-debugger over three move classes, applied to fixpoint:

1. delete one **data vertex** (induced subgraph on the rest),
2. delete one **data edge**,
3. delete one **query vertex** (only while the query stays connected
   with ≥ 3 vertices, the framework's precondition).

Each move is kept iff :func:`repro.qa.differential.divergence_reproduces`
still fires on the mutated pair — the same predicate corpus replay uses,
so whatever the shrinker outputs is replayable by construction. Graph
immutability keeps this simple: every move builds a fresh
:class:`~repro.graph.graph.Graph`, and a rejected move costs nothing.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.graph.graph import Graph
from repro.graph.ops import connected
from repro.qa.differential import divergence_reproduces

__all__ = ["shrink_case"]


def _without_data_vertex(data: Graph, v: int) -> Graph:
    kept = [u for u in data.vertices() if u != v]
    return data.induced_subgraph(kept)[0]


def _without_edge(graph: Graph, drop: Tuple[int, int]) -> Graph:
    edges = [e for e in graph.edges() if e != drop]
    return Graph(labels=graph.labels.tolist(), edges=edges)


def _without_query_vertex(query: Graph, v: int) -> Optional[Graph]:
    if query.num_vertices <= 3:
        return None
    kept = [u for u in query.vertices() if u != v]
    shrunk = query.induced_subgraph(kept)[0]
    if not connected(shrunk):
        return None
    return shrunk


def shrink_case(
    record: Dict,
    query: Graph,
    data: Graph,
    max_seconds: Optional[float] = 30.0,
    max_rounds: int = 8,
) -> Tuple[Graph, Graph, int]:
    """Minimize ``(query, data)`` while ``record``'s divergence reproduces.

    Returns ``(query, data, moves_applied)``. The inputs are returned
    unchanged when the divergence does not reproduce on them (nothing to
    shrink against) or the time budget is exhausted immediately.
    """
    if not divergence_reproduces(record, query, data):
        return query, data, 0

    deadline = (
        time.perf_counter() + max_seconds if max_seconds is not None else None
    )

    def out_of_time() -> bool:
        return deadline is not None and time.perf_counter() > deadline

    applied = 0
    for _ in range(max_rounds):
        progressed = False

        # Pass 1: data vertices, highest id first so deletions do not
        # disturb the ids of vertices not yet tried this pass.
        v = data.num_vertices - 1
        while v >= 0 and data.num_vertices > 1:
            if out_of_time():
                return query, data, applied
            candidate = _without_data_vertex(data, v)
            if divergence_reproduces(record, query, candidate):
                data = candidate
                applied += 1
                progressed = True
            v -= 1

        # Pass 2: data edges.
        for edge in list(data.edges()):
            if out_of_time():
                return query, data, applied
            candidate = _without_edge(data, edge)
            if divergence_reproduces(record, query, candidate):
                data = candidate
                applied += 1
                progressed = True

        # Pass 3: query vertices (connectivity- and size-guarded).
        v = query.num_vertices - 1
        while v >= 0:
            if out_of_time():
                return query, data, applied
            candidate_q = _without_query_vertex(query, v)
            if candidate_q is not None and divergence_reproduces(
                record, candidate_q, data
            ):
                query = candidate_q
                applied += 1
                progressed = True
            v -= 1

        if not progressed:
            break
    return query, data, applied

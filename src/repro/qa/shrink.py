"""Case minimization: shrink a failing pair while the divergence holds.

A fuzz finding on a 40-vertex background is a chore to debug; the same
divergence on 8 vertices is usually obvious. The shrinker is a greedy
delta-debugger over four move classes, applied to fixpoint:

1. delete one **data vertex** (induced subgraph on the rest),
2. delete one **data edge**,
3. delete one **query vertex** (only while the query stays connected
   with ≥ 3 vertices, the framework's precondition),
4. for records carrying a mutation script, delete one **mutation
   batch**, then one **mutation op** — rewritten into
   ``record["config_a"]["mutations"]`` in place so the persisted corpus
   record carries the minimized script.

Each move is kept iff :func:`repro.qa.differential.divergence_reproduces`
still fires on the mutated pair — the same predicate corpus replay uses,
so whatever the shrinker outputs is replayable by construction. Graph
immutability keeps this simple: every move builds a fresh
:class:`~repro.graph.graph.Graph`, and a rejected move costs nothing.
Data-vertex deletions shift ids underneath a recorded script; replay
sanitizes out-of-range ops (:func:`repro.dynamic.sanitize_batch`), so
those moves stay sound on mutation records too.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.graph.graph import Graph
from repro.graph.ops import connected
from repro.qa.differential import divergence_reproduces

__all__ = ["shrink_case"]


def _without_data_vertex(data: Graph, v: int) -> Graph:
    kept = [u for u in data.vertices() if u != v]
    return data.induced_subgraph(kept)[0]


def _without_edge(graph: Graph, drop: Tuple[int, int]) -> Graph:
    edges = [e for e in graph.edges() if e != drop]
    return Graph(labels=graph.labels.tolist(), edges=edges)


def _without_query_vertex(query: Graph, v: int) -> Optional[Graph]:
    if query.num_vertices <= 3:
        return None
    kept = [u for u in query.vertices() if u != v]
    shrunk = query.induced_subgraph(kept)[0]
    if not connected(shrunk):
        return None
    return shrunk


def shrink_case(
    record: Dict,
    query: Graph,
    data: Graph,
    max_seconds: Optional[float] = 30.0,
    max_rounds: int = 8,
) -> Tuple[Graph, Graph, int]:
    """Minimize ``(query, data)`` while ``record``'s divergence reproduces.

    Returns ``(query, data, moves_applied)``. The inputs are returned
    unchanged when the divergence does not reproduce on them (nothing to
    shrink against) or the time budget is exhausted immediately.
    """
    if not divergence_reproduces(record, query, data):
        return query, data, 0

    deadline = (
        time.perf_counter() + max_seconds if max_seconds is not None else None
    )

    def out_of_time() -> bool:
        return deadline is not None and time.perf_counter() > deadline

    applied = 0
    for _ in range(max_rounds):
        progressed = False

        # Pass 1: data vertices, highest id first so deletions do not
        # disturb the ids of vertices not yet tried this pass.
        v = data.num_vertices - 1
        while v >= 0 and data.num_vertices > 1:
            if out_of_time():
                return query, data, applied
            candidate = _without_data_vertex(data, v)
            if divergence_reproduces(record, query, candidate):
                data = candidate
                applied += 1
                progressed = True
            v -= 1

        # Pass 2: data edges.
        for edge in list(data.edges()):
            if out_of_time():
                return query, data, applied
            candidate = _without_edge(data, edge)
            if divergence_reproduces(record, query, candidate):
                data = candidate
                applied += 1
                progressed = True

        # Pass 3: query vertices (connectivity- and size-guarded).
        v = query.num_vertices - 1
        while v >= 0:
            if out_of_time():
                return query, data, applied
            candidate_q = _without_query_vertex(query, v)
            if candidate_q is not None and divergence_reproduces(
                record, candidate_q, data
            ):
                query = candidate_q
                applied += 1
                progressed = True
            v -= 1

        # Pass 4: mutation script (whole batches, then single ops). The
        # script lives in the record's JSON form; accepted moves rewrite
        # it in place so the divergence object — and any corpus file
        # written from it — carries the minimized script.
        moves, timed_out = _shrink_mutations(record, query, data, out_of_time)
        applied += moves
        progressed = progressed or moves > 0
        if timed_out:
            return query, data, applied

        if not progressed:
            break
    return query, data, applied


def _shrink_mutations(
    record: Dict,
    query: Graph,
    data: Graph,
    out_of_time,
) -> Tuple[int, bool]:
    """One greedy pass over ``record``'s mutation script.

    Returns ``(accepted_moves, timed_out)``. No-op for records without
    a script (the static axes).
    """
    config = record.get("config_a") or {}
    script = config.get("mutations")
    if not script:
        return 0, False
    applied = 0

    # Whole batches, last first (later batches usually depend on ids the
    # earlier ones created, so dropping from the tail succeeds more).
    i = len(script) - 1
    while i >= 0 and len(script) > 1:
        if out_of_time():
            return applied, True
        candidate = script[:i] + script[i + 1:]
        config["mutations"] = candidate
        if divergence_reproduces(record, query, data):
            script = candidate
            applied += 1
        else:
            config["mutations"] = script
        i -= 1

    # Single ops within each surviving batch.
    for bi in range(len(script)):
        oj = len(script[bi]) - 1
        while oj >= 0:
            if out_of_time():
                return applied, True
            batch = script[bi][:oj] + script[bi][oj + 1:]
            candidate = script[:bi] + [batch] + script[bi + 1:]
            config["mutations"] = candidate
            if divergence_reproduces(record, query, data):
                script = candidate
                applied += 1
            else:
                config["mutations"] = script
            oj -= 1
    return applied, False

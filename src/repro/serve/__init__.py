"""Matching-as-a-service: a concurrent multi-tenant serving tier.

This package turns the library's query-compilation layer
(:class:`~repro.core.session.MatchSession`) into a long-running service:
named resident data graphs, per-tenant session pools, admission control
with per-request deadlines and bounded-queue backpressure, coalescing of
identical in-flight queries, and an asyncio JSON-lines front-end — all
observable through ``serve.*`` counters in the :mod:`repro.obs`
currency.

Layering::

    MatchServer   (asyncio sockets; server.py)
        │  asyncio.wrap_future
    MatchService  (admission, coalescing, deadlines; service.py)
        │  one per (tenant, graph)
    MatchSession  (plan/prep caches; core/session.py — thread-safe)
        │
    engines + kernels

Start one from the command line with ``repro serve`` (see
:mod:`repro.cli`), or embed :class:`MatchService` directly for
in-process serving — the concurrency test suite under
``tests/concurrency/`` exercises it that way, on a
:class:`FakeClock`, with no sockets and no sleeps.
"""

from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServeError,
    ServiceClosedError,
    UnknownGraphError,
)
from repro.serve.clock import Clock, FakeClock, SystemClock
from repro.serve.server import MatchServer
from repro.serve.service import MatchService, ServeResponse

__all__ = [
    "MatchService",
    "MatchServer",
    "ServeResponse",
    "Clock",
    "SystemClock",
    "FakeClock",
    "ServeError",
    "UnknownGraphError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServiceClosedError",
]

"""Injectable clocks for the serving tier.

Admission control and deadline accounting in :mod:`repro.serve.service`
read time exclusively through a :class:`Clock`, so the concurrency test
suite can drive every deadline scenario deterministically with a
:class:`FakeClock` — no test ever sleeps on the wall clock to "wait for"
a budget to expire.

The clock is monotonic seconds (``time.monotonic`` semantics): only
differences are meaningful, the epoch is arbitrary. Engine-internal
enumeration budgets (``time_limit``) still run on the real wall clock —
the service maps a request's *remaining* budget onto them at execution
start, which is the only point where the two time bases meet.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Clock", "SystemClock", "FakeClock"]


class Clock:
    """Minimal monotonic-clock interface: ``now() -> float`` seconds."""

    def now(self) -> float:
        raise NotImplementedError


class SystemClock(Clock):
    """The real monotonic clock (production default)."""

    def now(self) -> float:
        return time.monotonic()


class FakeClock(Clock):
    """A manually advanced clock for deterministic deadline tests.

    Thread-safe: the service reads it from worker threads while the test
    advances it from the main thread.

    >>> clock = FakeClock()
    >>> clock.now()
    0.0
    >>> clock.advance(2.5)
    >>> clock.now()
    2.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        with self._lock:
            self._now += float(seconds)

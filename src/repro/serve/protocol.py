"""JSON-lines wire protocol for the matching service.

One request per line, one response per line, UTF-8 JSON. The protocol is
deliberately transport-dumb — framing is ``\\n``, no versioned envelope,
no streaming — because the serving tier's interesting machinery
(admission, coalescing, deadlines) lives in
:class:`~repro.serve.service.MatchService`; the wire is just a way to
reach it from outside the process.

Request shape::

    {"op": "match", "id": 1, "graph": "social", "tenant": "alice",
     "query": {"labels": [0, 1, 0], "edges": [[0, 1], [1, 2]]},
     "algorithm": "GQL", "budget_ms": 500, "match_limit": 1000,
     "include_embeddings": false}

Ops: ``match``, ``add_graph`` (inline graph payload), ``graphs``,
``stats``, ``ping``. Responses always carry ``ok`` (bool) and echo
``id`` when the request had one; failures carry ``error`` (message) and
``code`` (the :mod:`repro.errors` class name, e.g. ``"QueueFullError"``).

This module is transport-independent: it only maps dicts/lines to and
from domain objects, so the asyncio server and any test client share one
implementation.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import GraphFormatError
from repro.graph.graph import Graph
from repro.serve.service import ServeResponse

__all__ = [
    "graph_to_payload",
    "graph_from_payload",
    "parse_request",
    "encode_response",
    "error_response",
    "match_response",
]


def graph_to_payload(graph: Graph) -> Dict[str, Any]:
    """A JSON-safe dict for ``graph``: vertex labels plus an edge list."""
    return {
        "labels": [int(graph.label(v)) for v in range(graph.num_vertices)],
        "edges": [[int(u), int(v)] for u, v in graph.edges()],
    }


def graph_from_payload(payload: Any) -> Graph:
    """Rebuild a :class:`Graph` from :func:`graph_to_payload` output.

    Raises :class:`~repro.errors.GraphFormatError` on malformed input so
    wire errors surface as framework errors, not ``KeyError`` noise.
    """
    if not isinstance(payload, dict):
        raise GraphFormatError("graph payload must be an object")
    labels = payload.get("labels")
    edges = payload.get("edges")
    if not isinstance(labels, list) or not all(
        isinstance(x, int) for x in labels
    ):
        raise GraphFormatError("graph payload needs integer 'labels' list")
    if not isinstance(edges, list):
        raise GraphFormatError("graph payload needs 'edges' list")
    pairs = []
    for e in edges:
        if (
            not isinstance(e, (list, tuple))
            or len(e) != 2
            or not all(isinstance(x, int) for x in e)
        ):
            raise GraphFormatError(f"bad edge {e!r}: expected [u, v]")
        pairs.append((e[0], e[1]))
    return Graph(labels=labels, edges=pairs)


def parse_request(line: str) -> Dict[str, Any]:
    """Decode one request line into a dict with a validated ``op``."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise GraphFormatError("request must be a JSON object")
    op = payload.get("op")
    if op not in {"match", "add_graph", "mutate", "graphs", "stats", "ping"}:
        raise GraphFormatError(f"unknown op {op!r}")
    return payload


def encode_response(payload: Dict[str, Any]) -> bytes:
    """One response line, newline-terminated UTF-8."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def error_response(
    exc: BaseException, request_id: Optional[Any] = None
) -> Dict[str, Any]:
    """The failure payload: message plus the exception class as ``code``."""
    payload: Dict[str, Any] = {
        "ok": False,
        "error": str(exc) or type(exc).__name__,
        "code": type(exc).__name__,
    }
    if request_id is not None:
        payload["id"] = request_id
    return payload


def match_response(
    response: ServeResponse,
    request_id: Optional[Any] = None,
    include_embeddings: bool = False,
) -> Dict[str, Any]:
    """The success payload for a served match request."""
    payload: Dict[str, Any] = {
        "ok": True,
        "status": response.status,
        "graph": response.graph,
        "tenant": response.tenant,
        "coalesced": response.coalesced,
        "queue_ms": round(response.queue_seconds * 1000.0, 3),
        "total_ms": round(response.total_seconds * 1000.0, 3),
    }
    if response.epoch is not None:
        # Dynamic graphs only: the epoch whose snapshot the embeddings
        # are valid against (see ServeResponse.epoch).
        payload["epoch"] = response.epoch
    if request_id is not None:
        payload["id"] = request_id
    result = response.result
    if result is not None:
        payload["num_matches"] = result.num_matches
        payload["solved"] = result.solved
        payload["algorithm"] = result.algorithm
        payload["engine"] = result.engine
        payload["kernel"] = result.kernel
        if include_embeddings:
            payload["embeddings"] = [
                list(embedding) for embedding in result.embeddings
            ]
    return payload

"""Asyncio front-end for :class:`~repro.serve.service.MatchService`.

The split of labor: asyncio owns the sockets (accept, read lines, write
lines — thousands of idle connections are cheap), the service's thread
pool owns the CPU-bound matching. The bridge is
``asyncio.wrap_future`` over the ``concurrent.futures.Future`` that
``MatchService.submit`` returns, so the event loop never blocks on an
enumeration — slow queries on one connection do not stall pings on
another.

Admission failures (queue full, spent budget, unknown graph, invalid
query) raise synchronously in ``submit``; the handler converts them to
error payloads with the exception class name as ``code``, which is how a
remote client distinguishes backpressure (retry later) from a bad
request (don't).

Usage::

    service = MatchService(workers=4)
    service.add_graph("default", data)
    server = MatchServer(service, host="127.0.0.1", port=7437)
    asyncio.run(server.serve_forever())

Tests bind ``port=0`` and read the chosen port from
:attr:`MatchServer.port` after :meth:`MatchServer.start`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.errors import GraphFormatError, ReproError
from repro.obs import span
from repro.serve import protocol
from repro.serve.service import MatchService

__all__ = ["MatchServer"]

#: Generous per-line cap: a request line holds at most a small query
#: graph (or an ``add_graph`` payload), never a data graph of real size.
_MAX_LINE_BYTES = 16 * 1024 * 1024


class MatchServer:
    """A JSON-lines TCP server over one :class:`MatchService`."""

    def __init__(
        self,
        service: MatchService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when 0."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=_MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Per-connection loop
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                payload = await self._dispatch(text)
                writer.write(protocol.encode_response(payload))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            # Fire-and-forget close: awaiting wait_closed() here would be
            # cancelled (and raise) when the loop tears down mid-handler.
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, text: str) -> Dict[str, Any]:
        request_id: Any = None
        try:
            request = protocol.parse_request(text)
            request_id = request.get("id")
            op = request["op"]
            with span("serve.request", op=op):
                if op == "ping":
                    return self._ok(request_id, pong=True)
                if op == "graphs":
                    return self._ok(request_id, graphs=self.service.graphs())
                if op == "stats":
                    return self._ok(request_id, stats=self.service.stats())
                if op == "add_graph":
                    return self._handle_add_graph(request, request_id)
                if op == "mutate":
                    return await self._handle_mutate(request, request_id)
                return await self._handle_match(request, request_id)
        except ReproError as exc:
            return protocol.error_response(exc, request_id)
        except Exception as exc:  # keep the connection alive on bugs too
            return protocol.error_response(exc, request_id)

    @staticmethod
    def _ok(request_id: Any, **fields: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"ok": True}
        payload.update(fields)
        if request_id is not None:
            payload["id"] = request_id
        return payload

    def _handle_add_graph(
        self, request: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        name = request.get("name")
        if not isinstance(name, str) or not name:
            raise GraphFormatError("add_graph needs a non-empty 'name'")
        graph = protocol.graph_from_payload(request.get("graph"))
        self.service.add_graph(name, graph, dynamic=bool(request.get("dynamic")))
        return self._ok(
            request_id,
            name=name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        )

    async def _handle_mutate(
        self, request: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        mutations = request.get("mutations")
        if not isinstance(mutations, list):
            raise GraphFormatError("mutate needs a 'mutations' list")
        # The apply + session fan-out is CPU work (snapshot rebuild,
        # subscription re-enumeration) — keep it off the event loop.
        outcome = await asyncio.to_thread(
            self.service.mutate, request.get("graph", "default"), mutations
        )
        return self._ok(
            request_id,
            graph=outcome.graph,
            epoch=outcome.epoch,
            added_edges=len(outcome.delta.added_edges),
            removed_edges=len(outcome.delta.removed_edges),
            added_vertices=len(outcome.delta.added_vertices),
        )

    async def _handle_match(
        self, request: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        query = protocol.graph_from_payload(request.get("query"))
        budget_ms = request.get("budget_ms")
        budget = budget_ms / 1000.0 if budget_ms is not None else None
        submit_kwargs: Dict[str, Any] = {
            "graph": request.get("graph", "default"),
            "tenant": request.get("tenant", "public"),
            "budget": budget,
        }
        for key in ("algorithm", "kernel", "engine"):
            if request.get(key) is not None:
                submit_kwargs[key] = request[key]
        if "match_limit" in request:
            submit_kwargs["match_limit"] = request["match_limit"]
        if "store_limit" in request:
            submit_kwargs["store_limit"] = request["store_limit"]
        future = self.service.submit(query, **submit_kwargs)
        response = await asyncio.wrap_future(future)
        return protocol.match_response(
            response,
            request_id,
            include_embeddings=bool(request.get("include_embeddings")),
        )

"""Matching-as-a-service: the concurrent multi-tenant serving core.

The paper's study loop is one process running one query at a time; the
serving regime this repository grows toward is many tenants hammering a
few long-lived resident graphs. :class:`MatchService` is that tier,
built directly on the layers below it:

* **named resident graphs** — registered once, served forever (the
  Engram/mnemon shape: the graph is the database);
* **per-tenant session pools** — one thread-safe
  :class:`~repro.core.session.MatchSession` per ``(tenant, graph)``, so
  every tenant amortizes its own plan/prep caches without cross-tenant
  interference in cache occupancy;
* **admission control** — a bounded pending queue (`max_queue_depth`)
  that rejects with :class:`~repro.errors.QueueFullError` *immediately*
  instead of blocking (backpressure), and per-request budgets that
  reject spent requests with
  :class:`~repro.errors.DeadlineExceededError` before they enqueue;
* **deadline propagation** — a request's remaining budget at execution
  start becomes the engine's ``time_limit``, and a ``cancel`` hook
  polled between the frame machine's leaf batches aborts enumerations
  whose deadline (or whose server) died mid-flight;
* **request coalescing** — identical in-flight queries (same graph,
  config and *exact* query graph, so embeddings are byte-identical)
  share one execution: the first becomes the leader, later arrivals
  attach as waiters and all futures resolve from the single result;
* **observability** — ``serve.*`` counters and phase timings in the
  :mod:`repro.obs` currency, exposed via :attr:`MatchService.metrics`
  and :meth:`MatchService.stats`.

All time is read through an injectable :class:`~repro.serve.clock.Clock`
so the concurrency suite drives deadlines deterministically.

Usage::

    with MatchService(workers=4, max_queue_depth=64) as service:
        service.add_graph("social", data)
        future = service.submit(query, graph="social", tenant="alice",
                                budget=0.5)
        response = future.result()
        response.result.num_matches

Counter glossary (``service.metrics.counters``):

``serve.requests``              every submit attempt
``serve.admitted``              requests that entered the queue (incl. coalesced)
``serve.coalesced``             requests attached to an in-flight execution
``serve.executed``              actual session.match executions
``serve.completed``             responses delivered with a result
``serve.expired``               admitted requests whose deadline passed before
                                execution started (no enumeration ran)
``serve.unsolved``              executions stopped by deadline/cancel mid-flight
``serve.errors``                executions that raised
``serve.rejected_queue_full``   backpressure rejections at admission
``serve.rejected_deadline``     spent-budget rejections at admission
``serve.rejected_unknown_graph``/``serve.rejected_invalid``
                                admission rejections for bad requests
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.plan import AlgorithmLike, KernelLike, validate_query
from repro.core.result import MatchResult
from repro.core.session import MatchSession
from repro.dynamic.mutations import Mutation
from repro.dynamic.overlay import DynamicGraph, MutationDelta
from repro.dynamic.subscribe import SubscriptionUpdate
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    InvalidQueryError,
    QueueFullError,
    ServiceClosedError,
    UnknownGraphError,
)
from repro.graph.graph import Graph
from repro.graph.store import GraphSource, as_graph
from repro.obs import Metrics, span
from repro.serve.clock import Clock, SystemClock

__all__ = ["MatchService", "ServeResponse", "ServiceMutation"]


@dataclass(frozen=True)
class ServiceMutation:
    """One applied mutation batch on a resident dynamic graph."""

    graph: str
    #: The graph epoch after the batch.
    epoch: int
    delta: MutationDelta
    #: Per-tenant subscription deltas (tenants with standing queries on
    #: this graph at mutation time).
    updates: Dict[str, Tuple[SubscriptionUpdate, ...]] = field(
        default_factory=dict
    )


@dataclass
class ServeResponse:
    """One served request's outcome plus its service-side timings."""

    #: ``"ok"`` (result attached) or ``"expired"`` (deadline passed while
    #: queued; no enumeration ran for this request).
    status: str
    tenant: str
    graph: str
    #: True when this request rode another request's execution.
    coalesced: bool
    #: Admission → execution start, in service-clock seconds.
    queue_seconds: float
    #: Admission → response, in service-clock seconds.
    total_seconds: float
    result: Optional[MatchResult] = None
    #: The graph epoch the execution ran against (dynamic graphs only) —
    #: the snapshot-isolation witness: every embedding in ``result`` is
    #: valid against exactly this epoch's snapshot.
    epoch: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class _Waiter:
    """One admitted request: its future, deadline and timestamps."""

    __slots__ = ("future", "tenant", "admitted_at", "deadline", "expired", "coalesced")

    def __init__(
        self,
        tenant: str,
        admitted_at: float,
        deadline: Optional[float],
        coalesced: bool,
    ) -> None:
        self.future: "Future[ServeResponse]" = Future()
        self.tenant = tenant
        self.admitted_at = admitted_at
        self.deadline = deadline
        self.expired = False
        self.coalesced = coalesced

    def is_past(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


@dataclass
class _Entry:
    """One execution: the leader's request plus every attached waiter."""

    key: Tuple
    query: Graph
    graph_name: str
    tenant: str
    algorithm: Optional[AlgorithmLike]
    kernel: Optional[KernelLike]
    engine: Optional[str]
    match_limit: Optional[int]
    store_limit: int
    waiters: List[_Waiter] = field(default_factory=list)
    #: Once True the entry left the in-flight map; no waiter may attach.
    closed: bool = False


class MatchService:
    """A thread-pool matching service over resident graphs and sessions.

    Parameters
    ----------
    workers:
        Executor threads running the CPU-bound matching. Under the GIL
        the win is latency overlap and coalescing, not parallel speedup.
    max_queue_depth:
        Maximum pending executions (queued + running). Admission beyond
        it raises :class:`~repro.errors.QueueFullError` immediately.
        Coalesced waiters piggyback on their leader's slot.
    default_budget:
        Budget in seconds applied to requests that bring none
        (``None`` = unbounded).
    coalesce:
        Share one execution among identical in-flight requests.
    algorithm / kernel / engine:
        Service-wide defaults, overridable per request.
    clock:
        Time source for admission and deadline bookkeeping (tests inject
        :class:`~repro.serve.clock.FakeClock`).
    plan_cache_size / prep_cache_size:
        Forwarded to each tenant session.
    n_workers:
        Intra-query parallelism forwarded to each tenant session (see
        :mod:`repro.parallel`): eligible big queries fan their
        enumeration out across this many worker *processes*, which is
        the real CPU scaling the GIL denies the thread pool. Request
        deadlines and shutdown cancellation propagate to the workers
        through a shared flag polled at the engines' leaf-batch stride.
        ``None`` defers to ``REPRO_WORKERS`` (absent → sequential).
    """

    def __init__(
        self,
        workers: int = 4,
        max_queue_depth: int = 64,
        default_budget: Optional[float] = None,
        coalesce: bool = True,
        algorithm: AlgorithmLike = "recommended",
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
        clock: Optional[Clock] = None,
        plan_cache_size: Optional[int] = 256,
        prep_cache_size: Optional[int] = 64,
        n_workers: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.default_budget = default_budget
        self.coalesce = coalesce
        self.algorithm = algorithm
        self.kernel = kernel
        self.engine = engine
        self.clock = clock if clock is not None else SystemClock()
        self._plan_cache_size = plan_cache_size
        self._prep_cache_size = prep_cache_size
        self.n_workers = n_workers

        self._graphs: Dict[str, Graph] = {}
        # Serializes mutation batches per dynamic graph (apply + fan-out
        # to tenant sessions must not interleave between two mutates).
        self._mutation_locks: Dict[str, threading.Lock] = {}
        self._sessions: Dict[Tuple[str, str], MatchSession] = {}
        self._inflight: Dict[Tuple, _Entry] = {}
        self._pending = 0
        self.queue_depth_peak = 0
        self._closed = False
        self._cancel_event = threading.Event()
        self._lock = threading.Lock()

        self.metrics = Metrics()
        self._metrics_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------
    # Resident graphs and sessions
    # ------------------------------------------------------------------

    def add_graph(
        self, name: str, graph: "GraphSource", dynamic: bool = False
    ) -> None:
        """Register a resident graph under ``name``.

        Accepts a :class:`~repro.graph.graph.Graph`, any
        :class:`~repro.graph.store.GraphStore` backend, or a path to a
        ``.graph``/``.rgf`` file — an ``.rgf`` path opens memmap-backed,
        so a cold graph larger than RAM registers in O(header). A
        :class:`~repro.dynamic.overlay.DynamicGraph` (or any source with
        ``dynamic=True``, which wraps it in one) registers as *mutable*:
        :meth:`mutate` accepts batches for it, and every response
        carries the epoch its execution ran against.
        """
        if not name:
            raise ValueError("graph name must be non-empty")
        if isinstance(graph, DynamicGraph):
            resolved: "GraphSource" = graph
        else:
            resolved = as_graph(graph)
            if dynamic:
                resolved = DynamicGraph(resolved)
        with self._lock:
            self._graphs[name] = resolved
            if isinstance(resolved, DynamicGraph):
                self._mutation_locks.setdefault(name, threading.Lock())

    def remove_graph(self, name: str) -> None:
        """Drop a resident graph and every session built on it."""
        with self._lock:
            self._graphs.pop(name, None)
            self._mutation_locks.pop(name, None)
            for key in [k for k in self._sessions if k[1] == name]:
                del self._sessions[key]

    def graphs(self) -> List[str]:
        """Names of the resident graphs, sorted."""
        with self._lock:
            return sorted(self._graphs)

    def session_for(self, tenant: str, graph_name: str) -> MatchSession:
        """The (created-on-demand) session serving one tenant on one graph."""
        with self._lock:
            try:
                return self._sessions[(tenant, graph_name)]
            except KeyError:
                pass
            try:
                data = self._graphs[graph_name]
            except KeyError:
                raise UnknownGraphError(
                    f"no resident graph named {graph_name!r}"
                ) from None
            session = MatchSession(
                data,
                algorithm=self.algorithm,
                kernel=self.kernel,
                engine=self.engine,
                plan_cache_size=self._plan_cache_size,
                prep_cache_size=self._prep_cache_size,
                n_workers=self.n_workers,
            )
            self._sessions[(tenant, graph_name)] = session
            return session

    # ------------------------------------------------------------------
    # Mutation (dynamic resident graphs)
    # ------------------------------------------------------------------

    def mutate(self, graph: str, mutations) -> ServiceMutation:
        """Apply one mutation batch to a dynamic resident graph.

        Epoch-versioned reads: the batch advances the graph epoch once
        and swaps every tenant session's served snapshot; in-flight
        matches keep the immutable snapshot they captured at execution
        start, so each response's embeddings are consistent with exactly
        one epoch (reported on :attr:`ServeResponse.epoch`). Standing
        queries (:meth:`MatchSession.subscribe`) report their embedding
        deltas in the returned :class:`ServiceMutation`.

        ``mutations`` is a sequence of
        :class:`~repro.dynamic.mutations.Mutation` objects or plain op
        tuples (``("add_edge", u, v)`` …).
        """
        self._metrics_add("serve.mutations")
        if self._closed:
            raise ServiceClosedError("service is shut down")
        with self._lock:
            target = self._graphs.get(graph)
            if target is None:
                self._metrics_add("serve.rejected_unknown_graph")
                raise UnknownGraphError(f"no resident graph named {graph!r}")
            if not isinstance(target, DynamicGraph):
                self._metrics_add("serve.rejected_invalid")
                raise ConfigurationError(
                    f"resident graph {graph!r} is immutable; register it "
                    "with add_graph(..., dynamic=True) to mutate"
                )
            mutation_lock = self._mutation_locks[graph]
        batch = [
            m if isinstance(m, Mutation) else Mutation.from_json(m)
            for m in mutations
        ]
        with mutation_lock:
            # Sessions created after this point start on the post-batch
            # snapshot and skip the fan-out delta via their epoch guard.
            with self._lock:
                sessions = {
                    t: s for (t, g), s in self._sessions.items() if g == graph
                }
            delta = target.apply(batch)
            updates = {
                tenant: session.ingest(delta).updates
                for tenant, session in sessions.items()
            }
        self._metrics_add(
            "serve.mutated_edges",
            len(delta.added_edges) + len(delta.removed_edges),
        )
        self._metrics_add("serve.mutated_vertices", len(delta.added_vertices))
        return ServiceMutation(
            graph=graph,
            epoch=target.epoch,
            delta=delta,
            updates={t: u for t, u in updates.items() if u},
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _metrics_add(self, name: str, amount: int = 1) -> None:
        with self._metrics_lock:
            self.metrics.add(name, amount)

    def _record_phase(self, phase: str, seconds: float) -> None:
        with self._metrics_lock:
            self.metrics.record_phase(phase, seconds)

    def _coalesce_key(
        self,
        graph_name: str,
        query: Graph,
        algorithm: Optional[AlgorithmLike],
        kernel: Optional[KernelLike],
        engine: Optional[str],
        match_limit: Optional[int],
        store_limit: int,
    ) -> Tuple:
        # Exact-graph keying (Graph hashes its label and CSR arrays):
        # fingerprint-equal renumberings have *different* embeddings, so
        # only byte-identical queries may share an execution. Dynamic
        # graphs additionally key on their epoch at admission — a
        # request admitted after a mutation must not ride an execution
        # answering from the pre-mutation snapshot.
        algo = self.algorithm if algorithm is None else algorithm
        kern = self.kernel if kernel is None else kernel
        eng = self.engine if engine is None else engine
        with self._lock:
            target = self._graphs.get(graph_name)
        epoch = target.epoch if isinstance(target, DynamicGraph) else 0
        return (
            graph_name,
            epoch,
            MatchSession._algorithm_key(algo),
            MatchSession._kernel_key(kern),
            eng,
            match_limit,
            store_limit,
            query,
        )

    def submit(
        self,
        query: Graph,
        graph: str = "default",
        tenant: str = "public",
        algorithm: Optional[AlgorithmLike] = None,
        kernel: Optional[KernelLike] = None,
        engine: Optional[str] = None,
        match_limit: Optional[int] = 100_000,
        store_limit: int = 10_000,
        budget: Optional[float] = None,
        validate: bool = True,
    ) -> "Future[ServeResponse]":
        """Admit one request; returns a future resolving to its response.

        Rejections raise synchronously — :class:`UnknownGraphError`,
        :class:`InvalidQueryError`, :class:`DeadlineExceededError` (spent
        budget), :class:`QueueFullError` (backpressure) — so a rejected
        request never occupies a queue slot and never reaches an engine.
        """
        self._metrics_add("serve.requests")
        if self._closed:
            raise ServiceClosedError("service is shut down")
        if validate:
            try:
                validate_query(query)
            except InvalidQueryError:
                self._metrics_add("serve.rejected_invalid")
                raise
        effective_budget = (
            self.default_budget if budget is None else budget
        )
        if effective_budget is not None and effective_budget <= 0:
            self._metrics_add("serve.rejected_deadline")
            raise DeadlineExceededError(
                f"request budget {effective_budget!r}s is already spent"
            )
        now = self.clock.now()
        deadline = (
            now + effective_budget if effective_budget is not None else None
        )
        key = self._coalesce_key(
            graph, query, algorithm, kernel, engine, match_limit, store_limit
        )

        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            if graph not in self._graphs:
                self._metrics_add("serve.rejected_unknown_graph")
                raise UnknownGraphError(f"no resident graph named {graph!r}")
            entry = self._inflight.get(key) if self.coalesce else None
            if entry is not None and not entry.closed:
                waiter = _Waiter(tenant, now, deadline, coalesced=True)
                entry.waiters.append(waiter)
                self._metrics_add("serve.admitted")
                self._metrics_add("serve.coalesced")
                return waiter.future
            if self._pending >= self.max_queue_depth:
                self._metrics_add("serve.rejected_queue_full")
                raise QueueFullError(
                    f"pending queue is full ({self.max_queue_depth}); "
                    "retry later"
                )
            self._pending += 1
            if self._pending > self.queue_depth_peak:
                self.queue_depth_peak = self._pending
            waiter = _Waiter(tenant, now, deadline, coalesced=False)
            entry = _Entry(
                key=key,
                query=query,
                graph_name=graph,
                tenant=tenant,
                algorithm=algorithm,
                kernel=kernel,
                engine=engine,
                match_limit=match_limit,
                store_limit=store_limit,
                waiters=[waiter],
            )
            if self.coalesce:
                self._inflight[key] = entry
            self._metrics_add("serve.admitted")

        try:
            self._executor.submit(self._run, entry)
        except RuntimeError:
            # Executor shut down between the check and the submit.
            with self._lock:
                self._inflight.pop(key, None)
                entry.closed = True
                self._pending -= 1
            raise ServiceClosedError("service is shut down") from None
        return waiter.future

    def match(self, query: Graph, **kwargs: Any) -> ServeResponse:
        """Synchronous convenience: :meth:`submit` then wait."""
        return self.submit(query, **kwargs).result()

    # ------------------------------------------------------------------
    # Execution (worker threads)
    # ------------------------------------------------------------------

    def _close_entry(self, entry: _Entry) -> None:
        """Detach the entry and free its queue slot, exactly once.

        Must run *before* any waiter future resolves: a caller that sees
        its result and immediately resubmits must find the slot free, or
        a drained queue would still bounce requests with QueueFullError.
        """
        with self._lock:
            self._inflight.pop(entry.key, None)
            if not entry.closed:
                entry.closed = True
                self._pending -= 1

    def _run(self, entry: _Entry) -> None:
        clock = self.clock
        try:
            started = clock.now()
            with self._lock:
                live = [w for w in entry.waiters if not w.is_past(started)]
                for w in entry.waiters:
                    if w not in live:
                        w.expired = True
                if not live:
                    # Every waiter's deadline passed while queued: close
                    # the entry under the lock (so nobody attaches to a
                    # skipped execution) and run nothing at all.
                    self._inflight.pop(entry.key, None)
            if not live:
                self._close_entry(entry)
                self._resolve(entry, started, result=None, error=None)
                return

            # The most generous live deadline drives the execution: every
            # live waiter shares this one run.
            if any(w.deadline is None for w in live):
                exec_deadline = None
                time_limit = None
            else:
                exec_deadline = max(w.deadline for w in live)
                time_limit = max(exec_deadline - started, 1e-6)

            def cancelled() -> bool:
                # Polled by the engine between leaf batches: stop when the
                # service shuts down or the service-clock deadline passes
                # (the wall-clock time_limit is the belt to this brace).
                if self._cancel_event.is_set():
                    return True
                return (
                    exec_deadline is not None
                    and clock.now() >= exec_deadline
                )

            result: Optional[MatchResult] = None
            error: Optional[BaseException] = None
            try:
                session = self.session_for(entry.tenant, entry.graph_name)
                with span(
                    "serve.execute",
                    graph=entry.graph_name,
                    tenant=entry.tenant,
                ):
                    result = session.match(
                        entry.query,
                        algorithm=entry.algorithm,
                        match_limit=entry.match_limit,
                        time_limit=time_limit,
                        store_limit=entry.store_limit,
                        validate=False,  # validated at admission
                        kernel=entry.kernel,
                        engine=entry.engine,
                        cancel=cancelled,
                    )
                self._metrics_add("serve.executed")
                if not result.solved:
                    self._metrics_add("serve.unsolved")
            except BaseException as exc:  # delivered via the futures
                error = exc
                self._metrics_add("serve.errors")
            finally:
                self._close_entry(entry)
            self._record_phase("serve.queue", started - entry.waiters[0].admitted_at)
            self._resolve(entry, started, result=result, error=error)
        finally:
            self._close_entry(entry)  # idempotent leak guard

    def _resolve(
        self,
        entry: _Entry,
        started: float,
        result: Optional[MatchResult],
        error: Optional[BaseException],
    ) -> None:
        """Fan the outcome out to every waiter (entry is closed by now)."""
        end = self.clock.now()
        if result is not None:
            self._record_phase("serve.execute", end - started)
        for waiter in entry.waiters:
            if error is not None:
                waiter.future.set_exception(error)
                continue
            if waiter.expired or result is None:
                self._metrics_add("serve.expired")
                waiter.future.set_result(
                    ServeResponse(
                        status="expired",
                        tenant=waiter.tenant,
                        graph=entry.graph_name,
                        coalesced=waiter.coalesced,
                        queue_seconds=started - waiter.admitted_at,
                        total_seconds=end - waiter.admitted_at,
                    )
                )
                continue
            self._metrics_add("serve.completed")
            # The session stamps the epoch its snapshot answered from
            # (dynamic graphs only) — surface it as the response's
            # snapshot-isolation witness.
            epoch = result.metrics.counters.get("session.data_epoch")
            waiter.future.set_result(
                ServeResponse(
                    status="ok",
                    tenant=waiter.tenant,
                    graph=entry.graph_name,
                    coalesced=waiter.coalesced,
                    queue_seconds=started - waiter.admitted_at,
                    total_seconds=end - waiter.admitted_at,
                    result=result,
                    epoch=epoch,
                )
            )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """A point-in-time snapshot: counters, queue depth, residents."""
        with self._lock:
            graphs = sorted(self._graphs)
            sessions = len(self._sessions)
            pending = self._pending
            inflight = len(self._inflight)
            peak = self.queue_depth_peak
        with self._metrics_lock:
            counters = dict(self.metrics.counters)
            phases = dict(self.metrics.phase_seconds)
        return {
            "graphs": graphs,
            "sessions": sessions,
            "pending": pending,
            "inflight": inflight,
            "queue_depth_peak": peak,
            "counters": counters,
            "phase_seconds": phases,
        }

    def close(self, wait: bool = True, cancel_inflight: bool = False) -> None:
        """Stop admitting; optionally preempt running enumerations.

        ``cancel_inflight=True`` trips the engines' cancel hook so
        long-running enumerations stop at their next leaf-batch boundary
        (their waiters see ``solved=False`` partial results).
        """
        self._closed = True
        if cancel_inflight:
            self._cancel_event.set()
        self._executor.shutdown(wait=wait)
        # Release each session's shared-memory published graph (no-op for
        # sessions that never ran a parallel match).
        with self._lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()

    def __enter__(self) -> "MatchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            graphs = len(self._graphs)
            pending = self._pending
        return f"MatchService(graphs={graphs}, pending={pending})"

"""Study harness: datasets, workloads, runner and reporting.

Everything the paper's experiment section needs that is not an algorithm:
the eight dataset stand-ins of Table 3, the query workloads of Table 4,
the per-query metric collection of Section 4, and plain-text table/series
formatting for the benchmark output.
"""

from repro.study.datasets import (
    DATASETS,
    DatasetSpec,
    friendster_standin,
    load_dataset,
)
from repro.study.experiments import (
    FilterReport,
    SpectrumReport,
    compare_algorithms,
    compare_filters,
    default_study_filters,
    order_spectrum,
)
from repro.study.parallel import run_algorithm_on_set_parallel
from repro.study.runner import QueryRecord, RunSummary, run_algorithm_on_set
from repro.study.workloads import (
    QuerySet,
    build_query_set,
    build_workload,
    default_query_sizes,
)
from repro.study.reporting import format_series, format_table

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "friendster_standin",
    "QuerySet",
    "build_query_set",
    "build_workload",
    "default_query_sizes",
    "QueryRecord",
    "RunSummary",
    "run_algorithm_on_set",
    "run_algorithm_on_set_parallel",
    "FilterReport",
    "SpectrumReport",
    "compare_filters",
    "compare_algorithms",
    "order_spectrum",
    "default_study_filters",
    "format_table",
    "format_series",
]

"""Synthetic stand-ins for the paper's real-world datasets (Table 3).

The paper evaluates on eight real graphs (Yeast, Human, HPRD, WordNet,
US Patents, Youtube, DBLP, eu2005) plus friendster. Those datasets are not
redistributable here, so we generate seeded RMAT graphs whose *shape*
matches Table 3 — the same average degree and label-set size, with vertex
counts scaled down for a pure-Python engine (large graphs 50–400× smaller).
Label skew mirrors the originals: the bio/lexical graphs get Zipf-skewed
labels (the WordNet stand-in has >80% of vertices on one label, the
property behind the paper's GQL-wins-on-wn finding); the originally
unlabeled graphs get uniform labels, as the paper assigned them.

``load_dataset`` caches constructed graphs; ``REPRO_SCALE`` (a float
environment variable) shrinks or grows every stand-in for quick runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Literal, Tuple

from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "friendster_standin"]

Labeler = Literal["uniform", "zipf"]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters for one stand-in, next to the paper's originals."""

    key: str
    full_name: str
    category: str
    num_vertices: int
    avg_degree: float
    num_labels: int
    labeler: Labeler
    seed: int
    #: Table 3 reference values for the real dataset.
    paper_vertices: int
    paper_edges: int
    paper_degree: float
    #: Table 3's label-set size. For the originally-unlabeled datasets the
    #: paper picked |Σ| "with which a reasonable number of queries completed
    #: within time limit"; we replicate that procedure at our scale, so
    #: ``num_labels`` is re-tuned while this field records the paper's value.
    paper_labels: int = 0
    #: Zipf exponent when ``labeler == "zipf"``; mild skew for the bio
    #: graphs, extreme for WordNet (>80% of vertices on one label).
    label_skew: float = 1.0

    @property
    def scale_factor(self) -> float:
        """How much smaller than the real dataset this stand-in is."""
        return self.paper_vertices / self.num_vertices


#: The eight datasets of Table 3 (key → stand-in spec).
DATASETS: Dict[str, DatasetSpec] = {
    spec.key: spec
    for spec in [
        DatasetSpec(
            key="ye", full_name="Yeast", category="Biology",
            num_vertices=3112, avg_degree=8.0, num_labels=71,
            labeler="zipf", seed=101,
            paper_vertices=3112, paper_edges=12519, paper_degree=8.0,
            paper_labels=71,
        ),
        DatasetSpec(
            key="hu", full_name="Human", category="Biology",
            num_vertices=2000, avg_degree=36.9, num_labels=44,
            labeler="zipf", seed=102,
            paper_vertices=4674, paper_edges=86282, paper_degree=36.9,
            paper_labels=44,
        ),
        DatasetSpec(
            key="hp", full_name="HPRD", category="Biology",
            num_vertices=4000, avg_degree=7.4, num_labels=307,
            labeler="zipf", seed=103,
            paper_vertices=9460, paper_edges=34998, paper_degree=7.4,
            paper_labels=307,
        ),
        DatasetSpec(
            key="wn", full_name="WordNet", category="Lexical",
            num_vertices=6000, avg_degree=3.1, num_labels=5,
            labeler="zipf", seed=104, label_skew=3.0,
            paper_vertices=76853, paper_edges=120399, paper_degree=3.1,
            paper_labels=5,
        ),
        DatasetSpec(
            key="up", full_name="US Patents", category="Citation",
            num_vertices=12000, avg_degree=8.8, num_labels=6,
            labeler="uniform", seed=105,
            paper_vertices=3774768, paper_edges=16518947, paper_degree=8.8,
            paper_labels=20,
        ),
        DatasetSpec(
            key="yt", full_name="Youtube", category="Social",
            num_vertices=8000, avg_degree=5.3, num_labels=6,
            labeler="uniform", seed=106,
            paper_vertices=1134890, paper_edges=2987624, paper_degree=5.3,
            paper_labels=25,
        ),
        DatasetSpec(
            key="db", full_name="DBLP", category="Social",
            num_vertices=8000, avg_degree=6.6, num_labels=5,
            labeler="uniform", seed=107,
            paper_vertices=317080, paper_edges=1049866, paper_degree=6.6,
            paper_labels=15,
        ),
        DatasetSpec(
            key="eu", full_name="eu2005", category="Web",
            num_vertices=4000, avg_degree=37.4, num_labels=14,
            labeler="uniform", seed=108,
            paper_vertices=862664, paper_edges=16138468, paper_degree=37.4,
            paper_labels=40,
        ),
    ]
}

_CACHE: Dict[Tuple[str, float], Graph] = {}


def _env_scale() -> float:
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a float, got {raw!r}") from None
    if value <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return value


def load_dataset(key: str, scale: float | None = None) -> Graph:
    """Build (or fetch from cache) the stand-in for dataset ``key``.

    ``scale`` multiplies the stand-in's vertex count; it defaults to the
    ``REPRO_SCALE`` environment variable (default 1.0).
    """
    if key not in DATASETS:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {key!r}; known: {known}")
    if scale is None:
        scale = _env_scale()
    cache_key = (key, scale)
    graph = _CACHE.get(cache_key)
    if graph is None:
        spec = DATASETS[key]
        num_vertices = max(64, int(round(spec.num_vertices * scale)))
        graph = rmat_graph(
            num_vertices=num_vertices,
            average_degree=spec.avg_degree,
            num_labels=spec.num_labels,
            seed=spec.seed,
            label_skew=spec.label_skew if spec.labeler == "zipf" else None,
            clustering=0.3,
        )
        _CACHE[cache_key] = graph
    return graph


def friendster_standin(
    edge_fraction: float = 1.0,
    num_labels: int = 8,
    scale: float | None = None,
    seed: int = 109,
) -> Graph:
    """Stand-in for the friendster graph of Figure 18.

    The real graph has 124M vertices / 1.8B edges (average degree ≈ 29);
    the paper samples 40–100% of its edges and varies |Σ| over
    {64, 96, 128, 160}. We build a proportionally scaled RMAT graph, apply
    the same edge sampling by thinning the target degree, and scale the
    label sweep by 1/8 (default |Σ| = 8 ≙ the paper's 64) so per-label
    frequencies keep queries non-trivial at stand-in size.
    """
    if not 0.0 < edge_fraction <= 1.0:
        raise ValueError("edge_fraction must be in (0, 1]")
    if scale is None:
        scale = _env_scale()
    num_vertices = max(256, int(round(16000 * scale)))
    return rmat_graph(
        num_vertices=num_vertices,
        average_degree=29.0 * edge_fraction,
        num_labels=num_labels,
        seed=seed,
        clustering=0.3,
    )

"""Programmatic experiment API: the paper's comparisons on *your* graphs.

The benchmark modules regenerate the paper's figures on the dataset
stand-ins; this module exposes the same comparisons as plain functions a
downstream user can point at any graph/workload:

* :func:`compare_filters` — Figure 7/8-style: per-filter pruning power and
  preprocessing time;
* :func:`compare_algorithms` — Figure 11/16-style: per-preset timing
  summary over one query set;
* :func:`order_spectrum` — Figure 14-style: the distribution of
  enumeration times across sampled matching orders for one query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.spec import AlgorithmSpec
from repro.enumeration.engine import BacktrackingEngine
from repro.enumeration.local_candidates import IntersectionLC
from repro.filtering import (
    AuxiliaryStructure,
    CECIFilter,
    CFLFilter,
    DPisoFilter,
    Filter,
    GraphQLFilter,
    LDFFilter,
    SteadyFilter,
)
from repro.graph.graph import Graph
from repro.ordering import GraphQLOrdering, RIOrdering, sample_orders
from repro.study.runner import RunSummary, run_algorithm_on_set
from repro.utils.timer import Timer

__all__ = [
    "FilterReport",
    "SpectrumReport",
    "compare_filters",
    "compare_algorithms",
    "order_spectrum",
    "default_study_filters",
]


def default_study_filters() -> List[Filter]:
    """The filter lineup of Figure 8 (baselines included)."""
    return [
        LDFFilter(),
        GraphQLFilter(),
        CFLFilter(),
        CECIFilter(),
        DPisoFilter(),
        SteadyFilter(),
    ]


@dataclass
class FilterReport:
    """Per-filter aggregates over one query set (Figures 7 and 8)."""

    filter_name: str
    avg_candidates: float
    avg_time_ms: float
    avg_memory_bytes: float
    num_queries: int


def compare_filters(
    data: Graph,
    queries: Sequence[Graph],
    filters: Optional[Sequence[Filter]] = None,
) -> List[FilterReport]:
    """Run each filter over every query; report pruning power and cost.

    Filters may carry configuration (e.g. ``DPisoFilter(refinement_phases=1)``),
    so instances — not classes — are passed in.
    """
    if filters is None:
        filters = default_study_filters()
    reports = []
    for filt in filters:
        candidates_total = 0.0
        time_total = 0.0
        memory_total = 0.0
        for query in queries:
            with Timer() as timer:
                result = filt.run(query, data)
            candidates_total += result.average_size
            time_total += timer.elapsed_ms
            memory_total += result.memory_bytes
        n = max(1, len(queries))
        reports.append(
            FilterReport(
                filter_name=filt.name,
                avg_candidates=candidates_total / n,
                avg_time_ms=time_total / n,
                avg_memory_bytes=memory_total / n,
                num_queries=len(queries),
            )
        )
    return reports


def compare_algorithms(
    data: Graph,
    queries: Sequence[Graph],
    algorithms: Sequence[Union[str, AlgorithmSpec]],
    match_limit: Optional[int] = None,
    time_limit: Optional[float] = None,
    dataset_key: str = "user",
    query_set_label: str = "user",
) -> List[RunSummary]:
    """Run each preset over the query set; summaries sorted by total time.

    Accepts preset names (including ``"GLW"``) and explicit specs.
    """
    summaries = [
        run_algorithm_on_set(
            algorithm,
            data,
            queries,
            dataset_key=dataset_key,
            query_set_label=query_set_label,
            match_limit=match_limit,
            time_limit=time_limit,
        )
        for algorithm in algorithms
    ]
    summaries.sort(key=lambda s: s.avg_total_ms)
    return summaries


@dataclass
class SpectrumReport:
    """Enumeration-time distribution across matching orders (Figure 14)."""

    #: Solved sampled orders, milliseconds, ascending.
    sampled_ms: List[float] = field(default_factory=list)
    #: Sampled orders killed by the time limit.
    timeouts: int = 0
    #: The GQL ordering's time (None if it timed out).
    gql_ms: Optional[float] = None
    #: The RI ordering's time (None if it timed out).
    ri_ms: Optional[float] = None

    @property
    def best_ms(self) -> Optional[float]:
        return self.sampled_ms[0] if self.sampled_ms else None

    @property
    def worst_ms(self) -> Optional[float]:
        return self.sampled_ms[-1] if self.sampled_ms else None

    @property
    def median_ms(self) -> Optional[float]:
        if not self.sampled_ms:
            return None
        return self.sampled_ms[len(self.sampled_ms) // 2]

    def speedup_over(self, algorithm_ms: Optional[float]) -> Optional[float]:
        """Best-sampled-order speedup over an algorithmic order's time."""
        if algorithm_ms is None or self.best_ms is None:
            return None
        return algorithm_ms / max(1e-6, self.best_ms)


def order_spectrum(
    query: Graph,
    data: Graph,
    num_orders: int = 100,
    seed: int = 0,
    match_limit: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> SpectrumReport:
    """Sample matching orders and measure each (optimized GQL pipeline).

    All orders share one candidate space and auxiliary structure, so the
    spectrum isolates the ordering axis exactly as Section 5.3 does.
    """
    candidates = GraphQLFilter().run(query, data)
    auxiliary = AuxiliaryStructure.build(query, data, candidates, scope="all")

    def measure(order) -> Optional[float]:
        engine = BacktrackingEngine(IntersectionLC())
        outcome = engine.run(
            query, data, candidates, auxiliary, order,
            match_limit=match_limit, time_limit=time_limit, store_limit=0,
        )
        return outcome.elapsed * 1000.0 if outcome.solved else None

    report = SpectrumReport()
    for order in sample_orders(query, num_orders, seed=seed):
        elapsed = measure(order)
        if elapsed is None:
            report.timeouts += 1
        else:
            report.sampled_ms.append(elapsed)
    report.sampled_ms.sort()
    report.gql_ms = measure(GraphQLOrdering().order(query, data, candidates))
    report.ri_ms = measure(RIOrdering().order(query, data, candidates))
    return report

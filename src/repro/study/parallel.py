"""Parallel experiment runner: one query per worker process.

The study's algorithms are single-threaded by design (the paper's
sequential comparison), but a *workload* of independent queries
parallelizes trivially. This module fans a query set out over a process
pool and reassembles the same :class:`~repro.study.runner.RunSummary`
the sequential runner produces.

The data graph is **not** shipped to workers: it is published once as a
:class:`~repro.parallel.shared_graph.SharedGraph` (one shared-memory
segment holding the CSR arrays) and every worker attaches zero-copy via
the tiny handle the pool initializer receives — attach cost is
independent of graph size, and all workers read the same physical pages.

Timings measured in parallel are noisier than sequential ones (workers
share memory bandwidth), so the benchmark harness stays sequential; this
runner is for users who want answers, not measurements — e.g. scanning a
large workload for hard queries.

Algorithms may be preset names, ``"GLW"``, or explicit
:class:`~repro.core.spec.AlgorithmSpec` instances — specs (and the plans
compiled from them) pickle since the kernels learned to drop their
identity-keyed caches at the process boundary.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Optional, Sequence, Tuple, Union

from repro.core.session import MatchSession
from repro.core.spec import AlgorithmSpec
from repro.glasgow.solver import glasgow_match
from repro.graph.graph import Graph
from repro.graph.store import GraphSource, SharedMemoryStore, as_graph
from repro.parallel.shared_graph import SharedGraph, SharedGraphHandle, attach
from repro.study.runner import (
    QueryRecord,
    RunSummary,
    default_match_limit,
    default_time_limit,
)

__all__ = ["run_algorithm_on_set_parallel"]

AlgorithmLike = Union[str, AlgorithmSpec]

# Worker-process globals, set once by the pool initializer. Each worker
# attaches the published data graph (keeping the segment alive alongside
# it) and holds one MatchSession in measurement mode: no preprocessing
# reuse, no cache counters — records must match the sequential runner's
# byte for byte. GLW runs have no session.
_WORKER_SHM: Optional[shared_memory.SharedMemory] = None
_WORKER_DATA: Optional[Graph] = None
_WORKER_ALGORITHM: Optional[AlgorithmLike] = None
_WORKER_SESSION: Optional[MatchSession] = None
_WORKER_LIMITS: Tuple[Optional[int], Optional[float]] = (None, None)


def _init_worker(
    handle: SharedGraphHandle,
    algorithm: AlgorithmLike,
    match_limit: Optional[int],
    time_limit: Optional[float],
) -> None:
    global _WORKER_SHM, _WORKER_DATA, _WORKER_ALGORITHM
    global _WORKER_SESSION, _WORKER_LIMITS
    _WORKER_SHM, _WORKER_DATA = attach(handle)
    _WORKER_ALGORITHM = algorithm
    _WORKER_SESSION = (
        None
        if algorithm == "GLW"
        else MatchSession(
            _WORKER_DATA,
            algorithm=algorithm,
            prep_cache_size=0,
            record_cache_metrics=False,
        )
    )
    _WORKER_LIMITS = (match_limit, time_limit)


def _run_one(task: Tuple[int, Graph]) -> QueryRecord:
    index, query = task
    assert _WORKER_DATA is not None and _WORKER_ALGORITHM is not None
    match_limit, time_limit = _WORKER_LIMITS
    if _WORKER_SESSION is None:
        result = glasgow_match(
            query,
            _WORKER_DATA,
            match_limit=match_limit,
            time_limit=time_limit,
            store_limit=0,
        )
    else:
        result = _WORKER_SESSION.match(
            query,
            match_limit=match_limit,
            time_limit=time_limit,
            store_limit=0,
            validate=False,
        )
    return QueryRecord(
        query_index=index,
        preprocessing_ms=result.preprocessing_ms,
        enumeration_ms=result.enumeration_ms,
        num_matches=result.num_matches,
        solved=result.solved,
        candidate_average=result.candidate_average,
        memory_bytes=result.memory_bytes,
        recursion_calls=result.stats.recursion_calls,
        metrics=result.metrics.to_dict(),
    )


def run_algorithm_on_set_parallel(
    algorithm: AlgorithmLike,
    data: GraphSource,
    queries: Sequence[Graph],
    dataset_key: str = "?",
    query_set_label: str = "?",
    match_limit: Optional[int] = None,
    time_limit: Optional[float] = None,
    workers: int = 2,
) -> RunSummary:
    """Parallel counterpart of :func:`repro.study.runner.run_algorithm_on_set`.

    Results are identical (same per-query records, in query order);
    wall-clock time is roughly divided by ``workers`` for CPU-bound
    workloads. ``data`` may be a :class:`Graph`, any
    :class:`~repro.graph.store.GraphStore`, or a ``.graph``/``.rgf``
    path; a graph already backed by a shared-memory store is not
    republished — workers attach to the existing segment.
    """
    if not isinstance(algorithm, (str, AlgorithmSpec)):
        raise TypeError(
            "algorithm must be a preset name, 'GLW', or an AlgorithmSpec"
        )
    if workers < 1:
        raise ValueError("need at least one worker")
    if match_limit is None:
        match_limit = default_match_limit()
    if time_limit is None:
        time_limit = default_time_limit()

    data = as_graph(data)
    summary = RunSummary(
        algorithm=(
            algorithm if isinstance(algorithm, str) else algorithm.name
        ),
        dataset_key=dataset_key,
        query_set_label=query_set_label,
        time_limit=time_limit,
    )
    tasks = list(enumerate(queries))
    store = data._store
    if isinstance(store, SharedMemoryStore):
        shared, handle = None, store.handle
    else:
        shared = SharedGraph(data)
        handle = shared.handle
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(handle, algorithm, match_limit, time_limit),
        ) as pool:
            for record in pool.map(_run_one, tasks):
                summary.records.append(record)
    finally:
        if shared is not None:
            shared.unlink()
    summary.records.sort(key=lambda r: r.query_index)
    return summary

"""Parallel experiment runner: one query per worker process.

The study's algorithms are single-threaded by design (the paper's
sequential comparison), but a *workload* of independent queries
parallelizes trivially. This module fans a query set out over a process
pool — the data graph is shipped to each worker once via the pool
initializer, not per task — and reassembles the same
:class:`~repro.study.runner.RunSummary` the sequential runner produces.

Timings measured in parallel are noisier than sequential ones (workers
share memory bandwidth), so the benchmark harness stays sequential; this
runner is for users who want answers, not measurements — e.g. scanning a
large workload for hard queries.

Only preset *names* (plus ``"GLW"``) are accepted: specs may carry
unpicklable components, and names re-resolve cheaply in each worker.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence, Tuple

from repro.core.session import MatchSession
from repro.glasgow.solver import glasgow_match
from repro.graph.graph import Graph
from repro.study.runner import (
    QueryRecord,
    RunSummary,
    default_match_limit,
    default_time_limit,
)

__all__ = ["run_algorithm_on_set_parallel"]

# Worker-process globals, set once by the pool initializer. Each worker
# holds one MatchSession for the shipped data graph (measurement mode:
# no preprocessing reuse, no cache counters — records must match the
# sequential runner's byte for byte); GLW runs have no session.
_WORKER_DATA: Optional[Graph] = None
_WORKER_ALGORITHM: Optional[str] = None
_WORKER_SESSION: Optional[MatchSession] = None
_WORKER_LIMITS: Tuple[Optional[int], Optional[float]] = (None, None)


def _init_worker(
    data: Graph,
    algorithm: str,
    match_limit: Optional[int],
    time_limit: Optional[float],
) -> None:
    global _WORKER_DATA, _WORKER_ALGORITHM, _WORKER_SESSION, _WORKER_LIMITS
    _WORKER_DATA = data
    _WORKER_ALGORITHM = algorithm
    _WORKER_SESSION = (
        None
        if algorithm == "GLW"
        else MatchSession(
            data,
            algorithm=algorithm,
            prep_cache_size=0,
            record_cache_metrics=False,
        )
    )
    _WORKER_LIMITS = (match_limit, time_limit)


def _run_one(task: Tuple[int, Graph]) -> QueryRecord:
    index, query = task
    assert _WORKER_DATA is not None and _WORKER_ALGORITHM is not None
    match_limit, time_limit = _WORKER_LIMITS
    if _WORKER_SESSION is None:
        result = glasgow_match(
            query,
            _WORKER_DATA,
            match_limit=match_limit,
            time_limit=time_limit,
            store_limit=0,
        )
    else:
        result = _WORKER_SESSION.match(
            query,
            match_limit=match_limit,
            time_limit=time_limit,
            store_limit=0,
            validate=False,
        )
    return QueryRecord(
        query_index=index,
        preprocessing_ms=result.preprocessing_ms,
        enumeration_ms=result.enumeration_ms,
        num_matches=result.num_matches,
        solved=result.solved,
        candidate_average=result.candidate_average,
        memory_bytes=result.memory_bytes,
        recursion_calls=result.stats.recursion_calls,
        metrics=result.metrics.to_dict(),
    )


def run_algorithm_on_set_parallel(
    algorithm: str,
    data: Graph,
    queries: Sequence[Graph],
    dataset_key: str = "?",
    query_set_label: str = "?",
    match_limit: Optional[int] = None,
    time_limit: Optional[float] = None,
    workers: int = 2,
) -> RunSummary:
    """Parallel counterpart of :func:`repro.study.runner.run_algorithm_on_set`.

    Results are identical (same per-query records, in query order);
    wall-clock time is roughly divided by ``workers`` for CPU-bound
    workloads.
    """
    if not isinstance(algorithm, str):
        raise TypeError(
            "parallel runner accepts preset names only (specs may not pickle)"
        )
    if workers < 1:
        raise ValueError("need at least one worker")
    if match_limit is None:
        match_limit = default_match_limit()
    if time_limit is None:
        time_limit = default_time_limit()

    summary = RunSummary(
        algorithm=algorithm,
        dataset_key=dataset_key,
        query_set_label=query_set_label,
        time_limit=time_limit,
    )
    tasks = list(enumerate(queries))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(data, algorithm, match_limit, time_limit),
    ) as pool:
        for record in pool.map(_run_one, tasks):
            summary.records.append(record)
    summary.records.sort(key=lambda r: r.query_index)
    return summary

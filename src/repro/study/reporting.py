"""Plain-text table and series formatting for benchmark output.

The benchmark harness prints each figure/table of the paper as rows or
series; these helpers keep the formatting consistent and testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_series", "format_float"]


def format_float(value: Optional[float], precision: int = 2) -> str:
    """Render a float cell; ``None`` becomes ``-``."""
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 100_000 or 0 < abs(value) < 0.01:
        return f"{value:.{precision}e}"
    return f"{value:.{precision}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width ASCII table.

    >>> print(format_table(['a', 'b'], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """
    cells = [
        [
            format_float(c) if isinstance(c, float) else str(c)
            for c in row
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def format_series(
    title: str,
    x_labels: Sequence[object],
    series: Dict[str, Sequence[Optional[float]]],
) -> str:
    """A figure rendered as one row per series over shared x labels.

    Mirrors how the paper's line plots read: the x axis is a parameter
    sweep, each series is one algorithm.
    """
    headers = ["series"] + [str(x) for x in x_labels]
    rows: List[List[object]] = []
    for name in series:
        values = series[name]
        rows.append(
            [name] + [format_float(v) if v is not None else "-" for v in values]
        )
    return format_table(headers, rows, title=title)

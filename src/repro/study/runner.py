"""The experiment runner: one algorithm over one query set, with metrics.

Implements the paper's measurement protocol (Section 4, Metrics):

* per query, preprocessing time and enumeration time are measured
  separately, in milliseconds;
* queries are cut off after ``match_limit`` matches (paper: 10^5);
* queries exceeding the wall-clock budget are *unsolved* and their
  enumeration time is accounted as the full budget;
* query sets are summarized by mean values plus the standard deviation of
  the enumeration time (Figure 12) and the short/median/long/unsolved
  buckets of Figure 13 (thresholds are the paper's 1s/60s/300s expressed
  as fractions of the budget: 1/300, 1/5, 1).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.session import MatchSession
from repro.core.spec import AlgorithmSpec
from repro.glasgow.solver import glasgow_match
from repro.graph.graph import Graph
from repro.obs import Metrics

__all__ = [
    "QueryRecord",
    "RunSummary",
    "run_algorithm_on_set",
    "default_time_limit",
    "default_match_limit",
]

AlgorithmLike = Union[str, AlgorithmSpec]


def default_time_limit() -> float:
    """Per-query enumeration budget in seconds (env ``REPRO_TIME_LIMIT``).

    The paper uses 300 s on C++; our default is 2 s, which on the scaled
    stand-ins plays the same role (kills the pathological orders while
    letting ordinary queries finish).
    """
    return float(os.environ.get("REPRO_TIME_LIMIT", "2.0"))


def default_match_limit() -> int:
    """Match cap per query (env ``REPRO_MATCH_CAP``; paper: 10^5)."""
    return int(os.environ.get("REPRO_MATCH_CAP", "10000"))


@dataclass(frozen=True)
class QueryRecord:
    """Metrics for one query (the paper's per-query measurement)."""

    query_index: int
    preprocessing_ms: float
    enumeration_ms: float
    num_matches: int
    solved: bool
    candidate_average: Optional[float]
    memory_bytes: int
    recursion_calls: int

    #: The query's :class:`~repro.obs.Metrics` in plain-dict form (kept
    #: JSON/pickle-friendly so parallel workers ship it unchanged).
    metrics: Optional[Dict] = None


@dataclass
class RunSummary:
    """Aggregated metrics of one algorithm over one query set."""

    algorithm: str
    dataset_key: str
    query_set_label: str
    time_limit: float
    records: List[QueryRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates (all over the full set; unsolved queries charge the
    # enumeration budget, per the paper).
    # ------------------------------------------------------------------

    @property
    def num_queries(self) -> int:
        return len(self.records)

    @property
    def num_unsolved(self) -> int:
        return sum(1 for r in self.records if not r.solved)

    @property
    def avg_preprocessing_ms(self) -> float:
        return _mean([r.preprocessing_ms for r in self.records])

    @property
    def avg_enumeration_ms(self) -> float:
        return _mean([self._charged_enumeration_ms(r) for r in self.records])

    @property
    def std_enumeration_ms(self) -> float:
        values = [self._charged_enumeration_ms(r) for r in self.records]
        return _std(values)

    @property
    def avg_total_ms(self) -> float:
        return self.avg_preprocessing_ms + self.avg_enumeration_ms

    @property
    def avg_candidates(self) -> Optional[float]:
        values = [
            r.candidate_average
            for r in self.records
            if r.candidate_average is not None
        ]
        return _mean(values) if values else None

    @property
    def avg_matches_solved(self) -> float:
        """Mean result count over solved queries (Figure 17's estimate)."""
        solved = [r.num_matches for r in self.records if r.solved]
        return _mean(solved) if solved else 0.0

    @property
    def peak_memory_bytes(self) -> int:
        return max((r.memory_bytes for r in self.records), default=0)

    @property
    def merged_metrics(self) -> Metrics:
        """All per-query counters merged (associative + commutative sum).

        Sequential and parallel runs of the same workload produce equal
        merged metrics — the parity the integration suite enforces.
        """
        merged = Metrics()
        for record in self.records:
            if record.metrics is not None:
                merged = merged.merge(Metrics.from_dict(record.metrics))
        return merged

    def _charged_enumeration_ms(self, record: QueryRecord) -> float:
        if record.solved:
            return record.enumeration_ms
        return self.time_limit * 1000.0

    def categories(self) -> Dict[str, int]:
        """Figure 13's buckets, as counts.

        Thresholds are the paper's 1 s / 60 s / 300 s rescaled to the
        configured budget: short < budget/300, median < budget/5,
        long < budget, unsolved otherwise.
        """
        budget_ms = self.time_limit * 1000.0
        buckets = {"short": 0, "median": 0, "long": 0, "unsolved": 0}
        for r in self.records:
            if not r.solved:
                buckets["unsolved"] += 1
            elif r.enumeration_ms < budget_ms / 300.0:
                buckets["short"] += 1
            elif r.enumeration_ms < budget_ms / 5.0:
                buckets["median"] += 1
            else:
                buckets["long"] += 1
        return buckets

    def __repr__(self) -> str:
        return (
            f"RunSummary({self.algorithm} on {self.dataset_key}/"
            f"{self.query_set_label}: enum={self.avg_enumeration_ms:.1f}ms, "
            f"unsolved={self.num_unsolved}/{self.num_queries})"
        )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _std(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


def run_algorithm_on_set(
    algorithm: AlgorithmLike,
    data: Graph,
    queries: Sequence[Graph],
    dataset_key: str = "?",
    query_set_label: str = "?",
    match_limit: Optional[int] = None,
    time_limit: Optional[float] = None,
    kernel: Optional[str] = None,
) -> RunSummary:
    """Run one algorithm over every query of a set, collecting Section 4
    metrics. ``algorithm`` may be any preset name, an
    :class:`AlgorithmSpec`, or ``"GLW"`` for the Glasgow solver.
    ``kernel`` pins the intersection backend for every query (default:
    ``REPRO_KERNEL`` / auto heuristic).

    The whole set runs through one :class:`~repro.core.session.MatchSession`
    in measurement mode: the plan cache amortizes spec/kernel resolution,
    but preprocessing reuse and cache counters are off so every query's
    recorded preprocessing time and metrics are exactly what a standalone
    ``match()`` would report.
    """
    if match_limit is None:
        match_limit = default_match_limit()
    if time_limit is None:
        time_limit = default_time_limit()

    summary = RunSummary(
        algorithm=algorithm if isinstance(algorithm, str) else algorithm.name,
        dataset_key=dataset_key,
        query_set_label=query_set_label,
        time_limit=time_limit,
    )
    session = (
        None
        if algorithm == "GLW"
        else MatchSession(
            data,
            algorithm=algorithm,
            kernel=kernel,
            prep_cache_size=0,
            record_cache_metrics=False,
        )
    )
    for index, query in enumerate(queries):
        if session is None:
            result = glasgow_match(
                query,
                data,
                match_limit=match_limit,
                time_limit=time_limit,
                store_limit=0,
            )
        else:
            result = session.match(
                query,
                match_limit=match_limit,
                time_limit=time_limit,
                store_limit=0,
                validate=False,
            )
        summary.records.append(
            QueryRecord(
                query_index=index,
                preprocessing_ms=result.preprocessing_ms,
                enumeration_ms=result.enumeration_ms,
                num_matches=result.num_matches,
                solved=result.solved,
                candidate_average=result.candidate_average,
                memory_bytes=result.memory_bytes,
                recursion_calls=result.stats.recursion_calls,
                metrics=result.metrics.to_dict(),
            )
        )
    return summary

"""Query workloads mirroring the paper's Table 4.

For every data graph the paper generates nine query sets of 200 connected
queries each — ``Q_4`` plus dense (``d(q) ≥ 3``) and sparse (``d(q) < 3``)
sets at increasing sizes; Human and WordNet stop at 20 vertices because
they are the hardest datasets, the rest go to 32.

Our stand-ins scale both axes down (pure-Python engine): default sizes are
4–16 (4–10 for hu/wn) and 20 queries per set; both are parameters, so a
paper-faithful 200×32 workload is one call away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence, Tuple

from repro.errors import InvalidQueryError
from repro.graph.graph import Graph
from repro.graph.query_gen import generate_query_set

__all__ = [
    "QuerySet",
    "default_query_sizes",
    "build_query_set",
    "build_workload",
]

Density = Literal["dense", "sparse"]

#: Datasets the paper caps at smaller queries (hard instances).
_SMALL_QUERY_DATASETS = frozenset({"hu", "wn"})


@dataclass(frozen=True)
class QuerySet:
    """One ``Q_iD`` / ``Q_iS`` query set bound to a dataset stand-in."""

    dataset_key: str
    size: int
    density: Optional[Density]
    queries: Tuple[Graph, ...]

    @property
    def label(self) -> str:
        """Paper-style name, e.g. ``Q8D`` / ``Q8S`` / ``Q4``."""
        if self.density is None:
            return f"Q{self.size}"
        return f"Q{self.size}{'D' if self.density == 'dense' else 'S'}"

    def __len__(self) -> int:
        return len(self.queries)


def default_query_sizes(dataset_key: str) -> List[int]:
    """Scaled-down analog of Table 4's per-dataset size ladders."""
    if dataset_key in _SMALL_QUERY_DATASETS:
        return [4, 6, 8, 10]
    return [4, 8, 12, 16]


def build_query_set(
    data: Graph,
    dataset_key: str,
    size: int,
    density: Optional[Density],
    count: int,
    seed: int,
) -> QuerySet:
    """Generate one query set by random walks on ``data``.

    Falls back to unconstrained density when the stand-in cannot satisfy
    the request (e.g. dense 16-vertex queries on a degree-3 graph) — the
    fallback keeps workloads total and deterministic; callers can inspect
    ``density`` of the returned set to detect it.
    """
    try:
        queries = generate_query_set(
            data, size, count, seed=seed, density=density
        )
        actual_density = density
    except InvalidQueryError:
        queries = generate_query_set(data, size, count, seed=seed, density=None)
        actual_density = None
    return QuerySet(
        dataset_key=dataset_key,
        size=size,
        density=actual_density,
        queries=tuple(queries),
    )


def build_workload(
    data: Graph,
    dataset_key: str,
    sizes: Optional[Sequence[int]] = None,
    count: int = 20,
    seed: int = 20200614,
    include_q4: bool = True,
) -> List[QuerySet]:
    """The full Table 4 ladder for one dataset.

    Returns ``Q_4`` (density-free, matching the paper) followed by dense
    and sparse sets at each size in ``sizes``.
    """
    if sizes is None:
        sizes = default_query_sizes(dataset_key)
    sets: List[QuerySet] = []
    if include_q4:
        sets.append(
            build_query_set(data, dataset_key, 4, None, count, seed=seed)
        )
    for size in sizes:
        if size == 4:
            continue  # Q4 has no density split in the paper.
        for density in ("dense", "sparse"):
            sets.append(
                build_query_set(
                    data,
                    dataset_key,
                    size,
                    density,  # type: ignore[arg-type]
                    count,
                    seed=seed + size * 31 + (0 if density == "dense" else 1),
                )
            )
    return sets

"""Shared low-level utilities: set-intersection kernels and timing helpers."""

from repro.utils.intersection import (
    BitmapSetIndex,
    QFilterIndex,
    intersect,
    intersect_galloping,
    intersect_hybrid,
    intersect_merge,
    multi_intersect,
)
from repro.utils.kernels import (
    BitsetKernel,
    KernelBackend,
    NumpyKernel,
    QFilterKernel,
    ScalarKernel,
    available_kernels,
    get_kernel,
    register_kernel,
)
from repro.utils.timer import Deadline, Timer

__all__ = [
    "BitmapSetIndex",
    "QFilterIndex",
    "intersect",
    "intersect_galloping",
    "intersect_hybrid",
    "intersect_merge",
    "multi_intersect",
    "BitsetKernel",
    "KernelBackend",
    "NumpyKernel",
    "QFilterKernel",
    "ScalarKernel",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "Deadline",
    "Timer",
]

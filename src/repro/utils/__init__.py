"""Shared low-level utilities: set-intersection kernels and timing helpers."""

from repro.utils.intersection import (
    BitmapSetIndex,
    QFilterIndex,
    intersect,
    intersect_galloping,
    intersect_hybrid,
    intersect_merge,
    multi_intersect,
)
from repro.utils.timer import Deadline, Timer

__all__ = [
    "BitmapSetIndex",
    "QFilterIndex",
    "intersect",
    "intersect_galloping",
    "intersect_hybrid",
    "intersect_merge",
    "multi_intersect",
    "Deadline",
    "Timer",
]

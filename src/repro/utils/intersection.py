"""Set-intersection kernels for sorted integer arrays.

Section 3.3.2 of the paper: "We implement a hybrid set intersection method:
if the cardinalities of two sets are similar, we use the merge-based method;
otherwise, we adopt the Galloping algorithm." Figure 10 further compares the
hybrid method against QFilter, a SIMD method with a compact bitmap-like
layout that wins on dense graphs but pays a conversion overhead on sparse
ones.

We provide:

* :func:`intersect_merge` — linear two-pointer merge,
* :func:`intersect_galloping` — exponential + binary search of the smaller
  list into the larger,
* :func:`intersect_hybrid` — the paper's dispatcher,
* :class:`QFilterIndex` — the faithful QFilter model: base-and-state
  blocks, merged base arrays, per-block state ANDs — wins when values
  cluster, pays block overhead when they scatter (Figure 10's trade-off),
* :class:`BitmapSetIndex` — a simpler big-int bitmap kernel (one ``&``
  over the whole universe), kept for the kernel micro-benchmarks.

All kernels expect **sorted lists of non-negative ints** and return sorted
lists.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "intersect_merge",
    "intersect_galloping",
    "intersect_hybrid",
    "intersect",
    "multi_intersect",
    "BitmapSetIndex",
    "QFilterIndex",
]

#: Cardinality ratio above which the hybrid method switches from merge to
#: galloping. 32 is the conventional crossover for scalar implementations.
GALLOP_RATIO = 32


def intersect_merge(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Two-pointer merge intersection; O(|a| + |b|).

    >>> intersect_merge([1, 3, 5, 7], [3, 4, 5, 6])
    [3, 5]
    """
    result: List[int] = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x == y:
            result.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return result


def _gallop(haystack: Sequence[int], needle: int, lo: int) -> int:
    """Exponential probe then binary search: first index ≥ needle from lo."""
    hi = lo + 1
    n = len(haystack)
    while hi < n and haystack[hi] < needle:
        lo = hi
        hi = min(n, hi * 2)
    return bisect_left(haystack, needle, lo, min(hi + 1, n))


def intersect_galloping(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Galloping intersection; O(|small| · log |large|).

    The smaller input drives the search regardless of argument order.

    >>> intersect_galloping([5], list(range(0, 100, 5)))
    [5]
    """
    if len(a) > len(b):
        a, b = b, a
    result: List[int] = []
    pos = 0
    len_b = len(b)
    for x in a:
        pos = _gallop(b, x, pos)
        if pos >= len_b:
            break
        if b[pos] == x:
            result.append(x)
            pos += 1
    return result


def intersect_hybrid(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """The paper's hybrid kernel: merge when sizes are similar, else gallop.

    >>> intersect_hybrid([2, 4, 6], [1, 2, 3, 4])
    [2, 4]
    """
    if len(a) == 0 or len(b) == 0:
        return []
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    if len(large) > GALLOP_RATIO * len(small):
        return intersect_galloping(small, large)
    return intersect_merge(small, large)


#: Default kernel used by the enumeration engine (Algorithm 5).
intersect = intersect_hybrid


def multi_intersect(
    lists: Sequence[Sequence[int]],
    kernel=intersect_hybrid,
) -> List[int]:
    """Intersect several sorted lists, smallest-first to bound the work.

    The cost is proportional to the smallest input, matching the analysis
    of Algorithm 5 in Section 3.3.2. An empty input sequence is an error —
    the intersection of zero sets is undefined here.

    >>> multi_intersect([[1, 2, 3, 4], [2, 4, 6], [0, 2, 4, 8]])
    [2, 4]
    """
    if not lists:
        raise ValueError("multi_intersect requires at least one list")
    ordered = sorted(lists, key=len)
    result = list(ordered[0])
    for other in ordered[1:]:
        if not result:
            break
        result = kernel(result, other)
    return result


class BitmapSetIndex:
    """Bitmap (QFilter-analog) intersection over a fixed vertex universe.

    Each registered set is encoded once as a Python big-int with bit ``v``
    set for each member ``v``. Intersection is then a single ``&`` — the
    per-element cost is near zero, like QFilter's SIMD lanes — but encoding
    and decoding are linear passes, modelling the layout overhead that makes
    QFilter lose to the hybrid kernel on sparse graphs (paper Figure 10).

    >>> idx = BitmapSetIndex()
    >>> idx.intersect([1, 3, 5], [3, 4, 5])
    [3, 5]
    """

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        # id -> (keyed object, encoding). The object reference keeps the
        # id alive: CPython recycles ids of collected objects, so a bare
        # id key could silently alias a dead list's encoding.
        self._cache: Dict[int, Tuple[Sequence[int], int]] = {}

    def encode(self, values: Iterable[int]) -> int:
        """Pack a set of ints into a bitmap (uncached)."""
        bits = 0
        for v in values:
            # int() guards against numpy scalars: np.int64 << would
            # overflow past bit 62, Python ints are arbitrary precision.
            bits |= 1 << int(v)
        return bits

    def encode_cached(self, values: Sequence[int]) -> int:
        """Pack with memoization keyed on object identity.

        Candidate adjacency lists are immutable once built, so identity
        caching is sound and models QFilter's one-time layout conversion.
        """
        entry = self._cache.get(id(values))
        if entry is None:
            bits = self.encode(values)
            self._cache[id(values)] = (values, bits)
            return bits
        return entry[1]

    @staticmethod
    def decode(bits: int) -> List[int]:
        """Unpack a bitmap into a sorted list of ints."""
        result: List[int] = []
        while bits:
            low = bits & -bits
            result.append(low.bit_length() - 1)
            bits ^= low
        return result

    def intersect(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Intersect two sorted lists through their bitmap encodings."""
        return self.decode(self.encode_cached(a) & self.encode_cached(b))

    def multi_intersect(self, lists: Sequence[Sequence[int]]) -> List[int]:
        """Intersect several sorted lists through bitmaps."""
        if not lists:
            raise ValueError("multi_intersect requires at least one list")
        bits = self.encode_cached(lists[0])
        for other in lists[1:]:
            if not bits:
                break
            bits &= self.encode_cached(other)
        return self.decode(bits)

    def clear(self) -> None:
        """Drop all cached encodings."""
        self._cache.clear()


class QFilterIndex:
    """Base-and-state (BSR) intersection — the closest Python model of QFilter.

    QFilter (Han, Zou & Yu, SIGMOD'18) packs a sorted set into blocks:
    per block a *base* (the high bits) and a *state* bitmap of which of
    the next ``block_bits`` values are present; intersection merges the
    base arrays and ANDs the states of matching blocks.

    This reproduces QFilter's *trade-off*, not just its wins: when
    values cluster (dense neighborhoods), each base comparison covers
    many elements and the kernel beats element-wise merging; when values
    are scattered (sparse graphs), blocks hold ~1 element each and the
    base merge plus mask decoding is pure overhead — the crossover the
    paper's Figure 10 reports.

    >>> QFilterIndex().intersect([1, 3, 5, 200], [3, 5, 6, 200])
    [3, 5, 200]
    """

    __slots__ = ("_cache", "block_bits")

    def __init__(self, block_bits: int = 64) -> None:
        if block_bits < 2 or block_bits & (block_bits - 1):
            raise ValueError("block_bits must be a power of two >= 2")
        self.block_bits = block_bits
        # id -> (keyed object, encoding); see BitmapSetIndex for why the
        # object reference must be retained.
        self._cache: Dict[
            int, Tuple[Sequence[int], Tuple[List[int], List[int]]]
        ] = {}

    def encode(self, values: Sequence[int]) -> Tuple[List[int], List[int]]:
        """Pack a sorted list into parallel (bases, states) arrays."""
        shift = self.block_bits.bit_length() - 1
        mask = self.block_bits - 1
        bases: List[int] = []
        states: List[int] = []
        for v in values:
            v = int(v)  # numpy scalars would overflow the state shifts
            base = v >> shift
            if bases and bases[-1] == base:
                states[-1] |= 1 << (v & mask)
            else:
                bases.append(base)
                states.append(1 << (v & mask))
        return bases, states

    def encode_cached(
        self, values: Sequence[int]
    ) -> Tuple[List[int], List[int]]:
        """Pack with memoization keyed on object identity (one-time layout)."""
        entry = self._cache.get(id(values))
        if entry is None:
            packed = self.encode(values)
            self._cache[id(values)] = (values, packed)
            return packed
        return entry[1]

    @staticmethod
    def _intersect_packed(
        a: Tuple[List[int], List[int]], b: Tuple[List[int], List[int]]
    ) -> Tuple[List[int], List[int]]:
        """Merge two BSR encodings without decoding (the QFilter inner loop)."""
        bases_a, states_a = a
        bases_b, states_b = b
        out_bases: List[int] = []
        out_states: List[int] = []
        i = j = 0
        len_a, len_b = len(bases_a), len(bases_b)
        while i < len_a and j < len_b:
            base_a, base_b = bases_a[i], bases_b[j]
            if base_a == base_b:
                bits = states_a[i] & states_b[j]
                if bits:
                    out_bases.append(base_a)
                    out_states.append(bits)
                i += 1
                j += 1
            elif base_a < base_b:
                i += 1
            else:
                j += 1
        return out_bases, out_states

    def decode(self, packed: Tuple[List[int], List[int]]) -> List[int]:
        """Unpack a BSR encoding into a sorted list."""
        shift = self.block_bits.bit_length() - 1
        result: List[int] = []
        for base, bits in zip(*packed):
            prefix = base << shift
            while bits:
                low = bits & -bits
                result.append(prefix | (low.bit_length() - 1))
                bits ^= low
        return result

    def intersect(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Intersect two sorted lists through their BSR encodings.

        Inputs are encode-cached by identity: pass long-lived lists (e.g.
        candidate adjacency arrays), not temporaries — temporaries stay
        referenced by the cache until :meth:`clear`.
        """
        return self.decode(
            self._intersect_packed(
                self.encode_cached(a), self.encode_cached(b)
            )
        )

    def multi_intersect(self, lists: Sequence[Sequence[int]]) -> List[int]:
        """Intersect several sorted lists entirely in the packed domain.

        Only the *input* lists are encode-cached; intermediates never
        leave BSR form, so nothing short-lived enters the cache.
        """
        if not lists:
            raise ValueError("multi_intersect requires at least one list")
        ordered = sorted(lists, key=len)
        packed = self.encode_cached(ordered[0])
        for other in ordered[1:]:
            if not packed[0]:
                break
            packed = self._intersect_packed(packed, self.encode_cached(other))
        return self.decode(packed)

    def clear(self) -> None:
        """Drop all cached encodings."""
        self._cache.clear()

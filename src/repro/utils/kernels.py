"""Vectorized set-intersection kernel backends and their registry.

Section 3.3.2 / Figure 10 of the paper show that set-intersection kernels
dominate enumeration time once Algorithm 5 is in place. The scalar kernels
in :mod:`repro.utils.intersection` stay faithful to the paper's analysis
(merge vs galloping vs QFilter trade-offs), but they pay CPython's
per-element interpretation cost on every probe. This module keeps the
candidate data in numpy end-to-end instead:

* :class:`ScalarKernel` — the paper's hybrid merge/galloping kernel,
  wrapped in the backend interface (the reference semantics);
* :class:`NumpyKernel` — ``np.intersect1d`` on contiguous sorted arrays
  when cardinalities are similar, a ``np.searchsorted``-based vectorized
  galloping pass when they are skewed;
* :class:`BitsetKernel` — packed-``uint64`` bitmaps over the data-vertex
  universe; intersection is a word-wise ``&``, decoding is one
  ``np.unpackbits`` pass.  Wins when candidate sets are dense, pays the
  encode/decode overhead when they are sparse — the same trade-off the
  paper reports for QFilter;
* :class:`QFilterKernel` — the base-and-state model from
  :mod:`repro.utils.intersection`, registered so the property suite can
  cross-check every backend against the merge reference.

Backends are resolved by name through :func:`get_kernel`; ``"auto"``
(the default, also the ``REPRO_KERNEL`` environment fallback) picks the
bitset kernel when the candidate sets are dense relative to the data
graph and the numpy hybrid otherwise.

All kernels expect **sorted, duplicate-free arrays (or lists) of
non-negative ints** and return sorted results; numpy-backed kernels
return ``np.ndarray`` views/arrays of dtype ``int64``.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.intersection import (
    GALLOP_RATIO,
    QFilterIndex,
    intersect_hybrid,
    multi_intersect,
)

__all__ = [
    "KernelBackend",
    "ScalarKernel",
    "NumpyKernel",
    "BitsetKernel",
    "QFilterKernel",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "kernel_name",
    "AUTO_DENSITY_THRESHOLD",
]

#: Average candidate density (``avg |C(u)| / |V(G)|``) above which the auto
#: heuristic switches from the numpy hybrid to the bitset kernel. Word-wise
#: AND touches ``|V(G)|/64`` words and decoding ``|V(G)|/8`` bytes, so the
#: bitset only wins once the lists it replaces are a comparable fraction of
#: the universe.
AUTO_DENSITY_THRESHOLD = 1.0 / 16.0

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Default byte budget for the bitset kernel's cached encodings, in MB.
#: Overridable via the ``REPRO_BITSET_CACHE_MB`` environment variable —
#: the out-of-core regime (memmap-backed graphs larger than RAM) needs
#: this one unbounded per-graph cache to stop growing with the graph.
DEFAULT_BITSET_CACHE_MB = 64.0


def _bitset_cache_budget() -> int:
    """Resolve the encode-cache byte budget from the environment."""
    raw = os.environ.get("REPRO_BITSET_CACHE_MB")
    if raw is None:
        mb = DEFAULT_BITSET_CACHE_MB
    else:
        try:
            mb = float(raw)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_BITSET_CACHE_MB must be a number, got {raw!r}"
            ) from None
        if mb < 0:
            raise ConfigurationError(
                f"REPRO_BITSET_CACHE_MB must be >= 0, got {raw!r}"
            )
    return int(mb * 1024 * 1024)


def _as_i64(values: Sequence[int]) -> np.ndarray:
    """View ``values`` as an int64 array without copying when possible."""
    if isinstance(values, np.ndarray):
        if values.dtype == np.int64:
            return values
        return values.astype(np.int64)
    return np.asarray(values, dtype=np.int64)


class KernelBackend(ABC):
    """One pairwise/multiway set-intersection implementation.

    The enumeration engine only needs ``multi_intersect``; ``intersect``
    is the pairwise primitive the property suite cross-checks. Inputs are
    sorted duplicate-free int sequences; outputs are sorted.
    """

    #: Registry name, also reported in :class:`~repro.core.result.MatchResult`.
    name: str = "?"

    @abstractmethod
    def intersect(self, a: Sequence[int], b: Sequence[int]) -> Sequence[int]:
        """Pairwise sorted-set intersection."""

    def multi_intersect(self, lists: Sequence[Sequence[int]]) -> Sequence[int]:
        """Intersect several sorted sets, smallest-first.

        Folds pairwise, and short-circuits as soon as an intermediate
        result is empty — the remaining kernel calls are skipped.
        """
        if not lists:
            raise ValueError("multi_intersect requires at least one list")
        ordered = sorted(lists, key=len)
        result: Sequence[int] = ordered[0]
        for other in ordered[1:]:
            if len(result) == 0:
                break
            result = self.intersect(result, other)
        return result

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ScalarKernel(KernelBackend):
    """The paper's scalar hybrid kernel behind the backend interface."""

    name = "scalar"

    def intersect(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        return intersect_hybrid(a, b)

    def multi_intersect(self, lists: Sequence[Sequence[int]]) -> List[int]:
        return multi_intersect(lists, kernel=intersect_hybrid)


class NumpyKernel(KernelBackend):
    """Vectorized merge/galloping hybrid over contiguous sorted arrays.

    Similar cardinalities use ``np.intersect1d(assume_unique=True)`` (a
    vectorized sort-merge); skewed pairs probe the smaller array into the
    larger with one batched ``np.searchsorted`` — the galloping regime,
    executed as a single vectorized binary-search pass.

    >>> NumpyKernel().intersect([2, 4, 6], [1, 2, 3, 4]).tolist()
    [2, 4]
    """

    name = "numpy"

    def intersect(self, a: Sequence[int], b: Sequence[int]) -> np.ndarray:
        a = _as_i64(a)
        b = _as_i64(b)
        if a.size == 0 or b.size == 0:
            return _EMPTY_I64
        small, large = (a, b) if a.size <= b.size else (b, a)
        if large.size > GALLOP_RATIO * small.size:
            return self._gallop(small, large)
        return np.intersect1d(small, large, assume_unique=True)

    @staticmethod
    def _gallop(small: np.ndarray, large: np.ndarray) -> np.ndarray:
        """Batched binary search of ``small`` into ``large``."""
        pos = np.searchsorted(large, small)
        in_range = pos < large.size
        hit = np.zeros(small.size, dtype=bool)
        hit[in_range] = large[pos[in_range]] == small[in_range]
        return small[hit]

    def multi_intersect(self, lists: Sequence[Sequence[int]]) -> np.ndarray:
        if not lists:
            raise ValueError("multi_intersect requires at least one list")
        ordered = sorted((_as_i64(lst) for lst in lists), key=lambda arr: arr.size)
        result = ordered[0]
        for other in ordered[1:]:
            if result.size == 0:
                break
            result = self.intersect(result, other)
        return result


class BitsetKernel(KernelBackend):
    """Packed-uint64 bitset intersection over the vertex universe.

    Each input is encoded once (cached by object identity, mirroring
    QFilter's one-time layout conversion) as a ``uint64`` word array with
    bit ``v`` set for each member ``v``. Intersection ANDs the word arrays
    — 64 members per instruction — and decoding is one ``np.unpackbits``
    pass over the surviving words. Dense candidate sets amortize the
    encode/decode overhead; sparse ones do not, which is why the auto
    heuristic gates this backend on candidate density.

    >>> BitsetKernel().multi_intersect([[1, 3, 65], [3, 65, 70], [0, 3, 65]]).tolist()
    [3, 65]
    """

    name = "bitset"

    __slots__ = ("_cache", "_budget_bytes", "_cached_bytes")

    def __init__(self, budget_bytes: Optional[int] = None) -> None:
        # id -> (keyed object, words). The object reference keeps the id
        # alive; CPython recycles ids of collected objects. Ordered so
        # the byte-budgeted eviction below can drop least-recently-used
        # encodings first — without a bound this cache grows with the
        # number of distinct candidate arrays, i.e. with the graph, which
        # the out-of-core regime cannot afford.
        self._cache: "OrderedDict[int, Tuple[Sequence[int], np.ndarray]]" = (
            OrderedDict()
        )
        self._budget_bytes = (
            _bitset_cache_budget() if budget_bytes is None else budget_bytes
        )
        self._cached_bytes = 0

    @staticmethod
    def encode(values: Sequence[int]) -> np.ndarray:
        """Pack a sorted set into a uint64 word array (uncached)."""
        arr = _as_i64(values)
        if arr.size == 0:
            return np.empty(0, dtype=np.uint64)
        nwords = (int(arr[-1]) >> 6) + 1
        words = np.zeros(nwords, dtype=np.uint64)
        bits = np.left_shift(np.uint64(1), (arr & 63).astype(np.uint64))
        np.bitwise_or.at(words, arr >> 6, bits)
        return words

    @staticmethod
    def decode(words: np.ndarray) -> np.ndarray:
        """Unpack a word array into a sorted int64 array."""
        if words.size == 0:
            return _EMPTY_I64
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")
        return np.nonzero(bits)[0].astype(np.int64)

    def encode_cached(self, values: Sequence[int]) -> np.ndarray:
        """Pack with memoization keyed on object identity.

        Candidate adjacency arrays are immutable once built, so identity
        caching is sound; pass long-lived arrays, not temporaries. The
        cache holds at most ``REPRO_BITSET_CACHE_MB`` of encodings,
        evicting least-recently-used entries past the budget; an
        encoding alone larger than the whole budget is returned uncached.
        """
        key = id(values)
        entry = self._cache.get(key)
        if entry is not None:
            self._cache.move_to_end(key)
            return entry[1]
        words = self.encode(values)
        nbytes = int(words.nbytes)
        if nbytes > self._budget_bytes:
            return words
        while self._cache and self._cached_bytes + nbytes > self._budget_bytes:
            _, (_, evicted) = self._cache.popitem(last=False)
            self._cached_bytes -= int(evicted.nbytes)
        self._cache[key] = (values, words)
        self._cached_bytes += nbytes
        return words

    def intersect(self, a: Sequence[int], b: Sequence[int]) -> np.ndarray:
        wa = self.encode_cached(a)
        wb = self.encode_cached(b)
        n = min(wa.size, wb.size)
        if n == 0:
            return _EMPTY_I64
        return self.decode(wa[:n] & wb[:n])

    def multi_intersect(self, lists: Sequence[Sequence[int]]) -> np.ndarray:
        """Fold ANDs in the packed domain; decode once at the end.

        Short-circuits (skipping the remaining word ANDs) as soon as the
        accumulator has no bits set.
        """
        if not lists:
            raise ValueError("multi_intersect requires at least one list")
        ordered = sorted(lists, key=len)
        acc = self.encode_cached(ordered[0])
        for other in ordered[1:]:
            if acc.size == 0 or not acc.any():
                return _EMPTY_I64
            words = self.encode_cached(other)
            n = min(acc.size, words.size)
            acc = acc[:n] & words[:n]
        return self.decode(acc)

    def clear(self) -> None:
        """Drop all cached encodings."""
        self._cache.clear()
        self._cached_bytes = 0

    def cache_info(self) -> dict:
        """Entries, bytes held, and the byte budget of the encode cache."""
        return {
            "entries": len(self._cache),
            "bytes": self._cached_bytes,
            "budget_bytes": self._budget_bytes,
        }

    def __getstate__(self) -> dict:
        # The cache is keyed by object identity; ids do not survive a
        # process boundary (and a recycled id in the receiving process
        # would silently alias a different array). Ship the kernel empty.
        # A falsy state would make pickle skip __setstate__ and leave the
        # slot unset, hence the marker.
        return {"cache": "dropped", "budget_bytes": self._budget_bytes}

    def __setstate__(self, state: dict) -> None:
        self._cache = OrderedDict()
        self._cached_bytes = 0
        self._budget_bytes = state.get(
            "budget_bytes", _bitset_cache_budget()
        )


class QFilterKernel(KernelBackend):
    """The base-and-state (BSR) QFilter model behind the backend interface."""

    name = "qfilter"

    def __init__(self, block_bits: int = 64) -> None:
        self._index = QFilterIndex(block_bits=block_bits)

    def intersect(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        return self._index.intersect(a, b)

    def multi_intersect(self, lists: Sequence[Sequence[int]]) -> List[int]:
        return self._index.multi_intersect(lists)

    def clear(self) -> None:
        self._index.clear()

    def __getstate__(self) -> dict:
        # QFilterIndex memoizes encodings by object identity — same
        # cross-process hazard as BitsetKernel. Only the configuration
        # crosses the boundary; the receiver re-encodes lazily.
        return {"block_bits": self._index.block_bits}

    def __setstate__(self, state: dict) -> None:
        self._index = QFilterIndex(block_bits=state["block_bits"])


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Factories, not instances: caching backends (bitset, qfilter) key their
#: encodings on object identity, so each match run gets a fresh cache.
_REGISTRY: Dict[str, Callable[[], KernelBackend]] = {}


def register_kernel(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name`` (lower-cased)."""
    _REGISTRY[name.lower()] = factory


register_kernel("scalar", ScalarKernel)
register_kernel("numpy", NumpyKernel)
register_kernel("bitset", BitsetKernel)
register_kernel("qfilter", QFilterKernel)


def available_kernels() -> List[str]:
    """All registered backend names, plus the ``"auto"`` selector."""
    return sorted(_REGISTRY) + ["auto"]


def _auto_backend(data=None, candidates=None) -> KernelBackend:
    """The auto heuristic: bitset on dense candidate sets, numpy otherwise.

    ``data`` needs ``num_vertices``; ``candidates`` needs ``average_size``
    (duck-typed so this module stays below the graph/filtering layers).
    """
    if data is not None and candidates is not None:
        universe = getattr(data, "num_vertices", 0)
        avg = getattr(candidates, "average_size", 0.0)
        if universe and avg / universe >= AUTO_DENSITY_THRESHOLD:
            return BitsetKernel()
    return NumpyKernel()


KernelLike = Union[str, KernelBackend, None]


def get_kernel(name: KernelLike = None, *, data=None, candidates=None) -> KernelBackend:
    """Resolve a backend by name.

    ``None`` falls back to the ``REPRO_KERNEL`` environment variable, then
    to ``"auto"``. ``"auto"`` consults the optional ``data``/``candidates``
    context (candidate density) and returns a concrete backend. Backend
    instances pass through unchanged. Unknown names raise
    :class:`~repro.errors.ConfigurationError`.

    >>> get_kernel("scalar").name
    'scalar'
    >>> get_kernel("numpy").multi_intersect([[1, 2, 3], [2, 3, 4]]).tolist()
    [2, 3]
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = os.environ.get("REPRO_KERNEL") or "auto"
    key = name.strip().lower()
    if key == "auto":
        return _auto_backend(data=data, candidates=candidates)
    try:
        factory = _REGISTRY[key]
    except KeyError:
        known = ", ".join(available_kernels())
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; available: {known}"
        ) from None
    return factory()


def kernel_name(kernel: object) -> Optional[str]:
    """Best-effort display name for a kernel backend or callable."""
    if kernel is None:
        return None
    name = getattr(kernel, "name", None)
    if isinstance(name, str) and name != "?":
        return name
    return getattr(kernel, "__name__", type(kernel).__name__)

"""Timing helpers: a context-manager stopwatch and a cooperative deadline.

The paper measures preprocessing time and enumeration time separately and
kills queries after five minutes. :class:`Timer` provides the split
measurement; :class:`Deadline` provides the cooperative kill — the
enumeration engine polls it every few thousand expansion steps.
"""

from __future__ import annotations

import math
import time
from typing import Optional

__all__ = ["Timer", "Deadline"]


class Timer:
    """A simple stopwatch usable as a context manager.

    >>> with Timer() as t:
    ...     _ = sum(range(100))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time in milliseconds (the paper's reporting unit)."""
        return self.elapsed * 1000.0


class Deadline:
    """A wall-clock budget checked cooperatively.

    ``Deadline(None)`` never expires. ``remaining`` can go negative once
    expired, which callers may use for overshoot accounting.

    >>> Deadline(None).expired()
    False
    """

    __slots__ = ("_limit", "_start")

    def __init__(self, seconds: Optional[float]) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError("deadline must be positive (or None for no limit)")
        self._limit = seconds
        self._start = time.perf_counter()

    def expired(self) -> bool:
        """Whether the budget has run out."""
        if self._limit is None:
            return False
        return time.perf_counter() - self._start > self._limit

    @property
    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited)."""
        if self._limit is None:
            return math.inf
        return self._limit - (time.perf_counter() - self._start)

    @property
    def limit(self) -> Optional[float]:
        """The configured budget in seconds, or ``None``."""
        return self._limit

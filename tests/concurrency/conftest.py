"""Concurrency-suite safety net: a process-level deadlock watchdog.

Every test in this directory coordinates threads with barriers, events
and futures. A bug that deadlocks them would hang the whole pytest run
forever — worse than a failure. The autouse fixture below arms
``faulthandler.dump_traceback_later`` around each test: if a test runs
past the watchdog timeout, every thread's traceback is dumped to stderr
and the process exits hard, so CI (and the 50-consecutive-runs flake
gate) sees *which* threads were stuck instead of a silent timeout.

The budget is generous — the suite never sleeps on the wall clock (all
deadline scenarios run on :class:`repro.serve.FakeClock`), so a healthy
run finishes in seconds; only a real deadlock can reach the watchdog.
In CI the ``pytest-timeout`` plugin additionally boxes each test; that
plugin is not a local dependency, so this fixture is the portable
fallback.
"""

from __future__ import annotations

import faulthandler
import os

import pytest

#: Per-test watchdog budget in seconds (override: REPRO_CONCURRENCY_TEST_TIMEOUT).
WATCHDOG_SECONDS = float(os.environ.get("REPRO_CONCURRENCY_TEST_TIMEOUT", "120"))


@pytest.fixture(autouse=True)
def deadlock_watchdog():
    faulthandler.dump_traceback_later(WATCHDOG_SECONDS, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()

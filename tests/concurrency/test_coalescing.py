"""Coalescing parity: K identical requests, one execution, equal answers.

The deterministic recipe: replace the service's ``_run`` with a gated
version that blocks every worker on an Event. The first submit becomes
the leader and parks; because attachment happens synchronously inside
``submit`` (under the service lock, while the entry is still in-flight),
every later identical submit *must* attach as a waiter — no race, no
sleep. Releasing the gate lets the single execution run and fan out.
"""

from __future__ import annotations

import threading

import pytest

from repro.graph import Graph, erdos_renyi_graph, extract_query
from repro.serve import MatchService

K = 8


@pytest.fixture(scope="module")
def data():
    return erdos_renyi_graph(120, 6.0, 4, seed=33)


@pytest.fixture(scope="module")
def query(data):
    return extract_query(data, 5, seed=5)


def gated_service(data, **kwargs):
    """A service whose executions all park until ``gate`` is set."""
    service = MatchService(workers=K, **kwargs)
    service.add_graph("g", data)
    gate = threading.Event()
    inner_run = service._run

    def run_when_released(entry):
        gate.wait(timeout=60)
        inner_run(entry)

    service._run = run_when_released
    return service, gate


class TestCoalescingParity:
    def test_k_identical_requests_execute_once(self, data, query):
        solo = MatchService(workers=1)
        solo.add_graph("g", data)
        solo_result = solo.match(query, graph="g").result
        solo.close()

        service, gate = gated_service(data)
        try:
            futures = [
                service.submit(query, graph="g", tenant=f"t{i % 3}")
                for i in range(K)
            ]
            gate.set()
            responses = [f.result(timeout=60) for f in futures]
        finally:
            service.close()

        counters = service.metrics.counters
        assert counters["serve.executed"] == 1
        assert counters["serve.coalesced"] == K - 1
        assert counters["serve.completed"] == K
        assert sum(1 for r in responses if not r.coalesced) == 1
        assert sum(1 for r in responses if r.coalesced) == K - 1
        for response in responses:
            assert response.status == "ok"
            assert response.result.embeddings == solo_result.embeddings
            assert response.result.num_matches == solo_result.num_matches

    def test_barrier_released_clients_still_coalesce_to_one(self, data, query):
        # The adversarial version: K client *threads* submit through a
        # barrier. Submissions interleave arbitrarily, but the gate keeps
        # the first entry in-flight, so exactly one execution happens.
        service, gate = gated_service(data)
        barrier = threading.Barrier(K)
        futures = [None] * K
        errors = []

        def client(i):
            try:
                barrier.wait()
                futures[i] = service.submit(query, graph="g", tenant=f"t{i}")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(K)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            gate.set()
            responses = [f.result(timeout=60) for f in futures]
        finally:
            service.close()

        counters = service.metrics.counters
        assert counters["serve.executed"] == 1
        assert counters["serve.coalesced"] == K - 1
        first = responses[0].result.embeddings
        assert all(r.result.embeddings == first for r in responses)

    def test_different_queries_do_not_coalesce(self, data):
        queries = [extract_query(data, 5, seed=s) for s in (7, 8)]
        service, gate = gated_service(data)
        try:
            f1 = service.submit(queries[0], graph="g")
            f2 = service.submit(queries[1], graph="g")
            gate.set()
            for f in (f1, f2):
                assert f.result(timeout=60).status == "ok"
        finally:
            service.close()
        assert service.metrics.counters["serve.executed"] == 2
        assert service.metrics.counters.get("serve.coalesced", 0) == 0

    def test_isomorphic_but_renumbered_queries_do_not_coalesce(self, data):
        # Same fingerprint class, different vertex numbering: embeddings
        # differ per numbering, so sharing an execution would be wrong.
        q1 = Graph(labels=[0, 1, 0], edges=[(0, 1), (1, 2)])
        q2 = Graph(labels=[0, 0, 1], edges=[(0, 2), (2, 1)])
        service, gate = gated_service(data)
        try:
            f1 = service.submit(q1, graph="g")
            f2 = service.submit(q2, graph="g")
            gate.set()
            r1, r2 = f1.result(timeout=60), f2.result(timeout=60)
        finally:
            service.close()
        assert service.metrics.counters["serve.executed"] == 2
        assert r1.result.num_matches == r2.result.num_matches

    def test_coalescing_disabled_runs_every_request(self, data, query):
        service, gate = gated_service(data, coalesce=False)
        try:
            futures = [service.submit(query, graph="g") for _ in range(4)]
            gate.set()
            responses = [f.result(timeout=60) for f in futures]
        finally:
            service.close()
        assert service.metrics.counters["serve.executed"] == 4
        assert service.metrics.counters.get("serve.coalesced", 0) == 0
        first = responses[0].result.embeddings
        assert all(r.result.embeddings == first for r in responses)

"""Deadline and backpressure semantics, deterministic on a FakeClock.

No test here sleeps on the wall clock. Time is a
:class:`repro.serve.FakeClock` the test advances by hand; queue
occupancy is forced with a gated execution seam (an Event the worker
parks on), so every scenario — budget spent in the queue, queue full,
spent-at-admission — is driven to its exact boundary and asserted.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    DeadlineExceededError,
    InvalidQueryError,
    QueueFullError,
    ServiceClosedError,
    UnknownGraphError,
)
from repro.graph import Graph, erdos_renyi_graph, extract_query
from repro.serve import FakeClock, MatchService


@pytest.fixture(scope="module")
def data():
    return erdos_renyi_graph(100, 5.0, 4, seed=44)


@pytest.fixture(scope="module")
def query(data):
    return extract_query(data, 5, seed=2)


@pytest.fixture
def clock():
    return FakeClock()


def gated_service(data, clock, **kwargs):
    service = MatchService(workers=1, clock=clock, **kwargs)
    service.add_graph("g", data)
    gate = threading.Event()
    inner_run = service._run

    def run_when_released(entry):
        gate.wait(timeout=60)
        inner_run(entry)

    service._run = run_when_released
    return service, gate


class TestAdmission:
    def test_spent_budget_rejected_at_submit(self, data, clock, query):
        service = MatchService(workers=1, clock=clock)
        service.add_graph("g", data)
        try:
            with pytest.raises(DeadlineExceededError):
                service.submit(query, graph="g", budget=0.0)
            with pytest.raises(DeadlineExceededError):
                service.submit(query, graph="g", budget=-1.0)
            counters = service.metrics.counters
            assert counters["serve.rejected_deadline"] == 2
            # Nothing was admitted, nothing ran.
            assert counters.get("serve.admitted", 0) == 0
            assert counters.get("serve.executed", 0) == 0
        finally:
            service.close()

    def test_default_budget_applies_when_request_brings_none(
        self, data, clock, query
    ):
        service = MatchService(workers=1, clock=clock, default_budget=0.0)
        service.add_graph("g", data)
        try:
            with pytest.raises(DeadlineExceededError):
                service.submit(query, graph="g")
            # An explicit budget overrides the default.
            assert service.match(query, graph="g", budget=5.0).status == "ok"
        finally:
            service.close()

    def test_unknown_graph_and_invalid_query_rejected(self, data, clock, query):
        service = MatchService(workers=1, clock=clock)
        service.add_graph("g", data)
        try:
            with pytest.raises(UnknownGraphError):
                service.submit(query, graph="missing")
            with pytest.raises(InvalidQueryError):
                # Two vertices: below the paper's minimum query size.
                service.submit(
                    Graph(labels=[0, 1], edges=[(0, 1)]), graph="g"
                )
        finally:
            service.close()

    def test_closed_service_rejects(self, data, clock, query):
        service = MatchService(workers=1, clock=clock)
        service.add_graph("g", data)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(query, graph="g")


class TestQueueDeadlines:
    def test_budget_spent_in_queue_expires_without_enumeration(
        self, data, clock, query
    ):
        service, gate = gated_service(data, clock)
        try:
            blocker = service.submit(query, graph="g")  # occupies the worker
            victim = service.submit(
                query, graph="g", budget=1.0, match_limit=1
            )
            # The victim's budget burns down while it waits in the queue.
            clock.advance(2.0)
            gate.set()
            blocker_response = blocker.result(timeout=60)
            victim_response = victim.result(timeout=60)
        finally:
            service.close()

        assert blocker_response.status == "ok"
        assert victim_response.status == "expired"
        assert victim_response.result is None
        counters = service.metrics.counters
        assert counters["serve.expired"] == 1
        # The expired request never reached an engine: the blocker (and
        # the victim's coalesced ride on it) is the only execution.
        assert counters["serve.executed"] == 1

    def test_all_waiters_expired_skips_execution_entirely(
        self, data, clock, query
    ):
        # Disable coalescing so the victim queues its own execution.
        service, gate = gated_service(data, clock, coalesce=False)
        try:
            blocker = service.submit(query, graph="g")
            victim = service.submit(query, graph="g", budget=1.0)
            clock.advance(5.0)
            gate.set()
            assert blocker.result(timeout=60).status == "ok"
            assert victim.result(timeout=60).status == "expired"
        finally:
            service.close()
        # Exactly one enumeration: the victim's slot ran nothing.
        assert service.metrics.counters["serve.executed"] == 1
        assert service.metrics.counters["serve.expired"] == 1

    def test_live_budget_survives_queueing(self, data, clock, query):
        service, gate = gated_service(data, clock)
        try:
            blocker = service.submit(query, graph="g")
            patient = service.submit(query, graph="g", budget=10.0)
            clock.advance(2.0)  # well within budget
            gate.set()
            assert blocker.result(timeout=60).status == "ok"
            assert patient.result(timeout=60).status == "ok"
        finally:
            service.close()
        assert service.metrics.counters.get("serve.expired", 0) == 0


class TestBackpressure:
    def test_full_queue_rejects_immediately(self, data, clock, query):
        # Depth 2: one running + one queued. Distinct queries defeat
        # coalescing so each submit needs its own slot.
        queries = [extract_query(data, 5, seed=s) for s in range(3)]
        service, gate = gated_service(data, clock, max_queue_depth=2)
        try:
            first = service.submit(queries[0], graph="g")
            second = service.submit(queries[1], graph="g")
            with pytest.raises(QueueFullError):
                service.submit(queries[2], graph="g")
            counters = dict(service.metrics.counters)
            gate.set()
            assert first.result(timeout=60).status == "ok"
            assert second.result(timeout=60).status == "ok"
        finally:
            service.close()
        assert counters["serve.rejected_queue_full"] == 1
        assert service.queue_depth_peak == 2

    def test_coalesced_requests_bypass_the_queue_bound(
        self, data, clock, query
    ):
        # Identical requests ride the in-flight execution's slot instead
        # of consuming new ones: depth 1 still admits all of them.
        service, gate = gated_service(data, clock, max_queue_depth=1)
        try:
            futures = [service.submit(query, graph="g") for _ in range(5)]
            gate.set()
            responses = [f.result(timeout=60) for f in futures]
        finally:
            service.close()
        assert all(r.status == "ok" for r in responses)
        assert service.metrics.counters["serve.executed"] == 1
        assert service.metrics.counters["serve.coalesced"] == 4

    def test_slots_free_after_completion(self, data, clock, query):
        service, gate = gated_service(data, clock, max_queue_depth=1)
        gate.set()  # no parking: executions drain normally
        try:
            for _ in range(3):
                assert service.match(query, graph="g").status == "ok"
        finally:
            service.close()
        assert service.metrics.counters["serve.executed"] == 3

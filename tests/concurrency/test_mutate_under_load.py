"""Mutation under concurrent match load: snapshot isolation per epoch.

One dynamic resident graph, many matcher threads, one mutator thread.
The serving tier's contract is epoch-versioned reads: every response
reports the epoch its execution ran against, and its embeddings must be
*exactly* the match set of that epoch's snapshot — never a torn read
mixing two epochs, regardless of how mutations interleave with
enumerations. The mutator is the only writer, so it can record the
authoritative ``(epoch, snapshot)`` history as it goes; the matchers'
responses are checked against that history after the fact.

Also under load: the standing subscription's embedding set must land on
the final snapshot's exact match set, and the service counters must
balance (no lost increments). No wall-clock sleeps anywhere — the
threads contend on the real locks, and the suite watchdog (conftest)
catches deadlocks.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.session import MatchSession
from repro.dynamic import DynamicGraph
from repro.graph import erdos_renyi_graph, extract_query
from repro.serve import MatchService

THREADS = 6
ROUNDS = 8
BATCHES = 12


@pytest.fixture(scope="module")
def base():
    return erdos_renyi_graph(60, 4.0, 3, seed=33)


@pytest.fixture(scope="module")
def queries(base):
    return [extract_query(base, 4, seed=s) for s in (1, 2)]


def run_threads(workers):
    """Start one thread per callable behind a barrier; re-raise errors."""
    barrier = threading.Barrier(len(workers))
    errors = []

    def wrapped(fn):
        try:
            barrier.wait()
            fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    pool = [
        threading.Thread(target=wrapped, args=(fn,), daemon=True)
        for fn in workers
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    if errors:
        raise errors[0]


def test_every_response_is_exact_for_its_reported_epoch(base, queries):
    dyn = DynamicGraph(base)
    service = MatchService(workers=4)
    service.add_graph("live", dyn)
    subscription = service.session_for("watcher", "live").subscribe(queries[0])

    # The single writer records the authoritative snapshot history.
    snapshots = {0: dyn.snapshot()}
    toggles = sorted(base.edges())[:: max(1, base.num_edges // 8)][:8]

    def mutator():
        for i in range(BATCHES):
            if i % 2 == 0:
                batch = [("remove_edge", u, v) for u, v in toggles]
            else:
                batch = [("add_edge", u, v) for u, v in toggles]
                if i % 4 == 3:
                    # Grow the graph too: a vertex wired onto a toggle edge.
                    batch.append(("add_vertex", 0))
            applied = service.mutate("live", batch)
            snapshots[applied.epoch] = dyn.snapshot()

    responses = []
    record_lock = threading.Lock()

    def matcher(tid):
        def run():
            mine = []
            for round_ in range(ROUNDS):
                query_id = (tid + round_) % len(queries)
                response = service.match(
                    queries[query_id],
                    graph="live",
                    tenant=f"tenant-{tid}",
                )
                assert response.ok
                mine.append(
                    (
                        response.epoch,
                        query_id,
                        response.result.num_matches,
                        tuple(sorted(response.result.embeddings)),
                    )
                )
            with record_lock:
                responses.extend(mine)

        return run

    try:
        run_threads([mutator] + [matcher(tid) for tid in range(THREADS)])

        # Every response names an epoch the writer actually produced, and
        # its embeddings are byte-for-byte the match set of that epoch's
        # snapshot — snapshot isolation, checked exactly.
        assert len(responses) == THREADS * ROUNDS
        reference = {}
        for epoch, query_id, num_matches, embeddings in responses:
            assert epoch in snapshots
            key = (epoch, query_id)
            if key not in reference:
                ref_session = MatchSession(snapshots[epoch])
                reference[key] = ref_session.match(queries[query_id])
            assert num_matches == reference[key].num_matches
            assert embeddings == tuple(sorted(reference[key].embeddings))

        # The standing query landed on the final snapshot's exact set.
        final_epoch = max(snapshots)
        assert subscription.epoch == final_epoch
        final_reference = MatchSession(snapshots[final_epoch]).match(queries[0])
        assert subscription.matches() == sorted(
            tuple(e) for e in final_reference.embeddings
        )

        # Counter integrity: nothing lost under contention.
        counters = service.metrics.counters
        assert counters["serve.mutations"] == BATCHES
        assert counters["serve.requests"] == THREADS * ROUNDS
        assert counters["serve.completed"] == THREADS * ROUNDS
        assert counters.get("serve.expired", 0) == 0
        assert dyn.epoch == BATCHES
    finally:
        service.close()


def test_session_level_mutate_serializes_with_matches(base, queries):
    """MatchSession.mutate racing MatchSession.match on one shared session.

    Weaker oracle than the service test (no per-response epoch history at
    this layer), but it drives the session's own locks: every match must
    observe *some* consistent epoch — its stamped ``session.data_epoch``
    must be one the mutator actually produced, and its result must equal
    the reference for that epoch.
    """
    dyn = DynamicGraph(base)
    session = MatchSession(dyn)
    snapshots = {0: dyn.snapshot()}
    toggles = sorted(base.edges())[:6]

    def mutator():
        for i in range(BATCHES):
            op = "remove_edge" if i % 2 == 0 else "add_edge"
            outcome = session.mutate([(op, u, v) for u, v in toggles])
            snapshots[outcome.epoch] = dyn.snapshot()

    results = []
    record_lock = threading.Lock()

    def matcher(tid):
        def run():
            mine = []
            for _ in range(ROUNDS):
                result = session.match(queries[tid % len(queries)])
                mine.append(
                    (
                        result.metrics.counters["session.data_epoch"],
                        tid % len(queries),
                        tuple(sorted(result.embeddings)),
                    )
                )
            with record_lock:
                results.extend(mine)

        return run

    try:
        run_threads([mutator] + [matcher(tid) for tid in range(THREADS)])
        reference = {}
        for epoch, query_id, embeddings in results:
            assert epoch in snapshots
            key = (epoch, query_id)
            if key not in reference:
                ref = MatchSession(snapshots[epoch]).match(queries[query_id])
                reference[key] = tuple(sorted(ref.embeddings))
            assert embeddings == reference[key]
        assert session.metrics.counters["session.mutations"] == BATCHES
        assert session.metrics.counters["session.queries"] == THREADS * ROUNDS
    finally:
        session.close()

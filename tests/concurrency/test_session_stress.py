"""MatchSession under concurrent load: correctness and counter integrity.

One :class:`~repro.core.session.MatchSession` is shared by many threads,
which is exactly the serving tier's usage (every request for one
``(tenant, graph)`` pair lands on one session). The session's caches and
counters are lock-guarded; these tests are the load that would expose a
missing lock:

* every thread's results must be byte-identical to a single-threaded
  reference run (enumeration state must not leak across threads);
* the session's counters must balance exactly — ``session.queries``
  equals the submitted total and each cache's ``hits + misses`` equals
  its lookups — which fails under lost ``+= 1`` updates;
* the plan cache's LRU bookkeeping must survive concurrent reordering.

A barrier lines all workers up before the first query so the cache-miss
window (every thread compiling the same cold fingerprint at once) is
actually contested.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.plan import LRUCache
from repro.core.session import MatchSession
from repro.graph import erdos_renyi_graph, extract_query

THREADS = 8
ROUNDS = 6


@pytest.fixture(scope="module")
def data():
    return erdos_renyi_graph(150, 6.0, 4, seed=21)


@pytest.fixture(scope="module")
def query_pool(data):
    # Distinct extracted patterns: some shared by all threads, some
    # per-thread, so both cache-hit and cache-miss paths are contested.
    return [extract_query(data, 5, seed=s) for s in range(2 + THREADS)]


def run_workers(worker, threads=THREADS):
    """Start ``threads`` workers behind a barrier; re-raise their errors."""
    barrier = threading.Barrier(threads)
    errors = []

    def wrapped(tid):
        try:
            barrier.wait()
            worker(tid)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    pool = [
        threading.Thread(target=wrapped, args=(tid,), daemon=True)
        for tid in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    if errors:
        raise errors[0]


class TestSharedSessionStress:
    def test_results_identical_to_single_threaded_reference(
        self, data, query_pool
    ):
        # Reference: each query's embeddings from a fresh session.
        reference = {}
        ref_session = MatchSession(data)
        for i, q in enumerate(query_pool):
            reference[i] = ref_session.match(q, match_limit=500).embeddings

        session = MatchSession(data)
        results = {}
        lock = threading.Lock()

        def worker(tid):
            # Every thread hits the shared queries (0, 1) plus its own.
            mine = [0, 1, 2 + tid]
            local = []
            for round_no in range(ROUNDS):
                for qi in mine:
                    result = session.match(
                        query_pool[qi], match_limit=500, validate=False
                    )
                    local.append((qi, result.embeddings))
            with lock:
                results[tid] = local

        run_workers(worker)

        assert set(results) == set(range(THREADS))
        for tid, local in results.items():
            assert len(local) == ROUNDS * 3
            for qi, embeddings in local:
                assert embeddings == reference[qi], (
                    f"thread {tid} got different embeddings for query {qi}"
                )

    def test_counters_balance_exactly(self, data, query_pool):
        session = MatchSession(data)

        def worker(tid):
            for _ in range(ROUNDS):
                session.match(query_pool[0], match_limit=100, validate=False)
                session.match(
                    query_pool[2 + tid], match_limit=100, validate=False
                )

        run_workers(worker)

        total = THREADS * ROUNDS * 2
        counters = session.metrics.counters
        assert counters["session.queries"] == total
        assert (
            counters["session.plan_cache_hits"]
            + counters["session.plan_cache_misses"]
            == total
        )
        info = session.cache_info()
        assert info["plan"]["hits"] + info["plan"]["misses"] == total
        # Lost updates would leave hits+misses short of the lookup count;
        # LRU corruption would typically show as a KeyError/size blowup.
        assert info["plan"]["size"] <= 1 + THREADS

    def test_count_and_has_match_agree_under_load(self, data, query_pool):
        session = MatchSession(data)
        expected = MatchSession(data).count_matches(query_pool[0])
        observed = []
        lock = threading.Lock()

        def worker(tid):
            local = []
            for _ in range(ROUNDS):
                local.append(session.count_matches(query_pool[0]))
                local.append(session.has_match(query_pool[0]))
            with lock:
                observed.extend(local)

        run_workers(worker)

        counts = [x for x in observed if not isinstance(x, bool)]
        flags = [x for x in observed if isinstance(x, bool)]
        assert counts == [expected] * (THREADS * ROUNDS)
        assert flags == [expected > 0] * (THREADS * ROUNDS)


class TestLRUCacheStress:
    def test_hammered_cache_keeps_exact_accounting(self):
        cache = LRUCache(capacity=8)
        lookups_per_thread = 400

        def worker(tid):
            for i in range(lookups_per_thread):
                key = (tid, i % 12) if i % 3 else ("shared", i % 12)
                if cache.get(key) is None:
                    cache.put(key, i)

        run_workers(worker)

        info = cache.info()
        assert info["hits"] + info["misses"] == THREADS * lookups_per_thread
        assert info["size"] <= 8

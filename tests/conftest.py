"""Shared pytest configuration: path setup and common fixtures."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make `from fixtures import ...` work from any test subdirectory.
sys.path.insert(0, str(Path(__file__).parent))

from fixtures import PAPER_DATA, PAPER_QUERY  # noqa: E402

from repro.graph import Graph, erdos_renyi_graph  # noqa: E402


@pytest.fixture
def paper_query() -> Graph:
    """The Figure 1(a) query graph."""
    return PAPER_QUERY


@pytest.fixture
def paper_data() -> Graph:
    """The Figure 1(b) data graph."""
    return PAPER_DATA


@pytest.fixture
def triangle() -> Graph:
    """A labeled triangle."""
    return Graph(labels=[0, 1, 2], edges=[(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def small_random() -> Graph:
    """A fixed small random graph for deterministic unit tests."""
    return erdos_renyi_graph(30, 4.0, 3, seed=99)

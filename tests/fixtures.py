"""Shared test fixtures, including the paper's Figure 1 running example.

The query/data pair below is reconstructed from the paper's worked examples
(3.1-3.4) so that every documented intermediate result can be asserted:

* labels: A=0, B=1, C=2, D=3;
* query ``q``: u0(A)-u1(B), u0-u2(C), u1-u2, u1-u3(D), u2-u3 — the profile
  of u1 within distance 1 is ABCD, as in the paper;
* the BFS tree from u0 has tree edges (u0,u1), (u0,u2), (u1,u3) and
  non-tree edges (u1,u2), (u2,u3), matching the thick lines of Figure 1;
* GraphQL's local pruning yields C(u0)={v0}, C(u1)={v2,v4,v6},
  C(u2)={v1,v3,v5}, C(u3)={v10,v12} (Example 3.1), the global refinement
  removes v1 and v6;
* CFL/CECI converge to C(u1)={v2,v4}, C(u2)={v3,v5} (Examples 3.2-3.3),
  DP-iso additionally removes v2 (it "conducts more refinement", §5.1),
  and A^{u1}_{u3}(v4) = {v10, v12};
* exactly two matches exist: (v0,v4,v3,v10) and (v0,v4,v5,v12) — the
  latter is the match quoted in the paper's introduction.
"""

from __future__ import annotations

from repro.graph import Graph

A, B, C, D = 0, 1, 2, 3

#: Query graph of Figure 1(a). Vertices: u0=A, u1=B, u2=C, u3=D.
PAPER_QUERY = Graph(
    labels=[A, B, C, D],
    edges=[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)],
)

#: Data graph of Figure 1(b): 13 vertices v0..v12.
PAPER_DATA = Graph(
    labels=[
        A,  # v0
        C,  # v1
        B,  # v2
        C,  # v3
        B,  # v4
        C,  # v5
        B,  # v6
        D,  # v7
        B,  # v8
        C,  # v9
        D,  # v10
        D,  # v11
        D,  # v12
    ],
    edges=[
        (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6),
        (1, 2), (1, 7),
        (2, 12),
        (3, 4), (3, 10),
        (4, 5), (4, 10), (4, 12),
        (5, 12),
        (6, 9), (6, 11),
        (8, 9),
    ],
)

#: The two matches of PAPER_QUERY in PAPER_DATA, as tuples indexed by query
#: vertex: mapping[i] is the data vertex matched to query vertex u_i.
PAPER_MATCHES = frozenset({(0, 4, 3, 10), (0, 4, 5, 12)})

#: Candidate sets after GraphQL's local pruning (Example 3.1).
GQL_LOCAL_CANDIDATES = {0: [0], 1: [2, 4, 6], 2: [1, 3, 5], 3: [10, 12]}

#: Final candidate sets after CFL/CECI refinement (Examples 3.2-3.3) and
#: after GraphQL's global refinement.
REFINED_CANDIDATES = {0: [0], 1: [2, 4], 2: [3, 5], 3: [10, 12]}

#: DP-iso's (and the steady state's) stronger result: v2 is also pruned.
DPISO_CANDIDATES = {0: [0], 1: [4], 2: [3, 5], 3: [10, 12]}

"""Contract tests: what breaks when a component violates its invariant.

The framework's correctness rests on two contracts — filter completeness
and order connectivity. These tests *inject* violations and assert the
documented failure mode, so the contracts stay visible and the
surrounding checks stay honest.
"""

import pytest

from fixtures import PAPER_DATA, PAPER_MATCHES, PAPER_QUERY

from repro.enumeration import BacktrackingEngine, CandidateScanLC, IntersectionLC
from repro.filtering import AuxiliaryStructure, CandidateSets, GraphQLFilter
from repro.filtering.base import Filter
from repro.ordering import GraphQLOrdering, validate_order


class _IncompleteFilter(Filter):
    """Deliberately broken: drops v4, which every match uses."""

    name = "BROKEN"

    def run(self, query, data):
        good = GraphQLFilter().run(query, data)
        return CandidateSets(
            query,
            [[v for v in good[u] if v != 4] for u in query.vertices()],
        )


class TestFilterCompletenessContract:
    def test_incomplete_filter_loses_matches(self):
        """An incomplete filter silently loses answers — this is WHY the
        completeness property test exists for every real filter."""
        candidates = _IncompleteFilter().run(PAPER_QUERY, PAPER_DATA)
        aux = AuxiliaryStructure.build(
            PAPER_QUERY, PAPER_DATA, candidates, scope="all"
        )
        order = GraphQLOrdering().order(PAPER_QUERY, PAPER_DATA, candidates)
        out = BacktrackingEngine(IntersectionLC()).run(
            PAPER_QUERY, PAPER_DATA, candidates, aux, order
        )
        assert out.num_matches == 0  # both true matches map u1 -> v4

    def test_real_filters_keep_match_images(self):
        candidates = GraphQLFilter().run(PAPER_QUERY, PAPER_DATA)
        for embedding in PAPER_MATCHES:
            for u, v in enumerate(embedding):
                assert candidates.contains(u, v)


class TestOrderConnectivityContract:
    def test_disconnected_order_detected(self):
        from repro.graph import Graph

        path = Graph(labels=[0] * 4, edges=[(0, 1), (1, 2), (2, 3)])
        with pytest.raises(ValueError, match="backward neighbor"):
            validate_order(path, [0, 3, 1, 2])

    def test_engine_survives_anchor_free_positions(self):
        """Spectrum experiments may hand the engine a disconnected order;
        LC methods must fall back to full candidate scans, producing the
        right answer at cartesian-product cost."""
        candidates = GraphQLFilter().run(PAPER_QUERY, PAPER_DATA)
        # Query edges: (0,1),(0,2),(1,2),(1,3),(2,3). Order [3, 0, ...]:
        # u0 has no backward neighbor (not adjacent to u3).
        order = [3, 0, 1, 2]
        out = BacktrackingEngine(CandidateScanLC()).run(
            PAPER_QUERY, PAPER_DATA, candidates, None, order
        )
        assert set(out.embeddings) == PAPER_MATCHES


class TestSpecWiringContract:
    def test_lc_without_required_candidates_rejected(self):
        from repro.errors import ConfigurationError

        engine = BacktrackingEngine(CandidateScanLC())
        with pytest.raises(ConfigurationError):
            engine.run(PAPER_QUERY, PAPER_DATA, None, None, [0, 1, 2, 3])

    def test_intersection_without_auxiliary_rejected(self):
        from repro.errors import ConfigurationError

        candidates = GraphQLFilter().run(PAPER_QUERY, PAPER_DATA)
        engine = BacktrackingEngine(IntersectionLC())
        with pytest.raises(ConfigurationError):
            engine.run(PAPER_QUERY, PAPER_DATA, candidates, None, [0, 1, 2, 3])
"""Integration: every algorithm returns identical results on shared instances.

The core claim of the common-framework methodology: filtering, ordering and
enumeration choices change *cost*, never *answers*. All presets, the
Glasgow solver and the oracles must agree embedding-for-embedding.
"""

import pytest

from repro import available_algorithms, match
from repro.baselines import vf2_matches
from repro.glasgow import glasgow_match
from repro.graph import extract_query, rmat_graph
from repro.study import load_dataset

ALL_PRESETS = [n for n in available_algorithms() if n != "recommended"]


@pytest.fixture(scope="module")
def instances():
    """A spread of query/data pairs: labeled, near-unlabeled, dense, sparse."""
    cases = []
    rich = rmat_graph(250, 8.0, 6, seed=51, clustering=0.3)
    poor = rmat_graph(250, 6.0, 2, seed=52, clustering=0.3)
    for i, host in enumerate([rich, poor]):
        for size in (4, 6):
            cases.append((extract_query(host, size, seed=100 + 7 * i + size), host))
    return cases


class TestAllPresetsAgree:
    def test_identical_embeddings(self, instances):
        for query, data in instances:
            reference = vf2_matches(query, data)
            for name in ALL_PRESETS + ["recommended"]:
                result = match(
                    query,
                    data,
                    algorithm=name,
                    match_limit=None,
                    store_limit=len(reference) + 1,
                )
                assert result.solved, name
                assert result.num_matches == len(reference), name
                assert set(result.embeddings) == set(reference), (
                    name,
                    query.num_vertices,
                )

    def test_glasgow_agrees(self, instances):
        for query, data in instances:
            reference = vf2_matches(query, data)
            result = glasgow_match(
                query, data, match_limit=None, store_limit=len(reference) + 1
            )
            assert set(result.embeddings) == set(reference)


class TestOnDatasetStandins:
    @pytest.mark.parametrize("key", ["ye", "yt", "wn"])
    def test_counts_agree_across_headliners(self, key):
        data = load_dataset(key, scale=0.25)
        query = extract_query(data, 6, seed=5)
        counts = {
            name: match(
                query, data, algorithm=name, match_limit=None, time_limit=10.0
            ).num_matches
            for name in ["GQL-opt", "RI-opt", "CFL", "CECI", "DP", "GQLfs", "QSI"]
        }
        assert len(set(counts.values())) == 1, counts


class TestMatchCapConsistency:
    def test_capped_runs_stop_at_cap(self, instances):
        query, data = instances[0]
        full = match(query, data, algorithm="GQL-opt", match_limit=None)
        if full.num_matches > 3:
            capped = match(query, data, algorithm="GQL-opt", match_limit=3)
            assert capped.num_matches == 3
            # Every capped embedding is a true embedding.
            assert set(capped.embeddings) <= set(full.embeddings)

"""Integration: the whole pipeline is deterministic across processes.

DESIGN.md promises determinism (seeded generators, id tie-breaks); this
test runs the same pipeline in two fresh interpreter processes — with
different ``PYTHONHASHSEED`` values, so any accidental dependence on set
or dict iteration order would surface — and compares results exactly.
"""

import os
import subprocess
import sys

SCRIPT = """
import json
from repro import match
from repro.study import load_dataset
from repro.graph import extract_query

data = load_dataset("ye", scale=0.3)
query = extract_query(data, 7, seed=42, density="dense")
out = {}
for name in ["GQL-opt", "RIfs", "CFL", "DP", "QSI"]:
    result = match(query, data, algorithm=name, match_limit=None)
    out[name] = {
        "count": result.num_matches,
        "embeddings": sorted(result.embeddings),
        "order": result.order,
        "calls": result.stats.recursion_calls,
    }
print(json.dumps(out, sort_keys=True))
"""


def _run(hash_seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_identical_across_hash_seeds():
    assert _run("0") == _run("12345")


class TestSessionEmbeddingOrder:
    """MatchSession.match must emit embeddings in one canonical order.

    The QA differential runner compares embedding *lists*, not just sets,
    for the session and edge-shuffle checks — so the order must be
    identical across kernel backends and across plan/prep cache hit vs
    miss (a cache hit swaps in a previously-compiled plan; it must not
    perturb enumeration order).
    """

    def _session_case(self):
        from repro.graph import extract_query, rmat_graph

        data = rmat_graph(200, 6.0, 4, seed=9)
        query = extract_query(data, 5, seed=4)
        return query, data

    def test_order_identical_across_kernels(self):
        from repro.core import MatchSession

        query, data = self._session_case()
        reference = None
        for kernel in ["scalar", "numpy", "bitset", "qfilter"]:
            session = MatchSession(data, kernel=kernel)
            result = session.match(query, algorithm="CECI", match_limit=None)
            embeddings = list(result.embeddings)
            if reference is None:
                reference = embeddings
            else:
                assert embeddings == reference, f"{kernel} reordered output"

    def test_order_identical_cache_hit_vs_miss(self):
        from repro.core import MatchSession

        query, data = self._session_case()
        session = MatchSession(data)
        miss = session.match(query, algorithm="GQL-opt", match_limit=None)
        hit = session.match(query, algorithm="GQL-opt", match_limit=None)
        assert list(hit.embeddings) == list(miss.embeddings)
        assert hit.num_matches == miss.num_matches

    def test_session_matches_oneshot_order(self):
        from repro.core import MatchSession, match

        query, data = self._session_case()
        session = MatchSession(data)
        in_session = session.match(query, algorithm="GQL-opt",
                                   match_limit=None)
        oneshot = match(query, data, algorithm="GQL-opt", match_limit=None)
        assert list(in_session.embeddings) == list(oneshot.embeddings)

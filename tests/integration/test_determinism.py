"""Integration: the whole pipeline is deterministic across processes.

DESIGN.md promises determinism (seeded generators, id tie-breaks); this
test runs the same pipeline in two fresh interpreter processes — with
different ``PYTHONHASHSEED`` values, so any accidental dependence on set
or dict iteration order would surface — and compares results exactly.
"""

import os
import subprocess
import sys

SCRIPT = """
import json
from repro import match
from repro.study import load_dataset
from repro.graph import extract_query

data = load_dataset("ye", scale=0.3)
query = extract_query(data, 7, seed=42, density="dense")
out = {}
for name in ["GQL-opt", "RIfs", "CFL", "DP", "QSI"]:
    result = match(query, data, algorithm=name, match_limit=None)
    out[name] = {
        "count": result.num_matches,
        "embeddings": sorted(result.embeddings),
        "order": result.order,
        "calls": result.stats.recursion_calls,
    }
print(json.dumps(out, sort_keys=True))
"""


def _run(hash_seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_identical_across_hash_seeds():
    assert _run("0") == _run("12345")

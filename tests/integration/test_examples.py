"""Integration: every example script runs to completion.

Executed as subprocesses with a reduced ``REPRO_SCALE`` so the whole file
stays fast; output sanity is spot-checked.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, *args: str) -> str:
    env = dict(os.environ, REPRO_SCALE="0.25")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_discovered():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 5


def test_quickstart():
    out = run_example("quickstart.py")
    assert "matches found : 6" in out
    assert "available algorithms" in out


def test_protein_motif_search():
    out = run_example("protein_motif_search.py")
    assert "feed-forward triangle" in out
    assert "occurrences found" in out


def test_social_network_patterns():
    out = run_example("social_network_patterns.py")
    assert "fastest:" in out
    assert "matches" in out


def test_algorithm_comparison():
    out = run_example("algorithm_comparison.py", "ye")
    assert "Leaderboard" in out
    for name in ("GQLfs", "RIfs", "GLW"):
        assert name in out


def test_graph_database_search():
    out = run_example("graph_database_search.py")
    assert "containing graphs" in out
    assert "filtered w/o work" in out


def test_serve_quickstart():
    out = run_example("serve_quickstart.py")
    assert "requests admitted     : 7" in out
    # How many of the 6 concurrent squares coalesce depends on thread
    # interleaving; the example itself asserts answer parity.
    assert "enumerations executed" in out
    assert "coalesced (saved runs)" in out

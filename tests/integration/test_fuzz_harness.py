"""End-to-end fuzz harness acceptance: catch, shrink, and replay a bug.

The central claim of the QA subsystem is not "healthy code fuzzes clean"
(also tested here) but "a real kernel bug is *caught*, *shrunk* to a
debuggable size, and *replayable* from the JSON repro it leaves behind".
We inject a classic off-by-one into ``NumpyKernel.intersect`` — dropping
the largest element of any intersection with two or more hits — and
require the whole pipeline to fire.
"""

import json

import pytest

from repro.qa import load_repro, plant_case, replay_repro, run_case, run_fuzz
from repro.utils.kernels import NumpyKernel

#: Presets trimmed to keep the healthy smoke run fast; the kernel sweep
#: (which the injected bug must trip) is always part of run_case.
SMOKE_RUN_OPTIONS = dict(presets=["GQL", "CECI", "recommended"])


@pytest.fixture
def broken_numpy_kernel(monkeypatch):
    """Mutate NumpyKernel.intersect: silently drop the largest element."""
    real = NumpyKernel.intersect

    def buggy(self, a, b):
        result = real(self, a, b)
        if len(result) >= 2:
            return result[:-1]
        return result

    monkeypatch.setattr(NumpyKernel, "intersect", buggy)


class TestHealthyRun:
    def test_short_fuzz_is_clean(self, tmp_path):
        report = run_fuzz(
            cases=12,
            seed=7,
            corpus_dir=str(tmp_path),
            run_options=SMOKE_RUN_OPTIONS,
        )
        assert report.clean, report.summary()
        assert report.cases_run == 12
        assert report.repro_files == []
        assert list(tmp_path.iterdir()) == []

    def test_time_box_respected(self):
        report = run_fuzz(cases=10_000, seed=0, max_seconds=1.0,
                          run_options=SMOKE_RUN_OPTIONS)
        assert report.time_boxed
        assert report.cases_run < 10_000


class TestInjectedKernelBug:
    def test_bug_is_caught_and_shrunk(self, tmp_path, broken_numpy_kernel):
        report = run_fuzz(
            cases=40,
            seed=7,
            corpus_dir=str(tmp_path),
            max_failures=1,
            run_options=SMOKE_RUN_OPTIONS,
        )
        assert not report.clean, "injected kernel bug went undetected"
        assert report.repro_files, "no repro file written for the bug"

        record = load_repro(report.repro_files[0])
        # The divergence must implicate the numpy kernel specifically.
        configs = [record["config_a"], record.get("config_b") or {}]
        assert any(c.get("kernel") == "numpy" for c in configs), configs
        # Shrunk to a debuggable size (acceptance bound: <= 12 vertices).
        assert len(record["data"]["labels"]) <= 12, (
            "shrinker left a repro of "
            f"{len(record['data']['labels'])} data vertices"
        )
        # With the bug still active the repro reproduces ...
        assert replay_repro(record) is True

    def test_repro_is_fixed_by_reverting_the_bug(self, tmp_path):
        with pytest.MonkeyPatch.context() as mp:
            real = NumpyKernel.intersect

            def buggy(self, a, b):
                result = real(self, a, b)
                return result[:-1] if len(result) >= 2 else result

            mp.setattr(NumpyKernel, "intersect", buggy)
            report = run_fuzz(
                cases=40,
                seed=7,
                corpus_dir=str(tmp_path),
                max_failures=1,
                run_options=SMOKE_RUN_OPTIONS,
            )
            assert report.repro_files
            record = load_repro(report.repro_files[0])
            assert replay_repro(record) is True

        # Patch reverted == bug fixed: the same repro now replays clean.
        assert replay_repro(record) is False

    def test_repro_file_is_plain_json(self, tmp_path, broken_numpy_kernel):
        report = run_fuzz(
            cases=40,
            seed=7,
            corpus_dir=str(tmp_path),
            max_failures=1,
            run_options=SMOKE_RUN_OPTIONS,
        )
        with open(report.repro_files[0], "r", encoding="utf-8") as fh:
            record = json.load(fh)
        assert record["schema"] == "repro.qa/v1"
        assert record["kind"] in ("count_mismatch", "set_mismatch",
                                  "missing_planted")


class TestRunCaseDirect:
    def test_planted_case_clean_across_full_matrix(self):
        # One full-matrix run (all ~24 presets, all kernels, session,
        # oracles, metamorphic transforms) on a small case.
        case = plant_case(123, max_data=20)
        assert run_case(case) == []

"""Every kernel backend must produce identical matching results.

The backend only changes *how* Algorithm 5 intersects candidate adjacency
lists, never *what* the intersection is — so embeddings, match counts and
solved status must be bit-identical across scalar, numpy, bitset and
qfilter on any workload.
"""

import pytest

from fixtures import PAPER_DATA, PAPER_QUERY

from repro.core import match
from repro.graph import extract_query, rmat_graph

KERNELS = ["scalar", "numpy", "bitset", "qfilter"]

#: Presets whose ComputeLC is Algorithm 5 (IntersectionLC) plus the
#: adaptive DP pipeline — the paths a kernel backend actually serves.
ALGORITHMS = ["CECI", "DP", "GQL-opt", "CFL-opt"]


def _embeddings(query, data, algorithm, kernel):
    result = match(
        query, data, algorithm=algorithm, kernel=kernel, match_limit=None
    )
    return result, sorted(result.embeddings)


class TestPaperFixture:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_kernels_agree(self, algorithm):
        base_result, base = _embeddings(
            PAPER_QUERY, PAPER_DATA, algorithm, "scalar"
        )
        assert base_result.num_matches == 2  # the paper's two embeddings
        for name in KERNELS[1:]:
            result, got = _embeddings(PAPER_QUERY, PAPER_DATA, algorithm, name)
            assert got == base, f"{name} differs from scalar on {algorithm}"
            assert result.num_matches == base_result.num_matches
            assert result.solved == base_result.solved

    @pytest.mark.parametrize("name", KERNELS)
    def test_kernel_recorded_on_result(self, name):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="CECI", kernel=name)
        assert result.kernel == name

    def test_auto_resolves_to_concrete_backend(self):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="CECI", kernel="auto")
        assert result.kernel in KERNELS

    def test_default_resolves_backend(self):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="CECI")
        assert result.kernel in KERNELS

    def test_non_intersection_algorithm_records_none(self):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="QSI", kernel="numpy")
        assert result.kernel is None

    def test_embeddings_are_plain_ints(self):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="CECI", kernel="numpy")
        for emb in result.embeddings:
            assert all(type(v) is int for v in emb)


class TestGeneratedWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        data = rmat_graph(300, 6.0, 4, seed=3)
        queries = [
            extract_query(data, 5, seed=seed) for seed in (1, 2, 3)
        ]
        return data, queries

    @pytest.mark.parametrize("algorithm", ["CECI", "DP"])
    def test_kernels_agree(self, workload, algorithm):
        data, queries = workload
        for query in queries:
            _, base = _embeddings(query, data, algorithm, "scalar")
            for name in KERNELS[1:]:
                _, got = _embeddings(query, data, algorithm, name)
                assert got == base, f"{name} differs from scalar"

    def test_recommended_parity(self, workload):
        data, queries = workload
        for query in queries:
            _, base = _embeddings(query, data, "recommended", "scalar")
            _, got = _embeddings(query, data, "recommended", "numpy")
            assert got == base

"""Every kernel backend must produce identical matching results.

The backend only changes *how* Algorithm 5 intersects candidate adjacency
lists, never *what* the intersection is — so embeddings, match counts and
solved status must be bit-identical across scalar, numpy, bitset and
qfilter on any workload.
"""

import pytest

from fixtures import PAPER_DATA, PAPER_QUERY

from repro.core import match
from repro.graph import extract_query, rmat_graph

KERNELS = ["scalar", "numpy", "bitset", "qfilter"]

#: Presets whose ComputeLC is Algorithm 5 (IntersectionLC) plus the
#: adaptive DP pipeline — the paths a kernel backend actually serves.
ALGORITHMS = ["CECI", "DP", "GQL-opt", "CFL-opt"]


def _embeddings(query, data, algorithm, kernel):
    result = match(
        query, data, algorithm=algorithm, kernel=kernel, match_limit=None
    )
    return result, sorted(result.embeddings)


class TestPaperFixture:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_kernels_agree(self, algorithm):
        base_result, base = _embeddings(
            PAPER_QUERY, PAPER_DATA, algorithm, "scalar"
        )
        assert base_result.num_matches == 2  # the paper's two embeddings
        for name in KERNELS[1:]:
            result, got = _embeddings(PAPER_QUERY, PAPER_DATA, algorithm, name)
            assert got == base, f"{name} differs from scalar on {algorithm}"
            assert result.num_matches == base_result.num_matches
            assert result.solved == base_result.solved

    @pytest.mark.parametrize("name", KERNELS)
    def test_kernel_recorded_on_result(self, name):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="CECI", kernel=name)
        assert result.kernel == name

    def test_auto_resolves_to_concrete_backend(self):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="CECI", kernel="auto")
        assert result.kernel in KERNELS

    def test_default_resolves_backend(self):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="CECI")
        assert result.kernel in KERNELS

    def test_non_intersection_algorithm_records_none(self):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="QSI", kernel="numpy")
        assert result.kernel is None

    def test_embeddings_are_plain_ints(self):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="CECI", kernel="numpy")
        for emb in result.embeddings:
            assert all(type(v) is int for v in emb)


class TestEdgeCaseParity:
    """All four backends on the degenerate inputs that break off-by-ones.

    ``intersect``/``multi_intersect`` must agree element-for-element on
    empty arrays, single-element arrays, and disjoint ranges — the inputs
    where galloping thresholds, word boundaries and early-exit paths are
    most likely to diverge.
    """

    CASES = [
        ("both-empty", [], []),
        ("left-empty", [], [1, 2, 3]),
        ("right-empty", [0, 5, 9], []),
        ("single-hit", [4], [4]),
        ("single-miss", [4], [5]),
        ("single-vs-many", [63], [0, 63, 64, 127, 128]),
        ("disjoint-low-high", [0, 1, 2], [100, 200, 300]),
        ("disjoint-interleaved", [0, 2, 4, 6], [1, 3, 5, 7]),
        ("identical", [1, 64, 65, 128], [1, 64, 65, 128]),
        ("word-boundary", [63, 64, 127, 128], [64, 128]),
        ("gallop-skew", [500], list(range(1000))),
    ]

    @pytest.mark.parametrize("label,a,b", CASES, ids=[c[0] for c in CASES])
    def test_intersect_agrees(self, label, a, b):
        from repro.utils.kernels import get_kernel

        expected = sorted(set(a) & set(b))
        for name in KERNELS:
            got = [int(x) for x in get_kernel(name).intersect(a, b)]
            assert got == expected, f"{name} wrong on {label}"
            # Symmetry: argument order must not matter.
            rev = [int(x) for x in get_kernel(name).intersect(b, a)]
            assert rev == expected, f"{name} asymmetric on {label}"

    MULTI_CASES = [
        ("one-list", [[3, 7, 9]]),
        ("one-empty-kills-all", [[1, 2, 3], [], [2, 3, 4]]),
        ("three-way", [[1, 2, 3, 4], [2, 3, 4, 5], [0, 3, 4]]),
        ("disjoint-pair", [[0, 2], [1, 3], [0, 1, 2, 3]]),
    ]

    @pytest.mark.parametrize(
        "label,lists", MULTI_CASES, ids=[c[0] for c in MULTI_CASES]
    )
    def test_multi_intersect_agrees(self, label, lists):
        from repro.utils.kernels import get_kernel

        common = set(lists[0])
        for other in lists[1:]:
            common &= set(other)
        expected = sorted(common)
        for name in KERNELS:
            got = [int(x) for x in get_kernel(name).multi_intersect(lists)]
            assert got == expected, f"{name} wrong on {label}"

    def test_multi_intersect_empty_input_rejected_everywhere(self):
        # The zero-list intersection is the universe — unrepresentable —
        # so every backend must refuse it the same way.
        from repro.utils.kernels import get_kernel

        for name in KERNELS:
            with pytest.raises(ValueError, match="at least one list"):
                get_kernel(name).multi_intersect([])


class TestGeneratedWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        data = rmat_graph(300, 6.0, 4, seed=3)
        queries = [
            extract_query(data, 5, seed=seed) for seed in (1, 2, 3)
        ]
        return data, queries

    @pytest.mark.parametrize("algorithm", ["CECI", "DP"])
    def test_kernels_agree(self, workload, algorithm):
        data, queries = workload
        for query in queries:
            _, base = _embeddings(query, data, algorithm, "scalar")
            for name in KERNELS[1:]:
                _, got = _embeddings(query, data, algorithm, name)
                assert got == base, f"{name} differs from scalar"

    def test_recommended_parity(self, workload):
        data, queries = workload
        for query in queries:
            _, base = _embeddings(query, data, "recommended", "scalar")
            _, got = _embeddings(query, data, "recommended", "numpy")
            assert got == base

"""Integration: the paper's worked examples, end to end.

Every intermediate result the paper prints for its Figure 1 running example
(Examples 3.1-3.4, the A^{u1}_{u3}(v4) lookup, the introduction's match) is
asserted against the full pipeline.
"""

from fixtures import (
    DPISO_CANDIDATES,
    GQL_LOCAL_CANDIDATES,
    PAPER_DATA,
    PAPER_MATCHES,
    PAPER_QUERY,
    REFINED_CANDIDATES,
)

from repro import match
from repro.filtering import (
    AuxiliaryStructure,
    CECIFilter,
    CFLFilter,
    DPisoFilter,
    GraphQLFilter,
)


class TestExample31:
    def test_gql_local_pruning(self):
        got = GraphQLFilter(refinement_rounds=0).run(PAPER_QUERY, PAPER_DATA)
        assert got.as_dict() == GQL_LOCAL_CANDIDATES

    def test_v1_removed_v3_kept_by_refinement(self):
        got = GraphQLFilter().run(PAPER_QUERY, PAPER_DATA)
        assert not got.contains(2, 1)  # v1 removed (no semi-perfect matching)
        assert got.contains(2, 3)  # v3 is a valid candidate


class TestExample32:
    def test_cfl_final_sets(self):
        got = CFLFilter().run(PAPER_QUERY, PAPER_DATA)
        assert got.as_dict() == REFINED_CANDIDATES

    def test_aux_lookup_from_example(self):
        cand = CFLFilter().run(PAPER_QUERY, PAPER_DATA)
        tree = CFLFilter.build_tree(PAPER_QUERY, PAPER_DATA)
        aux = AuxiliaryStructure.build(
            PAPER_QUERY, PAPER_DATA, cand, scope="tree", tree=tree
        )
        # "Given v4 ∈ C(u1), CFL can directly retrieve that
        #  A^{u1}_{u3}(v4) = {v10, v12}."
        assert aux.neighbors(1, 3, 4).tolist() == [10, 12]


class TestExample33:
    def test_ceci_final_sets(self):
        got = CECIFilter().run(PAPER_QUERY, PAPER_DATA)
        assert got.as_dict() == REFINED_CANDIDATES


class TestExample34:
    def test_dpiso_final_sets(self):
        got = DPisoFilter().run(PAPER_QUERY, PAPER_DATA)
        assert got.as_dict() == DPISO_CANDIDATES


class TestIntroductionMatch:
    def test_quoted_match_found(self):
        # "{(u0, v0), (u1, v4), (u2, v5), (u3, v12)} is a match from q to G."
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="recommended")
        assert (0, 4, 5, 12) in set(result.embeddings)

    def test_exactly_two_matches(self):
        result = match(PAPER_QUERY, PAPER_DATA, algorithm="recommended")
        assert set(result.embeddings) == PAPER_MATCHES

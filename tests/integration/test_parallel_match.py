"""Determinism and lifecycle contract of intra-query parallel matching.

The fan-out promises results *byte-identical* to the sequential frame
machine: same embeddings in the same order, same match counts, and —
because the chunk grid is fixed at :data:`DEFAULT_CHUNKS` regardless of
the worker count — identical merged counters across ``n_workers``.
These tests pin that contract, the cancellation path, and the
shared-memory lifecycle (publish on first parallel match, unlink on
session close, nothing leaked by the one-shot API).
"""

import os

import pytest

from repro.core.api import match
from repro.core.session import MatchSession
from repro.enumeration.support import DEADLINE_STRIDE
from repro.graph.generators import erdos_renyi_graph
from repro.graph.query_gen import extract_query
from repro.parallel import DEFAULT_CHUNKS

ALGORITHM = "GQL-opt"  # static order, no failing sets: counters must agree
MATCH_LIMIT = 500_000  # far above the workload's match count — no capping
WORKER_COUNTS = (1, 2, 4)


def _shm_names():
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:
        return set()


@pytest.fixture(scope="module")
def workload():
    data = erdos_renyi_graph(1000, 16.0, 8, seed=7)
    query = extract_query(data, 10, seed=1)
    return query, data


@pytest.fixture(scope="module")
def sequential(workload):
    query, data = workload
    return match(
        query, data, algorithm=ALGORITHM,
        match_limit=MATCH_LIMIT, store_limit=MATCH_LIMIT,
    )


class TestDeterminism:
    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    def test_byte_identical_across_worker_counts(
        self, workload, sequential, n_workers
    ):
        query, data = workload
        result = match(
            query, data, algorithm=ALGORITHM,
            match_limit=MATCH_LIMIT, store_limit=MATCH_LIMIT,
            n_workers=n_workers,
        )
        assert result.num_matches == sequential.num_matches
        assert result.solved
        assert result.embeddings == sequential.embeddings

    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    def test_merged_counters_match_sequential(
        self, workload, sequential, n_workers
    ):
        # GQL-opt prunes nothing at the root (no failing sets), and the
        # workload finishes under the cap, so every chunk-local counter
        # must sum exactly to the sequential total.
        query, data = workload
        result = match(
            query, data, algorithm=ALGORITHM,
            match_limit=MATCH_LIMIT, store_limit=0,
            n_workers=n_workers,
        )
        assert result.stats == sequential.stats

    def test_repeated_runs_are_stable(self, workload):
        query, data = workload
        runs = [
            match(
                query, data, algorithm=ALGORITHM,
                match_limit=MATCH_LIMIT, store_limit=MATCH_LIMIT,
                n_workers=2,
            )
            for _ in range(2)
        ]
        assert runs[0].embeddings == runs[1].embeddings
        assert runs[0].stats == runs[1].stats

    def test_parallel_path_actually_ran(self, workload):
        query, data = workload
        result = match(
            query, data, algorithm=ALGORITHM,
            match_limit=MATCH_LIMIT, store_limit=0, n_workers=2,
        )
        counters = result.metrics.to_dict()["counters"]
        assert counters.get("parallel.matches") == 1
        assert counters.get("parallel.chunks") == DEFAULT_CHUNKS

    def test_env_var_enables_pool(self, workload, monkeypatch):
        query, data = workload
        monkeypatch.setenv("REPRO_WORKERS", "2")
        result = match(
            query, data, algorithm=ALGORITHM,
            match_limit=MATCH_LIMIT, store_limit=0,
        )
        counters = result.metrics.to_dict()["counters"]
        assert counters.get("parallel.matches") == 1

    def test_match_limit_truncation_matches_sequential(
        self, workload, sequential
    ):
        # The cap lands inside some middle chunk; the merged prefix must
        # still be the sequential prefix.
        query, data = workload
        limit = sequential.num_matches // 2
        seq = match(
            query, data, algorithm=ALGORITHM,
            match_limit=limit, store_limit=limit,
        )
        par = match(
            query, data, algorithm=ALGORITHM,
            match_limit=limit, store_limit=limit, n_workers=2,
        )
        assert par.num_matches == seq.num_matches == limit
        assert par.solved
        assert par.embeddings == sequential.embeddings[:limit]


class TestCancellation:
    def test_cancel_stops_all_workers_quickly(self, workload, sequential):
        query, data = workload
        result = match(
            query, data, algorithm=ALGORITHM,
            match_limit=MATCH_LIMIT, store_limit=0,
            n_workers=2, cancel=lambda: True,
        )
        assert not result.solved
        # The flag is stored before the workers pass their first
        # deadline stride, so no chunk runs meaningfully past one
        # stride's worth of search nodes — and the whole merged run
        # stays far below the full sequential search.
        bound = DEFAULT_CHUNKS * 2 * DEADLINE_STRIDE
        assert result.stats.recursion_calls < bound
        assert result.stats.recursion_calls < sequential.stats.recursion_calls

    def test_deadline_expires_in_workers(self, workload):
        query, data = workload
        result = match(
            query, data, algorithm=ALGORITHM,
            match_limit=MATCH_LIMIT, store_limit=0,
            n_workers=2, time_limit=1e-6,
        )
        assert not result.solved


class TestLifecycle:
    def test_session_close_unlinks_segment(self, workload):
        query, data = workload
        before = _shm_names()
        session = MatchSession(data, algorithm=ALGORITHM, n_workers=2)
        session.match(query, match_limit=1000, store_limit=0)
        during = _shm_names() - before
        assert during, "parallel match should have published the graph"
        session.close()
        assert not (_shm_names() - before)
        session.close()  # idempotent

    def test_oneshot_api_leaves_nothing_behind(self, workload):
        query, data = workload
        before = _shm_names()
        match(
            query, data, algorithm=ALGORITHM,
            match_limit=1000, store_limit=0, n_workers=2,
        )
        assert not (_shm_names() - before)

    def test_sequential_session_never_publishes(self, workload):
        query, data = workload
        before = _shm_names()
        session = MatchSession(data, algorithm=ALGORITHM)
        session.match(query, match_limit=1000, store_limit=0)
        assert not (_shm_names() - before)
        session.close()


class TestFallback:
    def test_ineligible_plan_falls_back_to_sequential(self, workload):
        # The adaptive DP-iso selector has no fixed root list: the match
        # must silently run sequentially and still be correct.
        query, data = workload
        seq = match(
            query, data, algorithm="DP",
            match_limit=5000, store_limit=5000,
        )
        par = match(
            query, data, algorithm="DP",
            match_limit=5000, store_limit=5000, n_workers=2,
        )
        assert par.num_matches == seq.num_matches
        assert par.embeddings == seq.embeddings

    def test_recursive_engine_falls_back(self, workload):
        from repro.enumeration.engines import enable_recursive_baseline

        enable_recursive_baseline()
        query, data = workload
        seq = match(
            query, data, algorithm=ALGORITHM, engine="recursive",
            match_limit=5000, store_limit=5000,
        )
        par = match(
            query, data, algorithm=ALGORITHM, engine="recursive",
            match_limit=5000, store_limit=5000, n_workers=2,
        )
        assert par.num_matches == seq.num_matches
        assert par.embeddings == seq.embeddings
        assert (
            "parallel.matches" not in par.metrics.to_dict()["counters"]
        )

"""Sequential vs parallel study runs must be indistinguishable as data.

The parallel runner exists for throughput, not different answers: per
query it must produce the same match counts and solved flags as the
sequential runner on fixed seeds, and its merged counters (shipped from
worker processes as serialized Metrics dicts) must equal the sequential
sums — otherwise cross-layer metrics would silently change meaning the
moment a study fans out.
"""

import pytest

from repro.obs import Metrics
from repro.study import (
    build_query_set,
    load_dataset,
    run_algorithm_on_set,
    run_algorithm_on_set_parallel,
)


@pytest.fixture(scope="module")
def workload():
    data = load_dataset("ye", scale=0.3)
    qs = build_query_set(data, "ye", 6, None, 5, seed=42)
    return data, qs


@pytest.fixture(scope="module")
def runs(workload):
    data, qs = workload
    sequential = run_algorithm_on_set(
        "CFL", data, qs.queries, time_limit=10.0
    )
    parallel = run_algorithm_on_set_parallel(
        "CFL", data, qs.queries, time_limit=10.0, workers=2
    )
    return sequential, parallel


class TestParallelParity:
    def test_match_counts_and_solved_flags_identical(self, runs):
        sequential, parallel = runs
        assert [r.num_matches for r in parallel.records] == [
            r.num_matches for r in sequential.records
        ]
        assert [r.solved for r in parallel.records] == [
            r.solved for r in sequential.records
        ]
        assert [r.query_index for r in parallel.records] == [
            r.query_index for r in sequential.records
        ]

    def test_every_record_carries_metrics(self, runs):
        sequential, parallel = runs
        for summary in (sequential, parallel):
            for record in summary.records:
                assert record.metrics is not None
                assert "counters" in record.metrics

    def test_merged_parallel_counters_equal_sequential_sums(self, runs):
        sequential, parallel = runs
        seq, par = sequential.merged_metrics, parallel.merged_metrics
        assert seq.counters == par.counters
        # timings are wall-clock and may differ; the keys must not
        assert set(seq.phase_seconds) == set(par.phase_seconds)

    def test_per_query_counters_identical(self, runs):
        sequential, parallel = runs
        for seq_rec, par_rec in zip(sequential.records, parallel.records):
            assert (
                Metrics.from_dict(seq_rec.metrics).counters
                == Metrics.from_dict(par_rec.metrics).counters
            )

    def test_merged_metrics_match_manual_fold(self, runs):
        sequential, _ = runs
        manual = Metrics()
        for record in sequential.records:
            manual = manual.merge(Metrics.from_dict(record.metrics))
        assert manual == sequential.merged_metrics

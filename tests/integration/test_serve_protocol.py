"""End-to-end serving over TCP: asyncio server, JSON-lines protocol.

One real socketed round trip per behavior: served matches equal a direct
in-process session's, admission failures come back as typed error codes
(not dropped connections), concurrent clients interleave safely, and the
event loop never blocks on an enumeration (a slow request on one
connection must not stall a ping on another).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.session import MatchSession
from repro.graph import erdos_renyi_graph, extract_query
from repro.serve import MatchServer, MatchService
from repro.serve.protocol import graph_to_payload


@pytest.fixture(scope="module")
def data():
    return erdos_renyi_graph(120, 6.0, 4, seed=55)


@pytest.fixture(scope="module")
def query(data):
    return extract_query(data, 5, seed=9)


class Client:
    """A minimal JSON-lines client for the test loop."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def rpc(self, payload):
        self.writer.write((json.dumps(payload) + "\n").encode())
        await self.writer.drain()
        line = await self.reader.readline()
        assert line, "server closed the connection"
        return json.loads(line)

    async def close(self):
        self.writer.close()


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=120))


@pytest.fixture
def service(data):
    service = MatchService(workers=2)
    service.add_graph("g", data)
    yield service
    service.close()


async def with_server(service, scenario):
    server = MatchServer(service, port=0)
    await server.start()
    try:
        return await scenario(server)
    finally:
        await server.stop()


class TestServeProtocol:
    def test_match_over_the_wire_equals_direct_session(
        self, service, data, query
    ):
        direct = MatchSession(data).match(query)

        async def scenario(server):
            client = await Client.connect(server.port)
            response = await client.rpc(
                {
                    "op": "match",
                    "id": 1,
                    "graph": "g",
                    "query": graph_to_payload(query),
                    "include_embeddings": True,
                }
            )
            await client.close()
            return response

        response = run(with_server(service, scenario))
        assert response["ok"] and response["status"] == "ok"
        assert response["id"] == 1
        assert response["num_matches"] == direct.num_matches
        assert [tuple(e) for e in response["embeddings"]] == direct.embeddings

    def test_ping_graphs_stats_ops(self, service, query):
        async def scenario(server):
            client = await Client.connect(server.port)
            out = {
                "ping": await client.rpc({"op": "ping"}),
                "graphs": await client.rpc({"op": "graphs"}),
            }
            await client.rpc(
                {"op": "match", "graph": "g", "query": graph_to_payload(query)}
            )
            out["stats"] = await client.rpc({"op": "stats"})
            await client.close()
            return out

        out = run(with_server(service, scenario))
        assert out["ping"] == {"ok": True, "pong": True}
        assert out["graphs"]["graphs"] == ["g"]
        assert out["stats"]["stats"]["counters"]["serve.completed"] >= 1

    def test_add_graph_then_match_it(self, service, data):
        tiny_query = {"labels": [0, 1, 0], "edges": [[0, 1], [1, 2]]}
        tiny_data = {
            "labels": [0, 1, 0, 1],
            "edges": [[0, 1], [1, 2], [2, 3], [3, 0]],
        }

        async def scenario(server):
            client = await Client.connect(server.port)
            added = await client.rpc(
                {"op": "add_graph", "name": "tiny", "graph": tiny_data}
            )
            matched = await client.rpc(
                {"op": "match", "graph": "tiny", "query": tiny_query}
            )
            await client.close()
            return added, matched

        added, matched = run(with_server(service, scenario))
        assert added["ok"] and added["num_vertices"] == 4
        assert matched["ok"] and matched["num_matches"] == 4

    def test_mutate_over_the_wire_advances_served_epochs(self, service):
        tiny_query = {"labels": [0, 1, 0], "edges": [[0, 1], [1, 2]]}
        tiny_data = {
            "labels": [0, 1, 0, 1],
            "edges": [[0, 1], [1, 2], [2, 3], [3, 0]],
        }

        async def scenario(server):
            client = await Client.connect(server.port)
            await client.rpc(
                {
                    "op": "add_graph",
                    "name": "live",
                    "graph": tiny_data,
                    "dynamic": True,
                }
            )
            before = await client.rpc(
                {"op": "match", "graph": "live", "query": tiny_query}
            )
            mutated = await client.rpc(
                {
                    "op": "mutate",
                    "graph": "live",
                    "mutations": [["add_vertex", 0], ["add_edge", 1, 4]],
                }
            )
            after = await client.rpc(
                {"op": "match", "graph": "live", "query": tiny_query}
            )
            await client.close()
            return before, mutated, after

        before, mutated, after = run(with_server(service, scenario))
        assert before["ok"] and before["epoch"] == 0
        assert mutated == {
            "ok": True,
            "graph": "live",
            "epoch": 1,
            "added_edges": 1,
            "removed_edges": 0,
            "added_vertices": 1,
        }
        assert after["ok"] and after["epoch"] == 1
        # The planted vertex 4 (label 0) adds paths through vertex 1.
        assert after["num_matches"] > before["num_matches"]

    def test_error_codes_keep_the_connection_alive(self, service, query):
        async def scenario(server):
            client = await Client.connect(server.port)
            unknown = await client.rpc(
                {"op": "match", "graph": "nope", "query": graph_to_payload(query)}
            )
            malformed = await client.rpc({"op": "match", "query": {"bad": 1}})
            spent = await client.rpc(
                {
                    "op": "match",
                    "graph": "g",
                    "query": graph_to_payload(query),
                    "budget_ms": 0,
                }
            )
            # The connection still serves after three failures.
            alive = await client.rpc({"op": "ping"})
            await client.close()
            return unknown, malformed, spent, alive

        unknown, malformed, spent, alive = run(with_server(service, scenario))
        assert unknown == {
            "ok": False,
            "error": "no resident graph named 'nope'",
            "code": "UnknownGraphError",
        }
        assert malformed["code"] == "GraphFormatError"
        assert spent["code"] == "DeadlineExceededError"
        assert alive["ok"]

    def test_concurrent_connections_interleave(self, service, data, query):
        direct = MatchSession(data).match(query)

        async def scenario(server):
            clients = await asyncio.gather(
                *(Client.connect(server.port) for _ in range(4))
            )
            responses = await asyncio.gather(
                *(
                    c.rpc(
                        {
                            "op": "match",
                            "id": i,
                            "graph": "g",
                            "tenant": f"t{i}",
                            "query": graph_to_payload(query),
                        }
                    )
                    for i, c in enumerate(clients)
                )
            )
            for c in clients:
                await c.close()
            return responses

        responses = run(with_server(service, scenario))
        assert sorted(r["id"] for r in responses) == [0, 1, 2, 3]
        for response in responses:
            assert response["ok"]
            assert response["num_matches"] == direct.num_matches

    def test_slow_match_does_not_block_pings(self, service, data, query):
        # The slow request fans out through the thread pool; the ping on a
        # second connection must answer while it is still in flight.
        async def scenario(server):
            slow_client = await Client.connect(server.port)
            ping_client = await Client.connect(server.port)
            slow_task = asyncio.ensure_future(
                slow_client.rpc(
                    {
                        "op": "match",
                        "graph": "g",
                        "query": graph_to_payload(query),
                        "match_limit": None,
                    }
                )
            )
            pong = await asyncio.wait_for(
                ping_client.rpc({"op": "ping"}), timeout=30
            )
            slow = await slow_task
            await slow_client.close()
            await ping_client.close()
            return pong, slow

        pong, slow = run(with_server(service, scenario))
        assert pong["ok"]
        assert slow["ok"]

"""Session-vs-one-shot parity: the caches must never change an answer.

The compile-once/run-many layer is pure plumbing: for every preset, a
query served through a warm ``MatchSession`` (plan hit + preparation hit)
must produce exactly the embeddings, counters and order the historical
one-shot ``match()`` produces. Cache bookkeeping counters (``plan.*``)
are the only permitted difference.
"""

from fixtures import PAPER_DATA, PAPER_QUERY

from repro import MatchSession, available_algorithms, match
from repro.graph import Graph

DATA = Graph(
    labels=[0, 1, 0, 1, 0, 1, 2, 2],
    edges=[
        (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0),
        (0, 2), (3, 5), (1, 6), (4, 6), (2, 7), (5, 7),
    ],
)
QUERY = Graph(labels=[0, 1, 0, 2], edges=[(0, 1), (1, 2), (2, 3)])


def _strip_cache_counters(metrics):
    return {
        key: value
        for key, value in metrics.counters.items()
        if not key.startswith("plan.")
    }


def _enumeration_counters(metrics):
    return {
        key: value
        for key, value in metrics.counters.items()
        if key.startswith("enumerate.")
    }


def test_every_preset_agrees_warm_and_cold():
    for name in available_algorithms():
        one_shot = match(QUERY, DATA, algorithm=name)
        session = MatchSession(DATA, algorithm=name)
        cold = session.match(QUERY)
        warm = session.match(QUERY)      # plan + prep both hit

        for result in (cold, warm):
            assert result.num_matches == one_shot.num_matches, name
            assert result.mappings == one_shot.mappings, name
            assert result.order == one_shot.order, name
            assert result.solved == one_shot.solved, name
            assert result.algorithm == one_shot.algorithm, name

        # Cold run: the full pipeline ran, so every counter must match.
        assert _strip_cache_counters(cold.metrics) \
            == _strip_cache_counters(one_shot.metrics), name
        # Warm run: preprocessing was skipped, so filter/order counters
        # are legitimately absent — but the enumeration work is identical.
        assert _enumeration_counters(warm.metrics) \
            == _enumeration_counters(one_shot.metrics), name

        assert warm.metrics.counters["plan.cache_hit"] == 1, name
        assert warm.metrics.counters["plan.prep_hit"] == 1, name


def test_paper_fixture_full_parity():
    for name in ("GQL", "CFL", "CECI", "DPfs", "recommended"):
        one_shot = match(PAPER_QUERY, PAPER_DATA, algorithm=name)
        session = MatchSession(PAPER_DATA, algorithm=name)
        session.match(PAPER_QUERY)
        warm = session.match(PAPER_QUERY)
        assert warm.mappings == one_shot.mappings, name
        assert warm.kernel == one_shot.kernel, name
        assert _enumeration_counters(warm.metrics) \
            == _enumeration_counters(one_shot.metrics), name


def test_session_kernel_override_matches_one_shot():
    for kernel in ("scalar", "numpy", "bitset"):
        one_shot = match(QUERY, DATA, algorithm="CECI", kernel=kernel)
        session = MatchSession(DATA, algorithm="CECI", kernel=kernel)
        session.match(QUERY)
        warm = session.match(QUERY)
        assert warm.kernel == one_shot.kernel == kernel
        assert warm.mappings == one_shot.mappings


def test_study_runner_records_unchanged_by_session_rewire():
    """The sequential runner (now session-backed) must keep producing
    one-shot-identical per-query records — counters included."""
    from repro.study.runner import run_algorithm_on_set

    queries = [QUERY, Graph(labels=[1, 0, 1], edges=[(0, 1), (1, 2)]), QUERY]
    summary = run_algorithm_on_set(
        "GQLfs", DATA, queries, match_limit=1000, time_limit=5.0
    )
    assert summary.num_queries == 3
    for index, record in enumerate(summary.records):
        one_shot = match(
            queries[index], DATA, algorithm="GQLfs",
            match_limit=1000, time_limit=5.0, store_limit=0, validate=False,
        )
        assert record.num_matches == one_shot.num_matches
        # Measurement mode: no cache counters, and the repeated third
        # query re-ran its preprocessing (prep cache disabled).
        assert not any(k.startswith("plan.") for k in record.metrics["counters"])
        assert record.preprocessing_ms > 0.0
        assert record.metrics["counters"] \
            == dict(one_shot.metrics.counters)

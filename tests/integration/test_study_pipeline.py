"""Integration: the study harness end to end (mini versions of the benches)."""

import pytest

from repro.filtering import (
    CECIFilter,
    CFLFilter,
    DPisoFilter,
    GraphQLFilter,
    LDFFilter,
    SteadyFilter,
)
from repro.study import (
    build_query_set,
    build_workload,
    load_dataset,
    run_algorithm_on_set,
)


@pytest.fixture(scope="module")
def mini():
    data = load_dataset("ye", scale=0.4)
    qs = build_query_set(data, "ye", 6, "sparse", 5, seed=7)
    return data, qs


class TestFilterComparisonPipeline:
    def test_pruning_power_ordering(self, mini):
        """Figure 8's invariant chain: STEADY ⊆ each filter ⊆ LDF."""
        data, qs = mini
        filters = {
            "LDF": LDFFilter(),
            "GQL": GraphQLFilter(),
            "CFL": CFLFilter(),
            "CECI": CECIFilter(),
            "DP": DPisoFilter(),
            "STEADY": SteadyFilter(),
        }
        for query in qs.queries:
            sizes = {
                name: filt.run(query, data).average_size
                for name, filt in filters.items()
            }
            assert sizes["STEADY"] <= min(
                sizes["GQL"], sizes["CFL"], sizes["CECI"], sizes["DP"]
            ) + 1e-9
            for name in ("GQL", "CFL", "CECI", "DP"):
                assert sizes[name] <= sizes["LDF"] + 1e-9


class TestRunnerAcrossAlgorithms:
    def test_summary_counts_consistent(self, mini):
        data, qs = mini
        for alg in ["GQL-opt", "RIfs", "DP", "GLW"]:
            s = run_algorithm_on_set(alg, data, qs.queries, "ye", qs.label)
            assert s.num_queries == len(qs.queries)
            assert 0 <= s.num_unsolved <= s.num_queries
            assert sum(s.categories().values()) == s.num_queries

    def test_match_counts_agree_between_runner_algorithms(self, mini):
        data, qs = mini
        a = run_algorithm_on_set("GQL-opt", data, qs.queries, time_limit=10.0)
        b = run_algorithm_on_set("GLW", data, qs.queries, time_limit=10.0)
        for ra, rb in zip(a.records, b.records):
            if ra.solved and rb.solved:
                assert ra.num_matches == rb.num_matches


class TestWorkloadPipeline:
    def test_full_small_workload_runs(self):
        data = load_dataset("ye", scale=0.3)
        sets = build_workload(data, "ye", sizes=[6], count=3, seed=11)
        for qs in sets:
            s = run_algorithm_on_set("recommended", data, qs.queries, "ye", qs.label)
            assert s.num_queries == 3

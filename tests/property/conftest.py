"""Make the local strategies module importable from property tests."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

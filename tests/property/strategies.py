"""Hypothesis strategies for labeled graphs and query/data pairs.

Also home of the corpus replay fixture: :func:`corpus_records` loads the
pinned JSON repro files under ``tests/corpus/`` (one per divergence class
the fuzzer can emit) so property suites can replay every historical fuzz
finding as an ``@example``-style regression.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Tuple

from hypothesis import strategies as st

from repro.graph import Graph
from repro.graph.ops import connected

__all__ = [
    "graphs",
    "connected_graphs",
    "query_data_pairs",
    "sorted_int_lists",
    "CORPUS_DIR",
    "corpus_records",
    "corpus_seeds",
]

#: The pinned repro corpus checked into the repository.
CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"


def corpus_records() -> List[Tuple[str, Dict]]:
    """Every pinned repro record as ``(file_name, record)``.

    These are replay fixtures: each file captures one divergence class
    (shrunk by the fuzzer or pinned by hand) and must replay *clean* on a
    healthy tree via :func:`repro.qa.corpus.replay_repro`.
    """
    from repro.qa.corpus import iter_corpus

    return [
        (os.path.basename(path), record)
        for path, record in iter_corpus(str(CORPUS_DIR))
    ]


def corpus_seeds() -> List[int]:
    """Generator seeds of the pinned corpus cases (for ``@example`` pins)."""
    return sorted(
        {
            int(record["seed"])
            for _, record in corpus_records()
            if record.get("seed") is not None
        }
    )


@st.composite
def graphs(
    draw,
    min_vertices: int = 1,
    max_vertices: int = 10,
    max_labels: int = 3,
    edge_probability: float = 0.4,
):
    """A random labeled undirected graph."""
    n = draw(st.integers(min_vertices, max_vertices))
    labels = draw(
        st.lists(
            st.integers(0, max_labels - 1), min_size=n, max_size=n
        )
    )
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = [
        e
        for e in possible
        if draw(
            st.floats(0, 1, allow_nan=False, allow_infinity=False)
        )
        < edge_probability
    ]
    return Graph(labels=labels, edges=edges)


@st.composite
def connected_graphs(
    draw,
    min_vertices: int = 3,
    max_vertices: int = 6,
    max_labels: int = 3,
):
    """A connected labeled graph, built as a random tree plus extra edges."""
    n = draw(st.integers(min_vertices, max_vertices))
    labels = draw(
        st.lists(st.integers(0, max_labels - 1), min_size=n, max_size=n)
    )
    edges = set()
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        edges.add((parent, v))
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n,
        )
    )
    for u, v in extra:
        if u != v:
            edges.add((min(u, v), max(u, v)))
    graph = Graph(labels=labels, edges=sorted(edges))
    assert connected(graph)
    return graph


@st.composite
def query_data_pairs(
    draw,
    max_query_vertices: int = 5,
    max_data_vertices: int = 12,
    max_labels: int = 2,
):
    """A (query, data) pair sharing a label alphabet.

    A small alphabet keeps candidate sets overlapping so injectivity
    conflicts and dense search trees actually occur.
    """
    query = draw(
        connected_graphs(
            min_vertices=3,
            max_vertices=max_query_vertices,
            max_labels=max_labels,
        )
    )
    data = draw(
        graphs(
            min_vertices=1,
            max_vertices=max_data_vertices,
            max_labels=max_labels,
            edge_probability=0.45,
        )
    )
    return query, data


def sorted_int_lists(max_value: int = 200, max_size: int = 40):
    """Sorted, deduplicated lists of small non-negative ints."""
    return st.lists(
        st.integers(0, max_value), max_size=max_size
    ).map(lambda xs: sorted(set(xs)))

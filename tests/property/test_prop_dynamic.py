"""Dynamic-graph properties: mutation, compaction, epoch invalidation.

Three invariants Hypothesis explores over random graphs, mutation
batches, and compaction points:

* **candidate equality** — after any interleaving of mutation batches
  and ``compact()`` calls, the incrementally maintained
  :class:`~repro.dynamic.IncrementalCandidates` state equals a
  ground-up rebuild on the same graph (seed, d1, d2 *and* the support
  counters — the internal state, not just the visible sets);
* **fingerprint-invalidation exactness** — a session's prepared-query
  cache hits iff the graph epoch is unchanged: a repeated query hits, a
  query after a non-empty batch misses, a query after an *empty* batch
  (all-no-op mutations bump nothing) hits again;
* **overlay ↔ compacted byte parity** — the overlay's snapshot, a
  from-scratch :class:`~repro.graph.graph.Graph` on the same
  labels/edges, and the post-``compact()`` base all carry byte-identical
  CSR arrays (construction is canonical, so parity is exact, not just
  set-equal).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.session import MatchSession
from repro.dynamic import (
    ADD_EDGE,
    ADD_VERTEX,
    REMOVE_EDGE,
    DynamicGraph,
    IncrementalCandidates,
    Mutation,
    sanitize_batch,
)
from repro.graph.graph import Graph
from repro.qa import plant_case

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SEEDS = st.integers(0, 2**16)


@st.composite
def programs(draw):
    """A planted case plus an interleaving of batches and compactions.

    Ops are drawn raw (endpoints may be out of range or self-loops) and
    sanitized at apply time against the graph's current vertex count —
    the same tolerance the QA shrinker relies on.
    """
    case = plant_case(draw(SEEDS), max_data=20)
    raw_op = st.one_of(
        st.tuples(
            st.just(ADD_EDGE),
            st.integers(0, case.data.num_vertices + 4),
            st.integers(0, case.data.num_vertices + 4),
        ),
        st.tuples(
            st.just(REMOVE_EDGE),
            st.integers(0, case.data.num_vertices + 4),
            st.integers(0, case.data.num_vertices + 4),
        ),
        st.tuples(st.just(ADD_VERTEX), st.integers(0, 3)),
    )
    steps = draw(
        st.lists(
            st.one_of(
                st.just("compact"),
                st.lists(raw_op, min_size=0, max_size=5),
            ),
            min_size=1,
            max_size=6,
        )
    )
    return case, steps


def _as_batch(raw):
    return tuple(Mutation(*op) for op in raw)


def _assert_byte_parity(left: Graph, right: Graph) -> None:
    assert left.store.labels.tobytes() == right.store.labels.tobytes()
    assert left.store.offsets.tobytes() == right.store.offsets.tobytes()
    assert (
        left.store.neighbors.tobytes() == right.store.neighbors.tobytes()
    )


@_SETTINGS
@given(program=programs())
def test_candidates_track_any_mutate_compact_interleaving(program):
    case, steps = program
    dyn = DynamicGraph(case.data, compact_threshold=0.5)
    incremental = IncrementalCandidates(case.query, dyn)
    n = dyn.num_vertices
    for step in steps:
        if step == "compact":
            epoch = dyn.epoch
            dyn.compact()
            assert dyn.epoch == epoch, "compaction must not bump the epoch"
        else:
            kept, n = sanitize_batch(_as_batch(step), n)
            delta = dyn.apply(kept)
            incremental.apply_delta(delta)
        assert incremental.equal_state(incremental.rebuild())
    # The visible candidate sets agree with a cold build as well.
    cold = IncrementalCandidates(case.query, dyn)
    assert incremental.as_dict() == cold.as_dict()


@_SETTINGS
@given(program=programs())
def test_overlay_snapshot_and_compacted_base_byte_parity(program):
    case, steps = program
    dyn = DynamicGraph(case.data, compact_threshold=0.5)
    n = dyn.num_vertices
    for step in steps:
        if step == "compact":
            dyn.compact()
        else:
            kept, n = sanitize_batch(_as_batch(step), n)
            dyn.apply(kept)
    rebuilt = Graph(labels=dyn.labels_list(), edges=list(dyn.edges()))
    _assert_byte_parity(dyn.snapshot(), rebuilt)
    dyn.compact()
    assert dyn.overlay_size == 0
    _assert_byte_parity(dyn.base, rebuilt)
    _assert_byte_parity(dyn.snapshot(), rebuilt)


@_SETTINGS
@given(seed=SEEDS, raw=st.lists(
    st.tuples(st.just(ADD_EDGE), st.integers(0, 24), st.integers(0, 24)),
    min_size=1, max_size=4,
))
def test_prep_cache_hit_iff_epoch_unchanged(seed, raw):
    case = plant_case(seed, max_data=20)
    dyn = DynamicGraph(case.data)
    session = MatchSession(dyn, algorithm="GQL")
    try:
        def prep_hit():
            result = session.match(case.query)
            counters = result.metrics.counters
            assert counters["plan.prep_hit"] + counters["plan.prep_miss"] == 1
            return bool(counters["plan.prep_hit"])

        assert not prep_hit()          # cold: miss
        assert prep_hit()              # unchanged epoch: hit

        kept, _ = sanitize_batch(_as_batch(raw), dyn.num_vertices)
        # Drop ops that are no-ops against the current graph (edge
        # already present), so a non-empty application really mutates.
        effective = tuple(
            m for m in kept if not dyn.has_edge(m.a, m.b)
        )
        epoch = dyn.epoch
        session.mutate(effective)
        if effective:
            assert dyn.epoch == epoch + 1
            assert not prep_hit()      # epoch bumped: exactly one miss
        else:
            assert dyn.epoch == epoch
            assert prep_hit()          # empty batch: still a hit
        assert prep_hit()              # and hits again at the new epoch
    finally:
        session.close()
